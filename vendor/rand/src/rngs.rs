//! Generator implementations.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++.
///
/// Matches upstream `rand` 0.8's `SmallRng` on 64-bit targets (same
/// algorithm, same SplitMix64 seeding through [`SeedableRng::seed_from_u64`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        if s == [0, 0, 0, 0] {
            // The all-zero state is a fixed point of xoshiro; nudge it.
            s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
        }
        SmallRng { s }
    }
}
