//! Sequence-related helpers.

use crate::{Rng, RngCore};

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}
