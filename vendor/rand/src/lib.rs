//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate re-implements exactly the surface the workspace uses: the
//! [`Rng`]/[`SeedableRng`] traits, [`rngs::SmallRng`] (xoshiro256++ seeded
//! through SplitMix64, matching upstream `rand` 0.8 on 64-bit targets),
//! [`distributions::Standard`], and [`seq::SliceRandom`]. Determinism is the
//! only hard requirement: the same seed always yields the same stream.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{DistIter, Distribution, SampleRange, Standard};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        let x: f64 = Standard.sample(self);
        x < p
    }

    /// Samples one value from `distr`.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    /// An iterator of samples from `distr`, consuming the generator.
    fn sample_iter<T, D: Distribution<T>>(self, distr: D) -> DistIter<D, Self, T>
    where
        Self: Sized,
    {
        DistIter::new(distr, self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed by expanding it through
    /// SplitMix64 (upstream-compatible).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 output, taken 32 bits at a time (as upstream does).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_produce_different_streams() {
        let a: u64 = SmallRng::seed_from_u64(1).gen();
        let b: u64 = SmallRng::seed_from_u64(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        use seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(5);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [7u32];
        assert_eq!(one.choose(&mut rng), Some(&7));
    }
}
