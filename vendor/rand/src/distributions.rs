//! Distributions and range sampling.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution: uniform over the full domain for integers,
/// uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// An iterator of samples, as returned by [`crate::Rng::sample_iter`].
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        DistIter { distr, rng, _marker: PhantomData }
    }
}

impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// A range that can be sampled from uniformly, for [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a 64-bit word uniformly onto `[0, span)` by widening multiply
/// (Lemire reduction without the rejection step; the bias is far below
/// anything a simulation could observe).
fn scale(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + scale(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as $t as u64 && hi.wrapping_sub(lo) as u128 + 1 > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + scale(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}
sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_range_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(scale(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(scale(rng.next_u64(), span.wrapping_add(1)) as $t)
            }
        }
    )*};
}
sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the open upper bound against floating-point rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard.sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}
