//! Offline vendored subset of the `bytes` crate: a cheaply cloneable,
//! immutable byte buffer. Only the surface this workspace uses is provided.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (no copy semantics needed here; the slice
    /// is copied once into the shared buffer).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"news");
        let b = Bytes::from(b"news".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(&a[..2], b"ne");
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_cheap_and_shared() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
    }
}
