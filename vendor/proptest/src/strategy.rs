//! Value-generation strategies.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice between boxed strategies (see `prop_oneof!`).
pub struct OneOf<T: Debug>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one option");
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String strategy from a regex-lite pattern.
///
/// Supports the subset the workspace uses: a concatenation of literal
/// characters and character classes `[...]` (with `a-b` ranges and `\`
/// escapes), each optionally repeated `{n}` or `{m,n}`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        generate_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut SmallRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let (class, next) = parse_class(&chars, i + 1, pattern);
            i = next;
            class
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        // Optional repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"));
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("bad repetition"),
                    b.trim().parse::<usize>().expect("bad repetition"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!class.is_empty(), "empty character class in pattern {pattern:?}");
        let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        for _ in 0..count {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}

/// Parses a character class starting just past `[`; returns the expanded
/// alternatives and the index just past the closing `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut class = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' && i + 1 < chars.len() {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        // Range `c-d` (a trailing `-` is a literal).
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let d = chars[i + 2];
            assert!(c <= d, "inverted class range in pattern {pattern:?}");
            class.extend((c..=d).filter(|ch| ch.is_ascii() || *ch <= d));
            i += 3;
        } else {
            class.push(c);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unclosed character class in pattern {pattern:?}");
    (class, i + 1)
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
