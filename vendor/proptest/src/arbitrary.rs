//! The `any::<T>()` entry point.

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Default)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// A whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
