//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! property-testing surface the workspace uses: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, [`strategy::Just`],
//! [`arbitrary::any`], range / tuple / vector / regex-lite string strategies
//! and [`strategy::Strategy::prop_map`].
//!
//! Semantics differ from upstream in one deliberate way: generation is a
//! fixed number of seeded deterministic cases per property (no shrinking,
//! no persistence files). The seed is derived from the test's module path
//! and name, so failures reproduce exactly across runs and machines.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;

/// Everything a test module needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Number of generated cases per property.
pub const CASES: u64 = 64;

/// Deterministic per-(test, case) generator.
pub fn test_rng(test_name: &str, case: u64) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs `body` for every generated case, like upstream's `proptest!`.
///
/// Supported form:
///
/// ```ignore
/// proptest! {
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(0u8..4, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut prop_rng = $crate::test_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);
                    )+
                    { $body }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// A uniform choice between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(Box::new($s)),+];
        $crate::strategy::OneOf(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_test_and_case() {
        use rand::Rng;
        let a: u64 = crate::test_rng("t", 3).gen();
        let b: u64 = crate::test_rng("t", 3).gen();
        let c: u64 = crate::test_rng("t", 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn string_pattern_strategy_shapes() {
        let mut rng = crate::test_rng("pattern", 0);
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let p = "[ -~<>&;\"']{0,12}".generate(&mut rng);
            assert!(p.len() <= 12);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)), "{p:?}");
        }
    }

    #[test]
    fn vec_and_map_strategies_compose() {
        let mut rng = crate::test_rng("compose", 1);
        let strat = crate::collection::vec(0u16..999, 1..4).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = strat.generate(&mut rng);
            assert!((1..4).contains(&n));
        }
    }

    proptest! {
        /// The macro itself works end to end, including tuples and oneof.
        #[test]
        fn macro_end_to_end(
            (a, b) in (0u8..10, -5i64..5),
            pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8)],
            n in any::<u64>(),
        ) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((1..=3).contains(&pick));
            let _ = n;
        }
    }
}
