//! Collection strategies.

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length range for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The result of [`vec()`].
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
