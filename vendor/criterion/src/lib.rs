//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! harness surface the workspace's `benches/` use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], `criterion_group!` and `criterion_main!`.
//!
//! Measurement is intentionally simple: each benchmark runs for the
//! configured warm-up and measurement windows and reports the mean
//! wall-clock time per iteration. There are no statistical reports, plots,
//! or baseline comparisons — the goal is that `cargo bench` compiles, runs,
//! and prints plausible numbers offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(800),
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the timed measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples (kept for API compatibility; the shim
    /// times a single continuous window).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let cfg = self.clone();
        run_one(&cfg, &name.into(), f);
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        let cfg = self.criterion.clone();
        run_one(&cfg, &full, f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// How batched inputs are sized (only the variant the workspace uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; one input per routine call.
    SmallInput,
}

/// Passed to benchmark closures; drives the timing loops.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back to back for the requested iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut timed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            timed += start.elapsed();
        }
        self.elapsed = timed;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(cfg: &Criterion, name: &str, mut f: F) {
    // Calibrate: grow the iteration count until one batch fills ~1/10 of
    // the warm-up window, so the measured batch is long enough to time.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= cfg.warm_up / 10 || iters >= 1 << 30 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    // Measure.
    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    let deadline = Instant::now() + cfg.measurement;
    while Instant::now() < deadline {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let per_iter =
        if total_iters > 0 { total.as_nanos() / u128::from(total_iters.max(1)) } else { 0 };
    println!("{name:<40} {per_iter:>12} ns/iter ({total_iters} iters)");
}

/// Declares a benchmark group. Both upstream forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_and_iter_batched_time_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(5);
        let mut g = c.benchmark_group("shim");
        g.bench_function("iter", |b| b.iter(|| 2u64 + 2));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
