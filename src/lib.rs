//! # newswire-repro — the integration facade
//!
//! This crate re-exports the whole NewsWire reproduction behind one
//! dependency, hosts the cross-crate integration tests (`tests/`), the
//! runnable examples (`examples/`), and the `newswire-sim` CLI.
//!
//! For a guided tour start at [`newswire`] (the paper's contribution) and
//! [`newswire::tech_news_deployment`]; the substrates are [`astrolabe`]
//! (gossip hierarchy), [`amcast`] (SendToZone multicast), [`filters`]
//! (subscription summaries), [`newsml`] (news formats and workloads),
//! [`simnet`] (the deterministic simulator) and [`baselines`] (the
//! centralized comparators).
//!
//! ```
//! use newswire_repro::prelude::*;
//!
//! let mut d = tech_news_deployment(40, 7);
//! d.settle(60);
//! let item = NewsItem::builder(PublisherId(0), 0)
//!     .headline("facade works")
//!     .category(Category::Technology)
//!     .build();
//! d.publish(SimTime::from_secs(60), item.clone());
//! d.settle(20);
//! assert_eq!(d.interested_nodes(&item), d.delivered_nodes(&item));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use amcast;
pub use astrolabe;
pub use baselines;
pub use filters;
pub use newsml;
pub use newswire;
pub use simnet;

/// The names most programs need, in one import.
pub mod prelude {
    pub use amcast::{FilterSpec, Strategy};
    pub use astrolabe::{Agent, AttrValue, Config as AstrolabeConfig, ZoneId, ZoneLayout};
    pub use filters::{BitArray, BloomFilter, CategoryMask};
    pub use newsml::{
        Category, ItemId, NewsItem, PublisherId, PublisherProfile, Subject, TraceGenerator,
    };
    pub use newswire::{
        tech_news_deployment, Deployment, DeploymentBuilder, NewsWireConfig, NewsWireNode,
        PublisherSpec, Subscription,
    };
    pub use simnet::{NetworkModel, NodeId, SimDuration, SimTime, Simulation};
}
