//! `newswire-sim` — the user-facing control application (paper §10: "a full
//! user control application in the same style as many of the current file
//! sharing applications").
//!
//! Drives simulated NewsWire deployments from the command line:
//!
//! ```text
//! newswire-sim run --subscribers 300 --items 10 --report
//! newswire-sim run --subscribers 500 --wan 0.02 --model masks --seed 7
//! newswire-sim trace --hours 2 --subscribers 200 --report
//! newswire-sim trace-gen --days 1 --format nitf | head
//! newswire-sim redundancy --polls 1,4,24
//! newswire-sim --help
//! ```

use std::fmt;
use std::process::ExitCode;

use newsml::{Category, NewsItem, PublisherId, PublisherProfile, TraceGenerator};
use newswire::{DeploymentBuilder, NewsWireConfig, PublisherSpec, SubscriptionModel};
use simnet::{fork, SimDuration};

const DAY_US: u64 = 86_400_000_000;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match Command::parse(&args) {
        Ok(Command::Help) => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Ok(Command::Run(opts)) => {
            run_items(&opts);
            ExitCode::SUCCESS
        }
        Ok(Command::Trace(opts)) => {
            run_trace(&opts);
            ExitCode::SUCCESS
        }
        Ok(Command::TraceGen { days, format, seed }) => {
            trace_gen(days, format, seed);
            ExitCode::SUCCESS
        }
        Ok(Command::Redundancy { polls }) => {
            redundancy(&polls);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("newswire-sim: {e}\n\n{HELP}");
            ExitCode::from(2)
        }
    }
}

const HELP: &str = "\
newswire-sim — simulated NewsWire deployments from the command line

USAGE:
  newswire-sim run [OPTIONS]         publish test items into a deployment
  newswire-sim trace [OPTIONS]       publish a generated news trace
  newswire-sim trace-gen [OPTIONS]   print a generated trace (no simulation)
  newswire-sim redundancy [OPTIONS]  the pull-model redundancy table
  newswire-sim --help

OPTIONS (run/trace):
  --subscribers N    subscriber count              [default: 200]
  --branching B      zone branching factor          [default: 16]
  --seed S           deterministic seed             [default: 42]
  --items K          items to publish (run only)    [default: 10]
  --hours H          trace length (trace only)      [default: 1]
  --wan P            WAN latency model + loss P     [default: off]
  --model M          bloom | masks                  [default: bloom]
  --report           print per-item delivery detail

OPTIONS (trace-gen):
  --days D           trace length in days           [default: 1]
  --format F         nitf | newsml | summary        [default: summary]
  --seed S           deterministic seed             [default: 42]

OPTIONS (redundancy):
  --polls LIST       comma-separated polls/day      [default: 1,2,4,8,24,48]
";

/// Parsed command line.
#[derive(Debug, PartialEq)]
enum Command {
    Help,
    Run(RunOpts),
    Trace(RunOpts),
    TraceGen { days: u64, format: TraceFormat, seed: u64 },
    Redundancy { polls: Vec<u64> },
}

#[derive(Debug, PartialEq, Clone)]
struct RunOpts {
    subscribers: u32,
    branching: u16,
    seed: u64,
    items: u64,
    hours: u64,
    wan: Option<f64>,
    model: SubscriptionModel,
    report: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            subscribers: 200,
            branching: 16,
            seed: 42,
            items: 10,
            hours: 1,
            wan: None,
            model: SubscriptionModel::Bloom { bits: 1024, hashes: 3 },
            report: false,
        }
    }
}

#[derive(Debug, PartialEq, Clone, Copy)]
enum TraceFormat {
    Nitf,
    Newsml,
    Summary,
}

#[derive(Debug, PartialEq)]
struct UsageError(String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn err(msg: impl Into<String>) -> UsageError {
    UsageError(msg.into())
}

impl Command {
    fn parse(args: &[String]) -> Result<Command, UsageError> {
        let mut it = args.iter().peekable();
        let Some(sub) = it.next() else { return Ok(Command::Help) };
        if sub == "--help" || sub == "-h" || sub == "help" {
            return Ok(Command::Help);
        }

        let mut opts = RunOpts::default();
        let mut days = 1u64;
        let mut format = TraceFormat::Summary;
        let mut polls: Vec<u64> = vec![1, 2, 4, 8, 24, 48];

        let take_value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                          flag: &str|
         -> Result<String, UsageError> {
            it.next().cloned().ok_or_else(|| err(format!("{flag} needs a value")))
        };

        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--subscribers" => {
                    opts.subscribers = take_value(&mut it, flag)?
                        .parse()
                        .map_err(|_| err("--subscribers expects a number"))?;
                }
                "--branching" => {
                    let b: u16 = take_value(&mut it, flag)?
                        .parse()
                        .map_err(|_| err("--branching expects a number"))?;
                    if !(2..=64).contains(&b) {
                        return Err(err("--branching must be between 2 and 64"));
                    }
                    opts.branching = b;
                }
                "--seed" => {
                    opts.seed = take_value(&mut it, flag)?
                        .parse()
                        .map_err(|_| err("--seed expects a number"))?;
                }
                "--items" => {
                    opts.items = take_value(&mut it, flag)?
                        .parse()
                        .map_err(|_| err("--items expects a number"))?;
                }
                "--hours" => {
                    opts.hours = take_value(&mut it, flag)?
                        .parse()
                        .map_err(|_| err("--hours expects a number"))?;
                }
                "--days" => {
                    days = take_value(&mut it, flag)?
                        .parse()
                        .map_err(|_| err("--days expects a number"))?;
                }
                "--wan" => {
                    let p: f64 = take_value(&mut it, flag)?
                        .parse()
                        .map_err(|_| err("--wan expects a loss probability"))?;
                    if !(0.0..1.0).contains(&p) {
                        return Err(err("--wan loss must be in [0, 1)"));
                    }
                    opts.wan = Some(p);
                }
                "--model" => match take_value(&mut it, flag)?.as_str() {
                    "bloom" => opts.model = SubscriptionModel::Bloom { bits: 1024, hashes: 3 },
                    "masks" => opts.model = SubscriptionModel::CategoryMask,
                    other => return Err(err(format!("unknown model `{other}`"))),
                },
                "--format" => match take_value(&mut it, flag)?.as_str() {
                    "nitf" => format = TraceFormat::Nitf,
                    "newsml" => format = TraceFormat::Newsml,
                    "summary" => format = TraceFormat::Summary,
                    other => return Err(err(format!("unknown format `{other}`"))),
                },
                "--polls" => {
                    let list = take_value(&mut it, flag)?;
                    polls = list
                        .split(',')
                        .map(|p| p.parse::<u64>().map_err(|_| err("--polls expects numbers")))
                        .collect::<Result<_, _>>()?;
                    if polls.is_empty() || polls.contains(&0) {
                        return Err(err("--polls entries must be positive"));
                    }
                }
                "--report" => opts.report = true,
                other => return Err(err(format!("unknown option `{other}`"))),
            }
        }

        match sub.as_str() {
            "run" => Ok(Command::Run(opts)),
            "trace" => Ok(Command::Trace(opts)),
            "trace-gen" => Ok(Command::TraceGen { days, format, seed: opts.seed }),
            "redundancy" => Ok(Command::Redundancy { polls }),
            other => Err(err(format!("unknown command `{other}`"))),
        }
    }
}

fn build_deployment(opts: &RunOpts) -> newswire::Deployment {
    let mut config = NewsWireConfig::tech_news();
    config.model = opts.model;
    let mut builder = DeploymentBuilder::new(opts.subscribers, opts.seed)
        .branching(opts.branching)
        .config(config)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .publisher(PublisherSpec::global(PublisherProfile::boutique(
            PublisherId(1),
            "boutique",
            Category::Science,
        )));
    if let Some(p) = opts.wan {
        builder = builder.wan(p);
    }
    builder.build()
}

fn print_summary(d: &newswire::Deployment) {
    let stats = d.total_stats();
    println!("deliveries:            {}", stats.delivered);
    println!("duplicates suppressed: {}", stats.duplicates);
    println!("bloom FP deliveries:   {}", stats.bloom_fp_deliveries);
    println!("repair items:          {}", stats.repair_items_sent);
    let mut lat = d.delivery_latency_summary();
    if !lat.is_empty() {
        println!(
            "latency:               p50 {:.2}s  p99 {:.2}s  max {:.2}s",
            lat.quantile(0.5),
            lat.quantile(0.99),
            lat.max()
        );
    }
    let total = d.sim.total_counters();
    println!(
        "network:               {} msgs, {:.1} MB",
        total.msgs_sent,
        total.bytes_sent as f64 / 1e6
    );
}

fn run_items(opts: &RunOpts) {
    println!(
        "deployment: {} subscribers + 2 publishers, branching {}, seed {}",
        opts.subscribers, opts.branching, opts.seed
    );
    let mut d = build_deployment(opts);
    println!("settling 75 simulated seconds…");
    d.settle(75);
    let t0 = d.sim.now();
    let mut items = Vec::new();
    for seq in 0..opts.items {
        let item = NewsItem::builder(PublisherId(0), seq)
            .headline(format!("cli item {seq}"))
            .category(Category::Technology)
            .build();
        d.publish(t0 + SimDuration::from_secs(2 * seq), item.clone());
        items.push(item);
    }
    d.settle(2 * opts.items + 30);
    if opts.report {
        for item in &items {
            println!(
                "  {}  interested {:>4}  delivered {:>4}",
                item.id,
                d.interested_nodes(item).len(),
                d.delivered_nodes(item).len()
            );
        }
    }
    print_summary(&d);
}

fn run_trace(opts: &RunOpts) {
    println!(
        "deployment: {} subscribers + 2 publishers, branching {}, seed {}",
        opts.subscribers, opts.branching, opts.seed
    );
    let mut d = build_deployment(opts);
    println!("settling 75 simulated seconds…");
    d.settle(75);
    let generator = TraceGenerator::new(vec![
        PublisherProfile::slashdot(PublisherId(0)),
        PublisherProfile::boutique(PublisherId(1), "boutique", Category::Science),
    ]);
    let mut rng = fork(opts.seed, 1);
    let horizon_us = opts.hours * 3_600_000_000;
    let events = generator.generate(&mut rng, horizon_us);
    println!("publishing {} items over {} simulated hour(s)…", events.len(), opts.hours);
    let t0 = d.sim.now();
    for ev in &events {
        d.publish(t0 + SimDuration::from_micros(ev.at_us), ev.item.clone());
    }
    d.settle(horizon_us / 1_000_000 + 40);
    if opts.report {
        let wanted: usize = events.iter().map(|e| d.interested_nodes(&e.item).len()).sum();
        let got: usize = events.iter().map(|e| d.delivered_nodes(&e.item).len()).sum();
        println!("ground truth: {got} of {wanted} interested subscriptions delivered");
    }
    print_summary(&d);
}

fn trace_gen(days: u64, format: TraceFormat, seed: u64) {
    let generator = TraceGenerator::new(vec![
        PublisherProfile::slashdot(PublisherId(0)),
        PublisherProfile::reuters(PublisherId(1)),
    ]);
    let mut rng = fork(seed, 2);
    let events = generator.generate(&mut rng, days * DAY_US);
    for ev in &events {
        match format {
            TraceFormat::Nitf => println!("{}", newsml::to_nitf_xml(&ev.item)),
            TraceFormat::Newsml => println!("{}", newsml::to_newsml_xml(&ev.item)),
            TraceFormat::Summary => println!(
                "{:>12}us {} [{}] {}",
                ev.at_us,
                ev.item.id,
                ev.item.categories.first().map(|c| c.name()).unwrap_or("-"),
                ev.item.headline
            ),
        }
    }
    eprintln!("({} items over {days} day(s))", events.len());
}

fn redundancy(polls: &[u64]) {
    let generator = TraceGenerator::new(vec![PublisherProfile::slashdot(PublisherId(0))]);
    let mut rng = fork(3, 3);
    let days = 14u64;
    let trace = generator.generate(&mut rng, days * DAY_US);
    let times: Vec<u64> = trace.iter().map(|e| e.at_us).collect();
    println!(
        "polls/day  redundant%  (rolling 20-headline page, {} stories/day)",
        times.len() as u64 / days
    );
    for &p in polls {
        let r = baselines::simulate_polling(&times, DAY_US / p, days * DAY_US, 20, 300);
        println!("{:>9}  {:>9.1}", p, 100.0 * r.redundant_fraction());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Command, UsageError> {
        let args: Vec<String> = words.iter().map(|s| (*s).to_string()).collect();
        Command::parse(&args)
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
    }

    #[test]
    fn run_defaults_and_overrides() {
        let Command::Run(o) = parse(&["run"]).unwrap() else { panic!() };
        assert_eq!(o.subscribers, 200);
        let Command::Run(o) =
            parse(&["run", "--subscribers", "50", "--seed", "7", "--report"]).unwrap()
        else {
            panic!()
        };
        assert_eq!(o.subscribers, 50);
        assert_eq!(o.seed, 7);
        assert!(o.report);
    }

    #[test]
    fn model_and_wan() {
        let Command::Run(o) = parse(&["run", "--model", "masks", "--wan", "0.05"]).unwrap() else {
            panic!()
        };
        assert_eq!(o.model, SubscriptionModel::CategoryMask);
        assert_eq!(o.wan, Some(0.05));
        assert!(parse(&["run", "--model", "smoke"]).is_err());
        assert!(parse(&["run", "--wan", "1.5"]).is_err());
    }

    #[test]
    fn trace_gen_flags() {
        let Command::TraceGen { days, format, seed } =
            parse(&["trace-gen", "--days", "3", "--format", "newsml", "--seed", "9"]).unwrap()
        else {
            panic!()
        };
        assert_eq!(days, 3);
        assert_eq!(format, TraceFormat::Newsml);
        assert_eq!(seed, 9);
    }

    #[test]
    fn redundancy_polls() {
        let Command::Redundancy { polls } = parse(&["redundancy", "--polls", "1,4,24"]).unwrap()
        else {
            panic!()
        };
        assert_eq!(polls, vec![1, 4, 24]);
        assert!(parse(&["redundancy", "--polls", "0"]).is_err());
        assert!(parse(&["redundancy", "--polls", "a,b"]).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["run", "--nope"]).is_err());
        assert!(parse(&["run", "--subscribers"]).is_err());
        assert!(parse(&["run", "--branching", "65"]).is_err());
    }
}
