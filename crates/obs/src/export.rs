//! Deterministic telemetry export.
//!
//! Exports are consumed by CI determinism gates (same seed ⇒ byte-identical
//! JSON), so everything here is integer-valued, ordered by slot id and node
//! id, and hand-serialized — no hash-map iteration, no floats, no locale.

use crate::metrics::{MetricSet, Schema};
use crate::trace::{kind, TraceEvent};

/// Summary of a raw-sample series (integers only; exact quantiles are
/// computed by consumers from the raw samples, not here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeriesStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl SeriesStats {
    /// Summarizes a sample slice.
    pub fn of(samples: &[u64]) -> SeriesStats {
        SeriesStats {
            count: samples.len() as u64,
            sum: samples.iter().sum(),
            min: samples.iter().copied().min().unwrap_or(0),
            max: samples.iter().copied().max().unwrap_or(0),
        }
    }
}

/// One node's non-zero metrics with names resolved against the schema.
#[derive(Debug, Clone, Default)]
pub struct NodeMetrics {
    /// The node id ([`TraceEvent::GLOBAL`] for the simulation-global set).
    pub node: u32,
    /// Non-zero counters, in slot order.
    pub counters: Vec<(&'static str, u64)>,
    /// Non-zero gauges, in slot order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Non-empty histograms (bucket arrays), in slot order.
    pub hists: Vec<(&'static str, Vec<u64>)>,
    /// Non-empty series summaries, in slot order.
    pub series: Vec<(&'static str, SeriesStats)>,
}

impl NodeMetrics {
    /// Extracts the non-zero slots of `set` under `schema`'s names.
    pub fn from_set(node: u32, set: &MetricSet, schema: &Schema) -> NodeMetrics {
        NodeMetrics {
            node,
            counters: set.counters_nonzero().map(|(id, v)| (schema.counter_name(id), v)).collect(),
            gauges: set.gauges_nonzero().map(|(id, v)| (schema.gauge_name(id), v)).collect(),
            hists: set
                .hists_nonzero()
                .map(|(id, h)| (schema.hist_def(id).name, h.to_vec()))
                .collect(),
            series: set
                .series_nonzero()
                .map(|(id, s)| (schema.series_name(id), SeriesStats::of(s)))
                .collect(),
        }
    }

    /// True when the set held nothing worth exporting.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.series.is_empty()
    }
}

/// A reconstructed interval between two paired trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Node of the *end* record (for publish→deliver, the subscriber).
    pub node: u32,
    /// The correlation key (the `a` operand shared by both records).
    pub key: u64,
    /// Timestamp of the start record, µs.
    pub start_us: u64,
    /// Timestamp of the end record, µs.
    pub end_us: u64,
}

impl Span {
    /// Span length in µs.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// A drained (or snapshotted) telemetry timeline.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Master seed of the simulation that produced this.
    pub seed: u64,
    /// Simulated time at drain, µs.
    pub now_us: u64,
    /// Trace records shed by the ring's drop-oldest policy.
    pub events_dropped: u64,
    /// Retained trace records, oldest first.
    pub events: Vec<TraceEvent>,
    /// Per-node metrics (nodes with at least one non-zero slot), by node id.
    pub nodes: Vec<NodeMetrics>,
    /// The simulation-global metric set.
    pub global: NodeMetrics,
}

fn push_metric_obj(out: &mut String, m: &NodeMetrics) {
    out.push_str("{\"node\":");
    if m.node == TraceEvent::GLOBAL {
        out.push_str("\"global\"");
    } else {
        out.push_str(&m.node.to_string());
    }
    out.push_str(",\"counters\":{");
    for (i, (name, v)) in m.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{v}"));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in m.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{v}"));
    }
    out.push_str("},\"hists\":{");
    for (i, (name, buckets)) in m.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":["));
        for (j, b) in buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push(']');
    }
    out.push_str("},\"series\":{");
    for (i, (name, s)) in m.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
            s.count, s.sum, s.min, s.max
        ));
    }
    out.push_str("}}");
}

impl Telemetry {
    /// Serializes the full timeline as deterministic JSON.
    ///
    /// Key order, node order and slot order are all fixed; values are all
    /// integers or fixed strings, so two same-seed runs produce the same
    /// bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.events.len() * 64);
        out.push_str(&format!(
            "{{\"seed\":{},\"now_us\":{},\"events_dropped\":{},\"events\":[",
            self.seed, self.now_us, self.events_dropped
        ));
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"t_us\":{},\"node\":{},\"layer\":\"{}\",\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
                e.t_us,
                e.node,
                e.layer.name(),
                kind::name(e.kind),
                e.a,
                e.b
            ));
        }
        out.push_str("],\"nodes\":[");
        for (i, m) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_metric_obj(&mut out, m);
        }
        out.push_str("],\"global\":");
        push_metric_obj(&mut out, &self.global);
        out.push('}');
        out
    }

    /// Serializes the trace timeline as CSV (`t_us,node,layer,kind,a,b`),
    /// one record per line, with a header row.
    pub fn events_csv(&self) -> String {
        let mut out = String::with_capacity(32 + self.events.len() * 40);
        out.push_str("t_us,node,layer,kind,a,b\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                e.t_us,
                e.node,
                e.layer.name(),
                kind::name(e.kind),
                e.a,
                e.b
            ));
        }
        out
    }

    /// Pairs `start_kind` records with later `end_kind` records sharing the
    /// same `a` operand (the correlation key), returning one [`Span`] per
    /// end record. A single start may anchor many ends (e.g. one
    /// `NW_PUBLISH` fanning out to many `NW_DELIVER`s); ends with no
    /// recorded start are skipped (their start fell off the ring).
    pub fn pair_spans(&self, start_kind: u8, end_kind: u8) -> Vec<Span> {
        let mut starts: Vec<(u64, u64)> = Vec::new(); // (key, t_us), first wins
        let mut out = Vec::new();
        for e in &self.events {
            if e.kind == start_kind {
                if !starts.iter().any(|&(k, _)| k == e.a) {
                    starts.push((e.a, e.t_us));
                }
            } else if e.kind == end_kind {
                if let Some(&(_, t0)) = starts.iter().find(|&&(k, _)| k == e.a) {
                    out.push(Span { node: e.node, key: e.a, start_us: t0, end_us: e.t_us });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::TelemetryHub;
    use crate::metrics::{ctr, series};
    use crate::trace::Layer;

    fn sample_hub() -> TelemetryHub {
        let mut hub = TelemetryHub::new(42);
        hub.ensure_nodes(2);
        hub.set_now_us(5_000);
        hub.node_mut(0).unwrap().ctr_add(ctr::MSGS_SENT, 3);
        hub.node_mut(1).unwrap().series_push(series::DELIVERY_LATENCY_US, 250);
        hub.global_mut().ctr_add(ctr::DROPS_LOSS, 1);
        hub.trace(0, Layer::News, kind::NW_PUBLISH, 77, 0);
        hub.trace(1, Layer::News, kind::NW_DELIVER, 77, 250);
        hub
    }

    #[test]
    fn json_is_deterministic_and_wellformed() {
        let a = sample_hub().snapshot().to_json();
        let b = sample_hub().snapshot().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"seed\":42,"));
        assert!(a.contains("\"kind\":\"nw_publish\""));
        assert!(a.contains("\"msgs_sent\":3"));
        assert!(
            a.contains("\"delivery_latency_us\":{\"count\":1,\"sum\":250,\"min\":250,\"max\":250}")
        );
        assert!(a.contains("\"node\":\"global\""));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn csv_lists_events_in_order() {
        let csv = sample_hub().snapshot().events_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_us,node,layer,kind,a,b");
        assert_eq!(lines[1], "5000,0,news,nw_publish,77,0");
        assert_eq!(lines[2], "5000,1,news,nw_deliver,77,250");
    }

    #[test]
    fn spans_pair_on_key() {
        let mut hub = TelemetryHub::new(0);
        hub.set_now_us(100);
        hub.trace(0, Layer::News, kind::NW_PUBLISH, 9, 0);
        hub.set_now_us(350);
        hub.trace(4, Layer::News, kind::NW_DELIVER, 9, 250);
        hub.set_now_us(400);
        hub.trace(5, Layer::News, kind::NW_DELIVER, 9, 300);
        // An end with no matching start is skipped.
        hub.trace(6, Layer::News, kind::NW_DELIVER, 1234, 0);
        let spans = hub.snapshot().pair_spans(kind::NW_PUBLISH, kind::NW_DELIVER);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], Span { node: 4, key: 9, start_us: 100, end_us: 350 });
        assert_eq!(spans[1].duration_us(), 300);
    }
}
