//! The thread-local collector: how deep protocol code reaches the hub.
//!
//! The simulator installs its hub handle here for the duration of each node
//! callback; the instrumentation macros route through [`emit`] and friends,
//! which look the handle up and do nothing when none is installed (protocol
//! code running outside a simulation, e.g. in unit tests). The simulation is
//! single-threaded, so "thread-local" is simply "this simulation while its
//! event loop runs" — installation nests and restores like a dynamic scope.

use std::cell::RefCell;
use std::rc::Rc;

use crate::hub::TelemetryHub;
use crate::metrics::{CtrId, GaugeId, HistId, SeriesId};
use crate::trace::Layer;

thread_local! {
    static CURRENT: RefCell<Option<Rc<RefCell<TelemetryHub>>>> = const { RefCell::new(None) };
}

/// Scope guard returned by [`install`]; restores the previously installed
/// hub (if any) when dropped.
#[derive(Debug)]
pub struct HubGuard {
    prev: Option<Rc<RefCell<TelemetryHub>>>,
}

/// Installs `hub` as the current collector target, returning a guard that
/// restores the previous target on drop. Nested simulations (a simulation
/// driven from inside another's callback) therefore observe their own hubs.
#[must_use = "the hub is uninstalled when the guard drops"]
pub fn install(hub: Rc<RefCell<TelemetryHub>>) -> HubGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(hub));
    HubGuard { prev }
}

/// Installs `hub` unless that same hub is already the current target, in
/// which case no work is done and no guard is needed. The simulator's event
/// loop installs once per run and its per-event dispatch then hits the
/// cheap pointer-equality path; entry points that dispatch outside a run
/// loop (or a nested simulation's callbacks) still get a proper scoped
/// install.
#[must_use = "when Some, the hub is uninstalled when the guard drops"]
pub fn install_if_needed(hub: &Rc<RefCell<TelemetryHub>>) -> Option<HubGuard> {
    let already = CURRENT.with(|c| c.borrow().as_ref().is_some_and(|cur| Rc::ptr_eq(cur, hub)));
    if already {
        None
    } else {
        Some(install(Rc::clone(hub)))
    }
}

impl Drop for HubGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Runs `f` against the installed hub, if any.
///
/// Returns `None` when no hub is installed. Must not be called while the
/// caller already holds a borrow of the same hub (the simulator only borrows
/// outside node callbacks, so protocol code is always safe).
pub fn with_hub<R>(f: impl FnOnce(&mut TelemetryHub) -> R) -> Option<R> {
    CURRENT.with(|c| {
        let cur = c.borrow();
        cur.as_ref().map(|rc| f(&mut rc.borrow_mut()))
    })
}

/// True when a hub is currently installed.
pub fn installed() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Emits a trace record stamped with the hub's current simulated time.
#[inline]
pub fn emit(node: u32, layer: Layer, kind: u8, a: u64, b: u64) {
    with_hub(|h| h.trace(node, layer, kind, a, b));
}

/// Adds to a per-node counter slot.
#[inline]
pub fn counter_add(node: u32, id: CtrId, v: u64) {
    with_hub(|h| {
        if let Some(m) = h.node_mut(node as usize) {
            m.ctr_add(id, v);
        }
    });
}

/// Sets a per-node gauge slot.
#[inline]
pub fn gauge_set(node: u32, id: GaugeId, v: u64) {
    with_hub(|h| {
        if let Some(m) = h.node_mut(node as usize) {
            m.gauge_set(id, v);
        }
    });
}

/// Raises a per-node gauge slot to `v` if larger.
#[inline]
pub fn gauge_max(node: u32, id: GaugeId, v: u64) {
    with_hub(|h| {
        if let Some(m) = h.node_mut(node as usize) {
            m.gauge_max(id, v);
        }
    });
}

/// Records into a per-node histogram slot.
#[inline]
pub fn hist_record(node: u32, id: HistId, v: u64) {
    with_hub(|h| {
        let def = h.schema().hist_def(id);
        if let Some(m) = h.node_mut(node as usize) {
            m.hist_record(id, def, v);
        }
    });
}

/// Appends to a per-node series slot.
#[inline]
pub fn series_record(node: u32, id: SeriesId, v: u64) {
    with_hub(|h| {
        if let Some(m) = h.node_mut(node as usize) {
            m.series_push(id, v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ctr;

    #[test]
    fn emit_without_hub_is_a_noop() {
        assert!(!installed());
        emit(0, Layer::Sim, crate::kind::MSG_DELIVER, 0, 0);
        counter_add(0, ctr::MSGS_SENT, 1);
    }

    #[test]
    fn install_scopes_and_nests() {
        let outer = Rc::new(RefCell::new(TelemetryHub::new(1)));
        outer.borrow_mut().ensure_nodes(1);
        let inner = Rc::new(RefCell::new(TelemetryHub::new(2)));
        inner.borrow_mut().ensure_nodes(1);
        {
            let _g1 = install(outer.clone());
            counter_add(0, ctr::MSGS_SENT, 1);
            {
                let _g2 = install(inner.clone());
                counter_add(0, ctr::MSGS_SENT, 10);
            }
            counter_add(0, ctr::MSGS_SENT, 1);
        }
        assert!(!installed());
        assert_eq!(outer.borrow().node_counter(0, ctr::MSGS_SENT), 2);
        assert_eq!(inner.borrow().node_counter(0, ctr::MSGS_SENT), 10);
    }

    #[test]
    fn install_if_needed_skips_when_hub_already_current() {
        let hub = Rc::new(RefCell::new(TelemetryHub::new(7)));
        hub.borrow_mut().ensure_nodes(1);
        let other = Rc::new(RefCell::new(TelemetryHub::new(8)));
        {
            let outer = install_if_needed(&hub);
            assert!(outer.is_some(), "nothing installed yet");
            assert!(install_if_needed(&hub).is_none(), "same hub needs no guard");
            let inner = install_if_needed(&other);
            assert!(inner.is_some(), "different hub must scope-install");
            drop(inner);
            counter_add(0, ctr::MSGS_SENT, 1);
        }
        assert!(!installed());
        assert_eq!(hub.borrow().node_counter(0, ctr::MSGS_SENT), 1);
    }

    #[test]
    fn counter_add_to_unknown_node_is_ignored() {
        let hub = Rc::new(RefCell::new(TelemetryHub::new(3)));
        let _g = install(hub.clone());
        counter_add(u32::MAX, ctr::MSGS_SENT, 5);
        assert_eq!(hub.borrow().counter_total(ctr::MSGS_SENT), 0);
    }
}
