//! The fixed-slot metrics registry.
//!
//! Metric identity is a small integer slot into a per-node array, assigned
//! once by a [`Schema`]. The hot path for every counter bump is therefore a
//! bounds-checked array index — no hashing, no string lookups. The stack's
//! built-in metrics are pre-registered by [`Schema::stack`] at the positions
//! named by the constants in [`ctr`], [`gauge`], [`hist`] and [`series`];
//! callers may register additional slots at runtime (registration is
//! idempotent per name: re-registering returns the existing slot).

use std::fmt;

/// Slot id of a counter (also used for monotone global/fault tallies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtrId(pub u16);

/// Slot id of a gauge (last-set or high-water value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GaugeId(pub u16);

/// Slot id of a fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HistId(pub u16);

/// Slot id of a raw-sample series (exact quantiles, unbounded growth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesId(pub u16);

macro_rules! slots {
    ($idty:ident, $($(#[$m:meta])* $name:ident = $idx:expr, $s:expr;)*) => {
        $( $(#[$m])* pub const $name: super::$idty = super::$idty($idx); )*
        /// Slot names in registration order (index == slot id).
        pub const NAMES: &[&str] = &[$($s),*];
    };
}

/// Built-in counter slots, grouped by the layer that owns them.
pub mod ctr {
    slots! { CtrId,
        // -- simnet: per-node traffic accounting (always maintained; these
        //    back the `TrafficCounters` view) --
        /// Messages sent by this node.
        MSGS_SENT = 0, "msgs_sent";
        /// Payload bytes sent by this node.
        BYTES_SENT = 1, "bytes_sent";
        /// Messages delivered to this node.
        MSGS_RECV = 2, "msgs_recv";
        /// Payload bytes delivered to this node.
        BYTES_RECV = 3, "bytes_recv";
        /// Messages addressed to this node that were lost (drop or downtime).
        MSGS_LOST = 4, "msgs_lost";
        /// Timers that fired on this node.
        TIMERS_FIRED = 5, "timers_fired";
        // -- simnet: global fault tallies (kept on the hub's global set;
        //    these back the `FaultCounters` view) --
        /// Messages dropped by a network partition.
        DROPS_PARTITION = 6, "drops_partition";
        /// Messages dropped by a directed link cut.
        DROPS_LINK_CUT = 7, "drops_link_cut";
        /// Messages dropped by random loss.
        DROPS_LOSS = 8, "drops_loss";
        /// Messages dropped by gray degradation at the sender.
        DROPS_GRAY_SEND = 9, "drops_gray_send";
        /// Messages dropped by gray degradation at the receiver.
        DROPS_GRAY_RECV = 10, "drops_gray_recv";
        /// Extra copies created by network duplication.
        MSGS_DUPLICATED = 11, "msgs_duplicated";
        /// Messages that took a reorder-jitter detour.
        MSGS_JITTERED = 12, "msgs_jittered";
        /// Node crashes executed.
        CRASHES = 13, "crashes";
        /// Node recoveries executed.
        RECOVERIES = 14, "recoveries";
        /// Partitions installed.
        PARTITIONS_STARTED = 15, "partitions_started";
        /// Partitions healed.
        PARTITIONS_HEALED = 16, "partitions_healed";
        // -- astrolabe --
        /// Gossip rounds (periodic ticks) executed.
        GOSSIP_ROUNDS = 17, "gossip_rounds";
        /// Digest messages sent.
        GOSSIP_DIGESTS_SENT = 18, "gossip_digests_sent";
        /// Rows shipped in digest replies / diff pushes.
        GOSSIP_DIFF_ROWS = 19, "gossip_diff_rows";
        /// Rows accepted (merged as newer) into the local zone tables.
        GOSSIP_ROWS_MERGED = 20, "gossip_rows_merged";
        /// Aggregation-function recomputations over a zone level.
        AGG_RECOMPUTES = 21, "agg_recomputes";
        /// Aggregations satisfied by the content-generation cache.
        AGG_CACHE_HITS = 22, "agg_cache_hits";
        /// Digest constructions satisfied by the per-level digest cache.
        DIGEST_CACHE_HITS = 23, "digest_cache_hits";
        /// Peer-list constructions satisfied by the peer cache.
        PEERS_CACHE_HITS = 24, "peers_cache_hits";
        // -- amcast --
        /// Multicast forwards sent down the zone tree.
        MCAST_FORWARDS = 25, "mcast_forwards";
        /// Duplicate multicast messages suppressed.
        MCAST_DUPES_DROPPED = 26, "mcast_dupes_dropped";
        /// Multicast routing dead-ends.
        MCAST_ROUTE_FAILURES = 27, "mcast_route_failures";
        /// Messages delivered to the local application by the mcast layer.
        MCAST_LOCAL_DELIVERIES = 28, "mcast_local_deliveries";
        // -- newswire --
        /// Items published by this node.
        NW_PUBLISHED = 29, "nw_published";
        /// Items delivered to the application.
        NW_DELIVERED = 30, "nw_delivered";
        /// Deliveries that arrived via the repair path.
        NW_DELIVERED_REPAIR = 31, "nw_delivered_repair";
        /// Duplicate arrivals suppressed before the application.
        NW_DUPLICATES = 32, "nw_duplicates";
        /// Bloom-filter false-positive deliveries caught by the exact check.
        NW_BLOOM_FP = 33, "nw_bloom_fp";
        /// Arrivals filtered out by the exact predicate.
        NW_PREDICATE_FILTERED = 34, "nw_predicate_filtered";
        /// Arrivals rejected by authentication.
        NW_AUTH_REJECTS = 35, "nw_auth_rejects";
        /// Publishes denied by capability checks.
        NW_PUBLISH_DENIED = 36, "nw_publish_denied";
        /// Tree forwards sent.
        NW_FORWARDS = 37, "nw_forwards";
        /// Routing dead-ends at the newswire layer.
        NW_ROUTE_FAILURES = 38, "nw_route_failures";
        /// Hand-off acknowledgements received.
        NW_ACKS_RECEIVED = 39, "nw_acks_received";
        /// Hand-off retries (same representative).
        NW_ACK_RETRIES = 40, "nw_ack_retries";
        /// Hand-off failovers to the next representative.
        NW_ACK_FAILOVERS = 41, "nw_ack_failovers";
        /// Hand-offs abandoned after exhausting representatives.
        NW_HANDOFFS_ABANDONED = 42, "nw_handoffs_abandoned";
        /// Failovers short-circuited by φ-accrual suspicion.
        NW_SUSPECT_FAILOVERS = 43, "nw_suspect_failovers";
        /// Repair requests served.
        NW_REPAIRS_SERVED = 44, "nw_repairs_served";
        /// Items shipped in repair replies.
        NW_REPAIR_ITEMS_SENT = 45, "nw_repair_items_sent";
        /// Repair requests retargeted after a reply deadline.
        NW_REPAIR_RETARGETS = 46, "nw_repair_retargets";
        /// Anti-entropy reconcile requests issued.
        NW_RECONCILE_REQUESTS = 47, "nw_reconcile_requests";
        /// Items received in reconcile replies.
        NW_RECONCILE_ITEMS_RECV = 48, "nw_reconcile_items_recv";
        /// Reconcile requests served for peers.
        NW_RECONCILES_SERVED = 49, "nw_reconciles_served";
        /// Items shipped in reconcile replies.
        NW_RECONCILE_ITEMS_SENT = 50, "nw_reconcile_items_sent";
        /// Bytes shipped in reconcile replies.
        NW_RECONCILE_BYTES_SENT = 51, "nw_reconcile_bytes_sent";
        /// Reconcile requests retargeted after a reply deadline.
        NW_RECONCILE_RETARGETS = 52, "nw_reconcile_retargets";
        // -- oracle verdicts (global set; recorded post-run) --
        /// Oracle runs recorded.
        ORACLE_RUNS = 53, "oracle_runs";
        /// Duplicate-delivery violations found by the oracle.
        ORACLE_DUP_VIOLATIONS = 54, "oracle_dup_violations";
        /// Unwanted-delivery violations found by the oracle.
        ORACLE_UNWANTED_VIOLATIONS = 55, "oracle_unwanted_violations";
        /// Missed-delivery violations found by the oracle.
        ORACLE_MISSED_VIOLATIONS = 56, "oracle_missed_violations";
        /// Survivor article logs left unconverged.
        ORACLE_UNCONVERGED_LOGS = 57, "oracle_unconverged_logs";
        // -- crash recovery --
        /// Cold restarts with stable storage intact (`ColdDurable`).
        COLD_RESTARTS_DURABLE = 58, "cold_restarts_durable";
        /// Cold restarts with everything wiped (`ColdAmnesia`).
        COLD_RESTARTS_AMNESIA = 59, "cold_restarts_amnesia";
        /// Unsynced disk writes lost at crash time.
        DISK_WRITES_LOST = 60, "disk_writes_lost";
        /// Newer peer incarnations observed in gossip (fence + φ reset).
        INCARNATION_BUMPS = 61, "incarnation_bumps";
        /// Recovery protocols run to completion (article logs hole-free).
        NW_RECOVERIES = 62, "nw_recoveries";
        /// Items re-acquired from peers while a node was recovering.
        NW_BACKFILL_ITEMS = 63, "nw_backfill_items";
        // -- adversarial faults + self-stabilization --
        /// State-corruption strikes executed by the fault engine.
        STATE_CORRUPTIONS = 64, "state_corruptions";
        /// Gossip rows rejected by defensive ingest validation.
        CORRUPT_ROWS_REJECTED = 65, "corrupt_rows_rejected";
        /// Divergences repaired by the periodic local-state self-audit.
        SELF_AUDIT_REPAIRS = 66, "self_audit_repairs";
        /// Outbound messages tampered with or dropped by a liar intercept.
        LIAR_MESSAGES_INTERCEPTED = 67, "liar_messages_intercepted";
        /// Self-stabilization verdicts recorded by the oracle.
        ORACLE_STABILIZATION_RUNS = 68, "oracle_stabilization_runs";
        // -- Byzantine zones: collusion, forgery, signed-authority defenses --
        /// Items rejected by signature verification on an admission path.
        NW_FORGED_REJECTS = 69, "forged_rejects";
        /// Peers quarantined out of peer selection by misbehavior score.
        NW_QUARANTINES = 70, "quarantines";
        /// Epoch claims refused for lacking (or failing) publisher-signed
        /// authority.
        NW_SIGNED_EPOCH_REFUSALS = 71, "signed_epoch_refusals";
        /// Collusion-script strikes executed against colluding members.
        COLLUSION_STRIKES = 72, "collusion_strikes";
        /// Outbound messages tampered or dropped by a colluding member.
        COLLUSION_INTERCEPTS = 73, "collusion_intercepts";
        /// Forged items fabricated into node state by `ForgeItems` strikes.
        FORGED_ITEMS_INJECTED = 74, "forged_items_injected";
        /// Forged-delivery violations found by the oracle.
        ORACLE_FORGED_VIOLATIONS = 75, "oracle_forged_violations";
        // -- delta wire protocol (all zero unless NEWSWIRE_DELTAS=1) --
        /// Compressed wire bytes actually shipped (delta accounting model);
        /// compare against `bytes_sent`, which always prices full bodies.
        BYTES_WIRE = 76, "bytes_wire";
        /// Item payloads sent as chunk deltas instead of full bodies.
        DELTA_ITEMS_SENT = 77, "delta_items_sent";
        /// Bytes saved by item chunk deltas vs full bodies.
        DELTA_ITEM_BYTES_SAVED = 78, "delta_item_bytes_saved";
        /// Item sends that fell back to full bodies (no usable baseline).
        DELTA_FALLBACK_FULL = 79, "delta_fallback_full";
        /// Delta envelopes deferred at delivery for lack of the baseline
        /// (recovered later through anti-entropy).
        DELTA_DEFERRED = 80, "delta_deferred";
        /// Gossip rows shipped as stamp-refresh records (content unchanged).
        GOSSIP_REFRESH_ROWS = 81, "gossip_refresh_rows";
        /// Bytes saved by stamp-refresh records vs full row bodies.
        GOSSIP_REFRESH_BYTES_SAVED = 82, "gossip_refresh_bytes_saved";
        /// Partial (delta) digests sent in place of full digests.
        GOSSIP_DELTA_DIGESTS = 83, "gossip_delta_digests";
        /// Full-digest fallbacks (periodic safety net or generation gap).
        GOSSIP_FULL_FALLBACKS = 84, "gossip_full_fallbacks";
        // -- trust-root rotation: key compromise, revocation, Sybil
        //    admission --
        /// Stolen-key strikes executed against compromised members.
        KEY_COMPROMISE_STRIKES = 85, "key_compromise_strikes";
        /// Fabricated identities injected by `SybilFlood` strikes.
        SYBIL_JOINS_ATTEMPTED = 86, "sybil_joins_attempted";
        /// Unendorsed member rows refused at gossip admission.
        SYBIL_JOINS_REFUSED = 87, "sybil_joins_refused";
        /// Rotation/revocation records verified and adopted.
        CERT_REVOCATIONS_SEEN = 88, "cert_revocations_seen";
        /// Admissions refused because the signing key-epoch was revoked.
        NW_REVOKED_KEY_REJECTS = 89, "revoked_key_rejects";
        /// Cached items retroactively purged after their key was revoked.
        NW_RETRO_PURGED_ITEMS = 90, "retro_purged_items";
        /// Identities first held in the bounded probation set.
        NW_PROBATION_HOLDS = 91, "probation_holds";
    }
}

/// Built-in gauge slots.
pub mod gauge {
    slots! { GaugeId,
        /// MIB rows currently held by this node's Astrolabe agent.
        ASTRO_ROWS_HELD = 0, "astro_rows_held";
        /// High-water mark of the newswire per-node work queue.
        NW_PEAK_QUEUE = 1, "nw_peak_queue";
        /// High-water mark of the mcast per-node work queue.
        MCAST_PEAK_QUEUE = 2, "mcast_peak_queue";
    }
}

/// Built-in histogram slots.
pub mod hist {
    /// Bucket edges (bytes) for gossip digest sizes.
    pub const DIGEST_BYTES_EDGES: &[u64] =
        &[64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536];
    /// Bucket edges (row counts) for gossip diff sizes.
    pub const DIFF_ROWS_EDGES: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];
    slots! { HistId,
        /// Wire size of each gossip digest message sent, in bytes.
        GOSSIP_DIGEST_BYTES = 0, "gossip_digest_bytes";
        /// Rows carried by each digest reply / diff push.
        GOSSIP_DIFF_ROWS = 1, "gossip_diff_rows";
    }
}

/// Built-in series slots (raw samples, exact quantiles).
pub mod series {
    slots! { SeriesId,
        /// Publish→deliver latency of each application delivery, in µs.
        DELIVERY_LATENCY_US = 0, "delivery_latency_us";
        /// Cold-restart → logs-hole-free recovery duration, in µs.
        RECOVERY_DURATION_US = 1, "recovery_duration_us";
    }
}

/// Definition of one histogram family: its name and fixed bucket edges.
#[derive(Debug, Clone, Copy)]
pub struct HistDef {
    /// Stable metric name (used in exports).
    pub name: &'static str,
    /// Ascending bucket edges. A value `v` lands in bucket `i` such that
    /// `edges[i-1] <= v < edges[i]`; bucket `0` is the underflow bucket
    /// (`v < edges[0]`) and bucket `edges.len()` collects overflow.
    pub edges: &'static [u64],
}

/// The slot table: names (and, for histograms, bucket edges) in slot order.
///
/// Registration is idempotent per name — asking for a slot that already
/// exists returns the existing id, so independent subsystems can safely
/// re-declare shared metrics.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    counters: Vec<&'static str>,
    gauges: Vec<&'static str>,
    hists: Vec<HistDef>,
    series: Vec<&'static str>,
}

impl Schema {
    /// An empty schema (for tests and bespoke registries).
    pub fn empty() -> Self {
        Schema::default()
    }

    /// The full built-in schema for the NewsWire stack, with every constant
    /// in [`ctr`], [`gauge`], [`hist`] and [`series`] at its declared slot.
    pub fn stack() -> Self {
        let mut s = Schema::empty();
        for name in ctr::NAMES {
            s.counter(name);
        }
        for name in gauge::NAMES {
            s.gauge(name);
        }
        s.histogram(hist::NAMES[0], hist::DIGEST_BYTES_EDGES);
        s.histogram(hist::NAMES[1], hist::DIFF_ROWS_EDGES);
        for name in series::NAMES {
            s.series(name);
        }
        s
    }

    /// Registers (or finds) a counter slot by name.
    pub fn counter(&mut self, name: &'static str) -> CtrId {
        if let Some(i) = self.counters.iter().position(|n| *n == name) {
            return CtrId(i as u16);
        }
        self.counters.push(name);
        CtrId((self.counters.len() - 1) as u16)
    }

    /// Registers (or finds) a gauge slot by name.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|n| *n == name) {
            return GaugeId(i as u16);
        }
        self.gauges.push(name);
        GaugeId((self.gauges.len() - 1) as u16)
    }

    /// Registers (or finds) a histogram slot by name. Re-registering an
    /// existing name returns the original slot (the edges argument is
    /// ignored in that case — bucket layout is fixed at first registration).
    pub fn histogram(&mut self, name: &'static str, edges: &'static [u64]) -> HistId {
        if let Some(i) = self.hists.iter().position(|h| h.name == name) {
            return HistId(i as u16);
        }
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "histogram edges must ascend");
        self.hists.push(HistDef { name, edges });
        HistId((self.hists.len() - 1) as u16)
    }

    /// Registers (or finds) a series slot by name.
    pub fn series(&mut self, name: &'static str) -> SeriesId {
        if let Some(i) = self.series.iter().position(|n| *n == name) {
            return SeriesId(i as u16);
        }
        self.series.push(name);
        SeriesId((self.series.len() - 1) as u16)
    }

    /// Name of a counter slot.
    pub fn counter_name(&self, id: CtrId) -> &'static str {
        self.counters[id.0 as usize]
    }
    /// Name of a gauge slot.
    pub fn gauge_name(&self, id: GaugeId) -> &'static str {
        self.gauges[id.0 as usize]
    }
    /// Definition of a histogram slot.
    pub fn hist_def(&self, id: HistId) -> HistDef {
        self.hists[id.0 as usize]
    }
    /// Name of a series slot.
    pub fn series_name(&self, id: SeriesId) -> &'static str {
        self.series[id.0 as usize]
    }
    /// Number of registered counter slots.
    pub fn counter_slots(&self) -> usize {
        self.counters.len()
    }
    /// Number of registered gauge slots.
    pub fn gauge_slots(&self) -> usize {
        self.gauges.len()
    }
    /// Number of registered histogram slots.
    pub fn hist_slots(&self) -> usize {
        self.hists.len()
    }
    /// Number of registered series slots.
    pub fn series_slots(&self) -> usize {
        self.series.len()
    }
}

/// One node's metric storage: dense arrays indexed by slot id.
///
/// Sets start empty and grow on first touch of a slot, so an idle node costs
/// four empty `Vec`s. All operations are O(1) (amortized on first touch).
#[derive(Debug, Clone, Default)]
pub struct MetricSet {
    counters: Vec<u64>,
    gauges: Vec<u64>,
    /// Bucket arrays, one per histogram slot; sized `edges.len() + 1` on
    /// first record.
    hists: Vec<Vec<u64>>,
    series: Vec<Vec<u64>>,
}

impl MetricSet {
    /// A fresh, all-zero set.
    pub fn new() -> Self {
        MetricSet::default()
    }

    #[inline]
    fn slot(v: &mut Vec<u64>, i: usize) -> &mut u64 {
        if i >= v.len() {
            v.resize(i + 1, 0);
        }
        &mut v[i]
    }

    /// Adds `v` to a counter slot.
    #[inline]
    pub fn ctr_add(&mut self, id: CtrId, v: u64) {
        *Self::slot(&mut self.counters, id.0 as usize) += v;
    }

    /// Reads a counter slot (0 if never touched).
    #[inline]
    pub fn ctr(&self, id: CtrId) -> u64 {
        self.counters.get(id.0 as usize).copied().unwrap_or(0)
    }

    /// Sets a gauge slot.
    #[inline]
    pub fn gauge_set(&mut self, id: GaugeId, v: u64) {
        *Self::slot(&mut self.gauges, id.0 as usize) = v;
    }

    /// Raises a gauge slot to `v` if larger (high-water mark).
    #[inline]
    pub fn gauge_max(&mut self, id: GaugeId, v: u64) {
        let g = Self::slot(&mut self.gauges, id.0 as usize);
        *g = (*g).max(v);
    }

    /// Reads a gauge slot (0 if never set).
    #[inline]
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges.get(id.0 as usize).copied().unwrap_or(0)
    }

    /// Records `v` into a histogram slot, given its definition.
    ///
    /// Returns the bucket index the value landed in. Bucket `i` holds values
    /// in `[edges[i-1], edges[i])`; bucket `0` is underflow, the last bucket
    /// overflow.
    pub fn hist_record(&mut self, id: HistId, def: HistDef, v: u64) -> usize {
        let i = id.0 as usize;
        if i >= self.hists.len() {
            self.hists.resize_with(i + 1, Vec::new);
        }
        let buckets = &mut self.hists[i];
        if buckets.is_empty() {
            buckets.resize(def.edges.len() + 1, 0);
        }
        let b = def.edges.partition_point(|&e| e <= v);
        buckets[b] += 1;
        b
    }

    /// The bucket array of a histogram slot (empty if never recorded).
    pub fn hist_buckets(&self, id: HistId) -> &[u64] {
        self.hists.get(id.0 as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Appends a raw sample to a series slot.
    #[inline]
    pub fn series_push(&mut self, id: SeriesId, v: u64) {
        let i = id.0 as usize;
        if i >= self.series.len() {
            self.series.resize_with(i + 1, Vec::new);
        }
        self.series[i].push(v);
    }

    /// The raw samples of a series slot, in record order.
    pub fn series(&self, id: SeriesId) -> &[u64] {
        self.series.get(id.0 as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True when every slot is untouched or zero.
    pub fn is_zero(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(|&g| g == 0)
            && self.hists.iter().all(|h| h.iter().all(|&b| b == 0))
            && self.series.iter().all(Vec::is_empty)
    }

    /// Resets every slot to zero, keeping allocations where cheap.
    pub fn reset(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
        self.gauges.iter_mut().for_each(|g| *g = 0);
        self.hists.iter_mut().for_each(|h| h.iter_mut().for_each(|b| *b = 0));
        self.series.iter_mut().for_each(Vec::clear);
    }

    /// Folds another set into this one (counters add, gauges take max,
    /// buckets add, series concatenate).
    pub fn merge(&mut self, other: &MetricSet) {
        for (i, &c) in other.counters.iter().enumerate() {
            if c != 0 {
                *Self::slot(&mut self.counters, i) += c;
            }
        }
        for (i, &g) in other.gauges.iter().enumerate() {
            let cur = Self::slot(&mut self.gauges, i);
            *cur = (*cur).max(g);
        }
        for (i, h) in other.hists.iter().enumerate() {
            if h.is_empty() {
                continue;
            }
            if i >= self.hists.len() {
                self.hists.resize_with(i + 1, Vec::new);
            }
            if self.hists[i].is_empty() {
                self.hists[i].resize(h.len(), 0);
            }
            for (b, &v) in h.iter().enumerate() {
                self.hists[i][b] += v;
            }
        }
        for (i, s) in other.series.iter().enumerate() {
            if s.is_empty() {
                continue;
            }
            if i >= self.series.len() {
                self.series.resize_with(i + 1, Vec::new);
            }
            self.series[i].extend_from_slice(s);
        }
    }

    /// Iterates `(slot, value)` over non-zero counters in slot order.
    pub fn counters_nonzero(&self) -> impl Iterator<Item = (CtrId, u64)> + '_ {
        self.counters
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (CtrId(i as u16), v))
    }

    /// Iterates `(slot, value)` over non-zero gauges in slot order.
    pub fn gauges_nonzero(&self) -> impl Iterator<Item = (GaugeId, u64)> + '_ {
        self.gauges
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (GaugeId(i as u16), v))
    }

    /// Iterates `(slot, buckets)` over non-empty histograms in slot order.
    pub fn hists_nonzero(&self) -> impl Iterator<Item = (HistId, &[u64])> + '_ {
        self.hists
            .iter()
            .enumerate()
            .filter(|(_, h)| h.iter().any(|&b| b != 0))
            .map(|(i, h)| (HistId(i as u16), h.as_slice()))
    }

    /// Iterates `(slot, samples)` over non-empty series in slot order.
    pub fn series_nonzero(&self) -> impl Iterator<Item = (SeriesId, &[u64])> + '_ {
        self.series
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| (SeriesId(i as u16), s.as_slice()))
    }
}

impl fmt::Display for MetricSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.counters.iter().filter(|&&c| c != 0).count();
        write!(f, "MetricSet({n} non-zero counters)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_schema_matches_declared_slots() {
        let s = Schema::stack();
        assert_eq!(s.counter_name(ctr::MSGS_SENT), "msgs_sent");
        assert_eq!(s.counter_name(ctr::ORACLE_UNCONVERGED_LOGS), "oracle_unconverged_logs");
        assert_eq!(s.counter_name(ctr::NW_BACKFILL_ITEMS), "nw_backfill_items");
        assert_eq!(s.counter_name(ctr::CORRUPT_ROWS_REJECTED), "corrupt_rows_rejected");
        assert_eq!(s.counter_name(ctr::LIAR_MESSAGES_INTERCEPTED), "liar_messages_intercepted");
        assert_eq!(s.counter_name(ctr::NW_FORGED_REJECTS), "forged_rejects");
        assert_eq!(s.counter_name(ctr::NW_QUARANTINES), "quarantines");
        assert_eq!(s.counter_name(ctr::NW_SIGNED_EPOCH_REFUSALS), "signed_epoch_refusals");
        assert_eq!(s.counter_name(ctr::COLLUSION_STRIKES), "collusion_strikes");
        assert_eq!(s.counter_name(ctr::COLLUSION_INTERCEPTS), "collusion_intercepts");
        assert_eq!(s.counter_name(ctr::FORGED_ITEMS_INJECTED), "forged_items_injected");
        assert_eq!(s.counter_name(ctr::KEY_COMPROMISE_STRIKES), "key_compromise_strikes");
        assert_eq!(s.counter_name(ctr::SYBIL_JOINS_ATTEMPTED), "sybil_joins_attempted");
        assert_eq!(s.counter_name(ctr::SYBIL_JOINS_REFUSED), "sybil_joins_refused");
        assert_eq!(s.counter_name(ctr::CERT_REVOCATIONS_SEEN), "cert_revocations_seen");
        assert_eq!(s.counter_name(ctr::NW_REVOKED_KEY_REJECTS), "revoked_key_rejects");
        assert_eq!(s.counter_name(ctr::NW_RETRO_PURGED_ITEMS), "retro_purged_items");
        assert_eq!(s.counter_name(ctr::NW_PROBATION_HOLDS), "probation_holds");
        assert_eq!(s.gauge_name(gauge::ASTRO_ROWS_HELD), "astro_rows_held");
        assert_eq!(s.hist_def(hist::GOSSIP_DIGEST_BYTES).name, "gossip_digest_bytes");
        assert_eq!(s.series_name(series::DELIVERY_LATENCY_US), "delivery_latency_us");
        assert_eq!(s.series_name(series::RECOVERY_DURATION_US), "recovery_duration_us");
        assert_eq!(s.counter_slots(), ctr::NAMES.len());
    }

    #[test]
    fn slot_registration_reuses_existing_names() {
        let mut s = Schema::empty();
        let a = s.counter("alpha");
        let b = s.counter("beta");
        let a2 = s.counter("alpha");
        assert_eq!(a, a2, "re-registering a name must return the same slot");
        assert_ne!(a, b);
        assert_eq!(s.counter_slots(), 2);
        let h = s.histogram("lat", &[1, 10]);
        let h2 = s.histogram("lat", &[5, 50]);
        assert_eq!(h, h2);
        assert_eq!(s.hist_def(h).edges, &[1, 10], "edges fixed at first registration");
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut s = Schema::empty();
        let h = s.histogram("h", &[10, 100]);
        let def = s.hist_def(h);
        let mut m = MetricSet::new();
        // Underflow: strictly below the first edge.
        assert_eq!(m.hist_record(h, def, 0), 0);
        assert_eq!(m.hist_record(h, def, 9), 0);
        // An edge value belongs to the bucket it opens: [10, 100).
        assert_eq!(m.hist_record(h, def, 10), 1);
        assert_eq!(m.hist_record(h, def, 99), 1);
        // [100, ∞) is overflow.
        assert_eq!(m.hist_record(h, def, 100), 2);
        assert_eq!(m.hist_record(h, def, u64::MAX), 2);
        assert_eq!(m.hist_buckets(h), &[2, 2, 2]);
    }

    #[test]
    fn counters_gauges_series_roundtrip() {
        let mut m = MetricSet::new();
        m.ctr_add(ctr::MSGS_SENT, 2);
        m.ctr_add(ctr::MSGS_SENT, 3);
        assert_eq!(m.ctr(ctr::MSGS_SENT), 5);
        assert_eq!(m.ctr(ctr::MSGS_RECV), 0, "untouched slot reads zero");
        m.gauge_set(gauge::ASTRO_ROWS_HELD, 7);
        m.gauge_max(gauge::ASTRO_ROWS_HELD, 3);
        assert_eq!(m.gauge(gauge::ASTRO_ROWS_HELD), 7);
        m.gauge_max(gauge::ASTRO_ROWS_HELD, 11);
        assert_eq!(m.gauge(gauge::ASTRO_ROWS_HELD), 11);
        m.series_push(series::DELIVERY_LATENCY_US, 42);
        m.series_push(series::DELIVERY_LATENCY_US, 17);
        assert_eq!(m.series(series::DELIVERY_LATENCY_US), &[42, 17]);
        assert!(!m.is_zero());
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = Schema::stack();
        let mut m = MetricSet::new();
        m.ctr_add(ctr::NW_DELIVERED, 9);
        m.gauge_set(gauge::NW_PEAK_QUEUE, 4);
        m.hist_record(hist::GOSSIP_DIGEST_BYTES, s.hist_def(hist::GOSSIP_DIGEST_BYTES), 300);
        m.series_push(series::DELIVERY_LATENCY_US, 1);
        assert!(!m.is_zero());
        m.reset();
        assert!(m.is_zero());
        assert_eq!(m.ctr(ctr::NW_DELIVERED), 0);
        assert!(m.series(series::DELIVERY_LATENCY_US).is_empty());
    }

    #[test]
    fn merge_folds_sets() {
        let mut a = MetricSet::new();
        let mut b = MetricSet::new();
        a.ctr_add(ctr::MSGS_SENT, 1);
        b.ctr_add(ctr::MSGS_SENT, 2);
        b.gauge_set(gauge::NW_PEAK_QUEUE, 5);
        a.gauge_set(gauge::NW_PEAK_QUEUE, 9);
        b.series_push(series::DELIVERY_LATENCY_US, 3);
        a.merge(&b);
        assert_eq!(a.ctr(ctr::MSGS_SENT), 3);
        assert_eq!(a.gauge(gauge::NW_PEAK_QUEUE), 9);
        assert_eq!(a.series(series::DELIVERY_LATENCY_US), &[3]);
    }
}
