//! The per-simulation telemetry hub: one ring, one registry, one clock.

use crate::export::{NodeMetrics, Telemetry};
use crate::metrics::{CtrId, GaugeId, HistId, MetricSet, Schema, SeriesId};
use crate::trace::{Layer, TraceEvent, TraceRing};

/// Everything one `Simulation` observes about itself.
///
/// The simulator owns a hub behind `Rc<RefCell<…>>`; during each node
/// callback it installs the handle into the thread-local
/// [collector](crate::collector) so protocol layers can emit through the
/// [`trace_event!`](crate::trace_event) / [`metric_add!`](crate::metric_add)
/// macros without plumbing a reference through every call.
///
/// All mutation is driven by the (single-threaded, deterministic) event
/// loop, so hub contents are a pure function of the simulation seed.
#[derive(Debug)]
pub struct TelemetryHub {
    schema: Schema,
    nodes: Vec<MetricSet>,
    global: MetricSet,
    ring: TraceRing,
    now_us: u64,
    seed: u64,
    /// Ordering key of the event currently being processed (sharded-engine
    /// scratch hubs stamp it onto every trace record; see
    /// [`TraceRing::enable_keys`]).
    event_key: (u64, u64),
}

impl TelemetryHub {
    /// A fresh hub over the built-in stack [`Schema`].
    pub fn new(seed: u64) -> Self {
        TelemetryHub {
            schema: Schema::stack(),
            nodes: Vec::new(),
            global: MetricSet::new(),
            ring: TraceRing::default(),
            now_us: 0,
            seed,
            event_key: (0, 0),
        }
    }

    /// The slot table in force.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable slot table (for registering experiment-specific slots).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// The seed of the owning simulation (stamped into exports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Updates the simulated clock used to stamp trace records.
    #[inline]
    pub fn set_now_us(&mut self, t_us: u64) {
        self.now_us = t_us;
    }

    /// The simulated clock as last set.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Grows the per-node table to cover node ids `0..n`.
    pub fn ensure_nodes(&mut self, n: usize) {
        if self.nodes.len() < n {
            self.nodes.resize_with(n, MetricSet::new);
        }
    }

    /// Number of per-node metric sets.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// One node's metrics (None when out of range).
    pub fn node(&self, idx: usize) -> Option<&MetricSet> {
        self.nodes.get(idx)
    }

    /// One node's metrics, mutable (None when out of range — notably for
    /// the external pseudo-sender).
    #[inline]
    pub fn node_mut(&mut self, idx: usize) -> Option<&mut MetricSet> {
        self.nodes.get_mut(idx)
    }

    /// The simulation-global metric set (fault tallies, oracle verdicts).
    pub fn global(&self) -> &MetricSet {
        &self.global
    }

    /// The simulation-global metric set, mutable.
    #[inline]
    pub fn global_mut(&mut self) -> &mut MetricSet {
        &mut self.global
    }

    /// Records a trace event stamped with the current simulated time.
    #[inline]
    pub fn trace(&mut self, node: u32, layer: Layer, kind: u8, a: u64, b: u64) {
        self.ring
            .push_keyed(TraceEvent { t_us: self.now_us, a, b, node, layer, kind }, self.event_key);
    }

    /// Records a trace event with an explicit timestamp (engine paths that
    /// know the event time before updating the hub clock).
    #[inline]
    pub fn trace_at(&mut self, t_us: u64, node: u32, layer: Layer, kind: u8, a: u64, b: u64) {
        self.ring.push_keyed(TraceEvent { t_us, a, b, node, layer, kind }, self.event_key);
    }

    /// Sets the ordering key stamped onto subsequent trace records (only
    /// observable on hubs whose ring has key tracking enabled).
    #[inline]
    pub fn set_event_key(&mut self, a: u64, b: u64) {
        self.event_key = (a, b);
    }

    /// Enables per-record ordering keys on the ring and lifts the capacity
    /// bound — the configuration the sharded engine uses for its per-shard
    /// scratch hubs, which are drained and merged every synchronization
    /// window (the *merged* ring enforces the real capacity).
    pub fn configure_as_scratch(&mut self) {
        self.ring.set_capacity(usize::MAX);
        self.ring.enable_keys();
    }

    /// Pushes an already-built record (cross-shard merges replaying records
    /// into the master ring in globally sorted order).
    #[inline]
    pub fn push_record(&mut self, ev: TraceEvent) {
        self.ring.push(ev);
    }

    /// Drains the ring of a keyed scratch hub: `(record, ordering key)`
    /// pairs in emission order. Metric sets are untouched.
    pub fn drain_trace_keyed(&mut self) -> Vec<(TraceEvent, (u64, u64))> {
        self.ring.drain_keyed()
    }

    /// Folds every metric set of `other` (a same-schema scratch hub) into
    /// this hub — counters/histograms/series add or concatenate, gauges take
    /// the maximum — and resets `other`'s sets so the next merge observes
    /// only new activity. Trace rings are *not* merged here (they move
    /// through [`TelemetryHub::drain_trace_keyed`] +
    /// [`TelemetryHub::push_record`] so records can be globally ordered).
    pub fn merge_sets_from(&mut self, other: &mut TelemetryHub) {
        self.ensure_nodes(other.nodes.len());
        for (dst, src) in self.nodes.iter_mut().zip(other.nodes.iter_mut()) {
            if !src.is_zero() {
                dst.merge(src);
                src.reset();
            }
        }
        if !other.global.is_zero() {
            self.global.merge(&other.global);
            other.global.reset();
        }
    }

    /// The trace ring (inspection and capacity control).
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Replaces the ring capacity, shedding oldest records if shrinking.
    pub fn set_ring_capacity(&mut self, capacity: usize) {
        self.ring.set_capacity(capacity);
    }

    /// Sums a counter slot across every node.
    pub fn counter_total(&self, id: CtrId) -> u64 {
        self.nodes.iter().map(|m| m.ctr(id)).sum()
    }

    /// Reads one node's counter slot (0 when out of range).
    pub fn node_counter(&self, idx: usize, id: CtrId) -> u64 {
        self.nodes.get(idx).map(|m| m.ctr(id)).unwrap_or(0)
    }

    /// Reads one node's gauge slot (0 when out of range).
    pub fn node_gauge(&self, idx: usize, id: GaugeId) -> u64 {
        self.nodes.get(idx).map(|m| m.gauge(id)).unwrap_or(0)
    }

    /// Sums a gauge slot across every node (useful for "rows held" style
    /// totals where each node's gauge is a level, not a high-water mark).
    pub fn gauge_total(&self, id: GaugeId) -> u64 {
        self.nodes.iter().map(|m| m.gauge(id)).sum()
    }

    /// Concatenates a series slot across every node, in node-id order.
    pub fn merged_series(&self, id: SeriesId) -> Vec<u64> {
        let mut out = Vec::new();
        for m in &self.nodes {
            out.extend_from_slice(m.series(id));
        }
        out
    }

    /// Sums a histogram's buckets across every node.
    pub fn merged_hist(&self, id: HistId) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for m in &self.nodes {
            let h = m.hist_buckets(id);
            if h.is_empty() {
                continue;
            }
            if out.is_empty() {
                out.resize(h.len(), 0);
            }
            for (o, &v) in out.iter_mut().zip(h) {
                *o += v;
            }
        }
        out
    }

    fn snapshot_inner(&self, events: Vec<TraceEvent>, events_dropped: u64) -> Telemetry {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_zero())
            .map(|(i, m)| NodeMetrics::from_set(i as u32, m, &self.schema))
            .collect();
        Telemetry {
            seed: self.seed,
            now_us: self.now_us,
            events_dropped,
            events,
            nodes,
            global: NodeMetrics::from_set(TraceEvent::GLOBAL, &self.global, &self.schema),
        }
    }

    /// A non-destructive telemetry snapshot (ring contents copied).
    pub fn snapshot(&self) -> Telemetry {
        self.snapshot_inner(self.ring.ordered(), self.ring.dropped())
    }

    /// Drains the hub: returns the full telemetry and resets every metric
    /// slot, the ring, and the drop counter, so a subsequent drain observes
    /// only what happened after this one.
    pub fn drain(&mut self) -> Telemetry {
        let dropped = self.ring.dropped();
        let events = self.ring.drain();
        let snap = self.snapshot_inner(events, dropped);
        for m in &mut self.nodes {
            m.reset();
        }
        self.global.reset();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{ctr, series};

    #[test]
    fn drain_resets_cleanly() {
        let mut hub = TelemetryHub::new(7);
        hub.ensure_nodes(2);
        hub.set_now_us(1_000);
        hub.node_mut(0).unwrap().ctr_add(ctr::MSGS_SENT, 4);
        hub.node_mut(1).unwrap().series_push(series::DELIVERY_LATENCY_US, 9);
        hub.global_mut().ctr_add(ctr::CRASHES, 1);
        hub.trace(0, Layer::Sim, crate::kind::MSG_DELIVER, 1, 2);

        let t = hub.drain();
        assert_eq!(t.seed, 7);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.nodes.len(), 2);
        assert_eq!(hub.counter_total(ctr::MSGS_SENT), 0, "drain must reset counters");
        assert!(hub.merged_series(series::DELIVERY_LATENCY_US).is_empty());
        assert_eq!(hub.global().ctr(ctr::CRASHES), 0);
        assert!(hub.ring().is_empty());

        let t2 = hub.drain();
        assert!(t2.events.is_empty(), "second drain sees only post-drain activity");
        assert!(t2.nodes.is_empty());
    }

    #[test]
    fn totals_and_merges() {
        let mut hub = TelemetryHub::new(0);
        hub.ensure_nodes(3);
        for i in 0..3 {
            hub.node_mut(i).unwrap().ctr_add(ctr::MSGS_SENT, (i as u64) + 1);
            hub.node_mut(i).unwrap().series_push(series::DELIVERY_LATENCY_US, i as u64);
        }
        assert_eq!(hub.counter_total(ctr::MSGS_SENT), 6);
        assert_eq!(hub.node_counter(1, ctr::MSGS_SENT), 2);
        assert_eq!(hub.merged_series(series::DELIVERY_LATENCY_US), vec![0, 1, 2]);
    }
}
