//! Compact sim-time trace records and the bounded ring that stores them.

/// Which layer of the stack emitted a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Layer {
    /// The discrete-event engine itself (delivery, loss, faults).
    Sim = 0,
    /// The Astrolabe gossip/aggregation agent.
    Astro = 1,
    /// The zone-tree multicast layer.
    Amcast = 2,
    /// The NewsWire application layer.
    News = 3,
}

impl Layer {
    /// Stable lowercase name (used in exports).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Sim => "sim",
            Layer::Astro => "astro",
            Layer::Amcast => "amcast",
            Layer::News => "news",
        }
    }

    /// Inverse of the `repr(u8)` discriminant (for decoding).
    pub fn from_u8(v: u8) -> Option<Layer> {
        match v {
            0 => Some(Layer::Sim),
            1 => Some(Layer::Astro),
            2 => Some(Layer::Amcast),
            3 => Some(Layer::News),
            _ => None,
        }
    }
}

/// Trace record kinds. Grouped by layer in blocks of 16 so new kinds can be
/// added without renumbering; the numbers are part of the binary encoding
/// and must stay stable.
pub mod kind {
    /// A message reached its destination node (`a` = sender, `b` = bytes).
    pub const MSG_DELIVER: u8 = 1;
    /// A message was dropped in flight (`a` = destination, `b` = cause code).
    pub const MSG_DROP: u8 = 2;
    /// The node crashed.
    pub const NODE_CRASH: u8 = 3;
    /// The node recovered.
    pub const NODE_RECOVER: u8 = 4;
    /// A network partition was installed (`a` = partition groups).
    pub const PARTITION_START: u8 = 5;
    /// The network partition healed.
    pub const PARTITION_HEAL: u8 = 6;
    /// The node restarted cold (`a` = restart mode discriminant: 1 =
    /// durable, 2 = amnesia; `b` = total unsynced disk writes this node has
    /// lost to crashes so far). Emitted *in addition to* [`NODE_RECOVER`],
    /// which fires for every recovery regardless of mode.
    pub const NODE_RESTART: u8 = 7;
    /// A state-corruption strike hit the node (`a` = corruption op
    /// discriminant, `b` = units corrupted — rows, entries, or bit flips).
    pub const STATE_CORRUPT: u8 = 8;
    /// An outbound message was intercepted by a liar behavior
    /// (`a` = destination, `b` = 1 if tampered, 2 if dropped).
    pub const LIAR_INTERCEPT: u8 = 9;
    /// A collusion-script strike executed on a colluding member
    /// (`a` = corruption op discriminant, `b` = units affected).
    pub const COLLUSION_STRIKE: u8 = 10;
    /// A stolen-key strike executed on a compromised member
    /// (`a` = publisher whose key is held, `b` = items signed).
    pub const KEY_COMPROMISE_STRIKE: u8 = 11;
    /// A Sybil-flood strike executed on an adversary member
    /// (`a` = fabricated identities injected, `b` = claimed epoch).
    pub const SYBIL_STRIKE: u8 = 12;

    /// One gossip round executed (`a` = rows held, `b` = digests sent).
    pub const GOSSIP_ROUND: u8 = 16;
    /// A digest was sent (`a` = peer, `b` = wire bytes).
    pub const GOSSIP_DIGEST: u8 = 17;
    /// A diff (rows) was sent in reply (`a` = peer, `b` = rows).
    pub const GOSSIP_DIFF: u8 = 18;
    /// Rows were merged into the local tables (`a` = peer, `b` = rows).
    pub const GOSSIP_MERGE: u8 = 19;
    /// φ-accrual declared a peer suspect (`a` = peer or row label hash).
    pub const PHI_SUSPECT: u8 = 20;
    /// A newer incarnation of a peer was observed in gossip (`a` = peer id,
    /// `b` = the incarnation number). Stale-incarnation fencing and φ reset
    /// key off this observation.
    pub const INCARNATION_BUMP: u8 = 21;
    /// Defensive ingest validation rejected a gossip row (`a` = zone level,
    /// `b` = row label).
    pub const CORRUPT_ROW_REJECT: u8 = 22;
    /// The periodic self-audit repaired diverged local state (`a` = repair
    /// site code, `b` = units repaired).
    pub const SELF_AUDIT_REPAIR: u8 = 23;

    /// A multicast message hopped down the tree (`a` = next hop, `b` = key).
    pub const MCAST_HOP: u8 = 32;
    /// A multicast message was delivered locally (`a` = key).
    pub const MCAST_DELIVER_LOCAL: u8 = 33;

    /// An item was published (`a` = item key).
    pub const NW_PUBLISH: u8 = 48;
    /// An item was delivered to the application (`a` = item key,
    /// `b` = publish→deliver latency in µs).
    pub const NW_DELIVER: u8 = 49;
    /// A tree hand-off was armed, awaiting ack (`a` = representative,
    /// `b` = message id).
    pub const HANDOFF_ARM: u8 = 50;
    /// A hand-off ack arrived (`a` = representative, `b` = message id).
    pub const HANDOFF_ACK: u8 = 51;
    /// A hand-off retried the same representative (`a` = representative,
    /// `b` = attempt).
    pub const HANDOFF_RETRY: u8 = 52;
    /// A hand-off failed over to the next representative (`a` = new rep).
    pub const HANDOFF_FAILOVER: u8 = 53;
    /// A hand-off was abandoned (`a` = message id).
    pub const HANDOFF_ABANDON: u8 = 54;
    /// A repair request was sent (`a` = peer, `b` = item key).
    pub const REPAIR_REQUEST: u8 = 55;
    /// A repair reply was served (`a` = peer, `b` = items).
    pub const REPAIR_REPLY: u8 = 56;
    /// An anti-entropy reconcile request was sent (`a` = peer,
    /// `b` = publisher).
    pub const AE_REQUEST: u8 = 57;
    /// An anti-entropy reconcile reply was served (`a` = peer, `b` = items).
    pub const AE_REPLY: u8 = 58;
    /// A subscription digest was (re)published into gossip (`a` = bytes).
    pub const SUB_PROPAGATE: u8 = 59;
    /// A cold restart began its recovery protocol (`a` = restart mode
    /// discriminant, `b` = items restored from stable storage).
    pub const NW_RECOVERY_START: u8 = 60;
    /// The recovery protocol finished — every tracked article log is
    /// hole-free again (`a` = recovery duration in µs, `b` = items
    /// backfilled from peers since the restart).
    pub const NW_RECOVERY_DONE: u8 = 61;
    /// The oracle ruled on self-stabilization (`a` = rounds used,
    /// `b` = 1 if every invariant was restored within the budget).
    pub const SELF_STABILIZED: u8 = 62;
    /// An item failed signature verification at an admission path
    /// (`a` = path discriminant: 1 = envelope, 2 = repair reply,
    /// 3 = reconcile reply, 4 = stable-storage restore; `b` = publisher).
    pub const FORGED_REJECT: u8 = 63;
    /// A peer crossed the misbehavior threshold and was quarantined out of
    /// peer selection (`a` = peer, `b` = accumulated score).
    pub const PEER_QUARANTINE: u8 = 64;
    /// An epoch claim above the publisher's signed authority was refused
    /// (`a` = claimed epoch, `b` = publisher).
    pub const SIGNED_EPOCH_REFUSAL: u8 = 65;
    /// A rotation/revocation record was verified and adopted
    /// (`a` = publisher, `b` = rotation serial).
    pub const CERT_REVOKED: u8 = 66;
    /// An admission was refused because its signing key-epoch is revoked
    /// (`a` = path discriminant: 1 = envelope, 2 = repair reply,
    /// 3 = reconcile reply, 4 = stable-storage restore, 5 = epoch
    /// attestation; `b` = publisher).
    pub const REVOKED_KEY_REJECT: u8 = 67;
    /// Cached items admitted under a key were retroactively purged after
    /// its revocation (`a` = publisher, `b` = items purged).
    pub const RETRO_PURGE: u8 = 68;
    /// An unendorsed identity was first held in the bounded probation set
    /// (`a` = identity, `b` = probation set size after the hold).
    pub const PROBATION_HOLD: u8 = 69;

    /// Stable lowercase name of a kind (used in exports).
    pub fn name(k: u8) -> &'static str {
        match k {
            MSG_DELIVER => "msg_deliver",
            MSG_DROP => "msg_drop",
            NODE_CRASH => "node_crash",
            NODE_RECOVER => "node_recover",
            PARTITION_START => "partition_start",
            PARTITION_HEAL => "partition_heal",
            NODE_RESTART => "node_restart",
            STATE_CORRUPT => "state_corrupt",
            LIAR_INTERCEPT => "liar_intercept",
            COLLUSION_STRIKE => "collusion_strike",
            KEY_COMPROMISE_STRIKE => "key_compromise_strike",
            SYBIL_STRIKE => "sybil_strike",
            GOSSIP_ROUND => "gossip_round",
            GOSSIP_DIGEST => "gossip_digest",
            GOSSIP_DIFF => "gossip_diff",
            GOSSIP_MERGE => "gossip_merge",
            PHI_SUSPECT => "phi_suspect",
            INCARNATION_BUMP => "incarnation_bump",
            CORRUPT_ROW_REJECT => "corrupt_row_reject",
            SELF_AUDIT_REPAIR => "self_audit_repair",
            MCAST_HOP => "mcast_hop",
            MCAST_DELIVER_LOCAL => "mcast_deliver_local",
            NW_PUBLISH => "nw_publish",
            NW_DELIVER => "nw_deliver",
            HANDOFF_ARM => "handoff_arm",
            HANDOFF_ACK => "handoff_ack",
            HANDOFF_RETRY => "handoff_retry",
            HANDOFF_FAILOVER => "handoff_failover",
            HANDOFF_ABANDON => "handoff_abandon",
            REPAIR_REQUEST => "repair_request",
            REPAIR_REPLY => "repair_reply",
            AE_REQUEST => "ae_request",
            AE_REPLY => "ae_reply",
            SUB_PROPAGATE => "sub_propagate",
            NW_RECOVERY_START => "nw_recovery_start",
            NW_RECOVERY_DONE => "nw_recovery_done",
            SELF_STABILIZED => "self_stabilized",
            FORGED_REJECT => "forged_reject",
            PEER_QUARANTINE => "peer_quarantine",
            SIGNED_EPOCH_REFUSAL => "signed_epoch_refusal",
            CERT_REVOKED => "cert_revoked",
            REVOKED_KEY_REJECT => "revoked_key_reject",
            RETRO_PURGE => "retro_purge",
            PROBATION_HOLD => "probation_hold",
            _ => "unknown",
        }
    }
}

/// One trace record: 32 bytes, fixed layout, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated timestamp, µs since simulation start.
    pub t_us: u64,
    /// First operand (meaning depends on [`kind`]).
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Emitting node (`u32::MAX` for engine-global records).
    pub node: u32,
    /// Emitting layer.
    pub layer: Layer,
    /// Record kind (one of the [`kind`] constants).
    pub kind: u8,
}

impl TraceEvent {
    /// Sentinel node id for records not attributable to one node.
    pub const GLOBAL: u32 = u32::MAX;

    /// Encodes the record into its 32-byte little-endian wire form.
    pub fn encode(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        out[0..8].copy_from_slice(&self.t_us.to_le_bytes());
        out[8..16].copy_from_slice(&self.a.to_le_bytes());
        out[16..24].copy_from_slice(&self.b.to_le_bytes());
        out[24..28].copy_from_slice(&self.node.to_le_bytes());
        out[28] = self.layer as u8;
        out[29] = self.kind;
        out
    }

    /// Decodes a record from its 32-byte wire form. Returns `None` for an
    /// unknown layer byte.
    pub fn decode(buf: &[u8; 32]) -> Option<TraceEvent> {
        Some(TraceEvent {
            t_us: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            a: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
            b: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            node: u32::from_le_bytes(buf[24..28].try_into().unwrap()),
            layer: Layer::from_u8(buf[28])?,
            kind: buf[29],
        })
    }
}

/// A bounded ring of trace records with a **drop-oldest** overflow policy.
///
/// Long runs emit far more records than anyone wants to keep; the ring keeps
/// the most recent `capacity` and counts what it discarded, so exports can
/// report exactly how much history was shed.
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    dropped: u64,
    /// When key tracking is on, one `(a, b)` ordering key per record in
    /// `buf`, maintained in lockstep (same indices, same eviction). The
    /// sharded engine keys every record with its generating event's
    /// shard-invariant ordering key so cross-shard merges can reconstruct
    /// the global record order.
    keys: Option<Vec<(u64, u64)>>,
}

/// Default ring capacity (records), chosen so a full chaos-day run keeps its
/// recent history while the ring stays ~2 MiB.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new(DEFAULT_RING_CAPACITY)
    }
}

impl TraceRing {
    /// A ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        TraceRing { buf: Vec::new(), capacity: capacity.max(1), head: 0, dropped: 0, keys: None }
    }

    /// Turns on per-record ordering-key tracking (see the `keys` field).
    /// Must be called while the ring is empty.
    pub fn enable_keys(&mut self) {
        assert!(self.buf.is_empty(), "enable_keys on a non-empty ring");
        self.keys = Some(Vec::new());
    }

    /// Whether per-record ordering keys are tracked.
    pub fn keyed(&self) -> bool {
        self.keys.is_some()
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records discarded by the drop-oldest policy so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Pushes a record, evicting the oldest when full. With key tracking on
    /// the record gets the zero key; keyed emitters use
    /// [`TraceRing::push_keyed`].
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        self.push_keyed(ev, (0, 0));
    }

    /// Pushes a record tagged with its generating event's ordering key
    /// (ignored unless [`TraceRing::enable_keys`] was called).
    #[inline]
    pub fn push_keyed(&mut self, ev: TraceEvent, key: (u64, u64)) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
            if let Some(keys) = &mut self.keys {
                keys.push(key);
            }
        } else {
            self.buf[self.head] = ev;
            if let Some(keys) = &mut self.keys {
                keys[self.head] = key;
            }
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// The retained records, oldest first.
    pub fn ordered(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Empties the ring (drop counter included) and returns the records that
    /// were held, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        let out = self.ordered();
        self.buf.clear();
        if let Some(keys) = &mut self.keys {
            keys.clear();
        }
        self.head = 0;
        self.dropped = 0;
        out
    }

    /// Empties a keyed ring, returning `(record, key)` pairs oldest first.
    ///
    /// # Panics
    ///
    /// Panics if key tracking was never enabled.
    pub fn drain_keyed(&mut self) -> Vec<(TraceEvent, (u64, u64))> {
        let keys = self.keys.as_mut().expect("drain_keyed on an unkeyed ring");
        let mut out = Vec::with_capacity(self.buf.len());
        for (ev, k) in self.buf[self.head..].iter().zip(&keys[self.head..]) {
            out.push((*ev, *k));
        }
        for (ev, k) in self.buf[..self.head].iter().zip(&keys[..self.head]) {
            out.push((*ev, *k));
        }
        self.buf.clear();
        keys.clear();
        self.head = 0;
        self.dropped = 0;
        out
    }

    /// Changes the capacity. Existing records beyond the new capacity are
    /// discarded oldest-first (counted as dropped).
    pub fn set_capacity(&mut self, capacity: usize) {
        let capacity = capacity.max(1);
        let mut ordered = self.ordered();
        let mut keys_ordered = self.keys.as_ref().map(|keys| {
            let mut out = Vec::with_capacity(keys.len());
            out.extend_from_slice(&keys[self.head..]);
            out.extend_from_slice(&keys[..self.head]);
            out
        });
        if ordered.len() > capacity {
            let shed = ordered.len() - capacity;
            ordered.drain(..shed);
            if let Some(k) = &mut keys_ordered {
                k.drain(..shed);
            }
            self.dropped += shed as u64;
        }
        self.buf = ordered;
        self.keys = keys_ordered.or_else(|| self.keys.take());
        self.head = 0;
        self.capacity = capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent { t_us: t, a: t * 2, b: t * 3, node: t as u32, layer: Layer::Sim, kind: 1 }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let e = TraceEvent {
            t_us: 123_456,
            a: u64::MAX,
            b: 7,
            node: 42,
            layer: Layer::News,
            kind: kind::NW_DELIVER,
        };
        assert_eq!(TraceEvent::decode(&e.encode()), Some(e));
        assert_eq!(std::mem::size_of::<TraceEvent>(), 32);
    }

    #[test]
    fn ring_overflow_drops_oldest() {
        let mut r = TraceRing::new(4);
        for t in 0..7 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 3, "three oldest records shed");
        let kept: Vec<u64> = r.ordered().iter().map(|e| e.t_us).collect();
        assert_eq!(kept, vec![3, 4, 5, 6], "survivors are the newest, oldest first");
    }

    #[test]
    fn ring_drain_resets() {
        let mut r = TraceRing::new(2);
        r.push(ev(0));
        r.push(ev(1));
        r.push(ev(2));
        let drained = r.drain();
        assert_eq!(drained.len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0, "drain clears the drop counter");
    }

    #[test]
    fn ring_shrink_keeps_newest() {
        let mut r = TraceRing::new(8);
        for t in 0..6 {
            r.push(ev(t));
        }
        r.set_capacity(3);
        let kept: Vec<u64> = r.ordered().iter().map(|e| e.t_us).collect();
        assert_eq!(kept, vec![3, 4, 5]);
        assert_eq!(r.dropped(), 3);
        r.push(ev(6));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(kind::name(kind::MSG_DELIVER), "msg_deliver");
        assert_eq!(kind::name(kind::AE_REPLY), "ae_reply");
        assert_eq!(kind::name(kind::NODE_RESTART), "node_restart");
        assert_eq!(kind::name(kind::INCARNATION_BUMP), "incarnation_bump");
        assert_eq!(kind::name(kind::NW_RECOVERY_DONE), "nw_recovery_done");
        assert_eq!(kind::name(kind::COLLUSION_STRIKE), "collusion_strike");
        assert_eq!(kind::name(kind::FORGED_REJECT), "forged_reject");
        assert_eq!(kind::name(kind::PEER_QUARANTINE), "peer_quarantine");
        assert_eq!(kind::name(kind::SIGNED_EPOCH_REFUSAL), "signed_epoch_refusal");
        assert_eq!(kind::name(kind::KEY_COMPROMISE_STRIKE), "key_compromise_strike");
        assert_eq!(kind::name(kind::SYBIL_STRIKE), "sybil_strike");
        assert_eq!(kind::name(kind::CERT_REVOKED), "cert_revoked");
        assert_eq!(kind::name(kind::REVOKED_KEY_REJECT), "revoked_key_reject");
        assert_eq!(kind::name(kind::RETRO_PURGE), "retro_purge");
        assert_eq!(kind::name(kind::PROBATION_HOLD), "probation_hold");
        assert_eq!(kind::name(250), "unknown");
        assert_eq!(Layer::from_u8(2), Some(Layer::Amcast));
        assert_eq!(Layer::from_u8(9), None);
    }
}
