//! Observability substrate for the NewsWire reproduction.
//!
//! Every experiment table in the paper is quantitative, and every chaos or
//! partition run that misbehaves needs a story better than `println!`. This
//! crate provides the three pieces the whole stack shares:
//!
//! 1. **Sim-time structured tracing** ([`trace_event!`]): compact 32-byte
//!    binary records pushed into a per-[`TelemetryHub`] ring buffer
//!    ([`TraceRing`], drop-oldest on overflow). Records carry the simulated
//!    timestamp, node, layer, kind and two 64-bit operands; paired kinds
//!    (publish→deliver, hand-off arm→ack) reconstruct spans via
//!    [`Telemetry::pair_spans`].
//! 2. **A per-node metrics registry** ([`MetricSet`] slots declared in
//!    [`Schema`]): typed counters/gauges/histograms/series with fixed-slot
//!    registration, so the hot path is an array index. The simulator's
//!    traffic and fault counters are stored here and the legacy structs are
//!    reconstructed as views.
//! 3. **Deterministic telemetry export** ([`Telemetry`]): a JSON/CSV
//!    snapshot with stable ordering and integer-only values, so same-seed
//!    runs drain byte-identical telemetry (CI enforces this).
//!
//! # Zero cost when disabled
//!
//! Everything routed through the macros and the thread-local collector is
//! gated behind the default-on `obs` cargo feature. With the feature off,
//! [`ENABLED`] is `false` at compile time: macro bodies are dead code, their
//! arguments are never evaluated, and the optimizer removes the call sites
//! entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod export;
pub mod hub;
pub mod metrics;
pub mod trace;

pub use export::{NodeMetrics, SeriesStats, Span, Telemetry};
pub use hub::TelemetryHub;
pub use metrics::{ctr, gauge, hist, series, CtrId, GaugeId, HistId, MetricSet, Schema, SeriesId};
pub use trace::{kind, Layer, TraceEvent, TraceRing};

/// Compile-time switch for all macro-driven instrumentation.
///
/// `true` iff the `obs` cargo feature is enabled. The macros below test this
/// constant first, so with the feature off their bodies (including argument
/// evaluation) are eliminated at compile time.
pub const ENABLED: bool = cfg!(feature = "obs");

/// Emits one structured trace record into the currently installed hub.
///
/// `trace_event!(node, layer, kind)`, with optional `a` and `b` operand
/// expressions (converted `as u64`). A no-op that never evaluates its
/// arguments when the `obs` feature is off, and when no hub is installed
/// (i.e. outside a simulation callback).
///
/// ```
/// use obs::{trace_event, Layer, kind};
/// trace_event!(3, Layer::News, kind::NW_PUBLISH, 17u64);
/// ```
#[macro_export]
macro_rules! trace_event {
    ($node:expr, $layer:expr, $kind:expr) => {
        $crate::trace_event!($node, $layer, $kind, 0u64, 0u64)
    };
    ($node:expr, $layer:expr, $kind:expr, $a:expr) => {
        $crate::trace_event!($node, $layer, $kind, $a, 0u64)
    };
    ($node:expr, $layer:expr, $kind:expr, $a:expr, $b:expr) => {
        if $crate::ENABLED {
            $crate::collector::emit(($node) as u32, $layer, $kind, ($a) as u64, ($b) as u64);
        }
    };
}

/// Adds `v` to a per-node counter slot in the currently installed hub.
///
/// A no-op (arguments unevaluated) when the `obs` feature is off.
#[macro_export]
macro_rules! metric_add {
    ($node:expr, $id:expr, $v:expr) => {
        if $crate::ENABLED {
            $crate::collector::counter_add(($node) as u32, $id, ($v) as u64);
        }
    };
}

/// Sets a per-node gauge slot in the currently installed hub.
#[macro_export]
macro_rules! gauge_set {
    ($node:expr, $id:expr, $v:expr) => {
        if $crate::ENABLED {
            $crate::collector::gauge_set(($node) as u32, $id, ($v) as u64);
        }
    };
}

/// Raises a per-node gauge slot to `v` if `v` is larger (high-water mark).
#[macro_export]
macro_rules! gauge_max {
    ($node:expr, $id:expr, $v:expr) => {
        if $crate::ENABLED {
            $crate::collector::gauge_max(($node) as u32, $id, ($v) as u64);
        }
    };
}

/// Records `v` into a per-node histogram slot in the currently installed hub.
#[macro_export]
macro_rules! hist_record {
    ($node:expr, $id:expr, $v:expr) => {
        if $crate::ENABLED {
            $crate::collector::hist_record(($node) as u32, $id, ($v) as u64);
        }
    };
}

/// Appends a raw sample to a per-node series slot (exact-quantile data).
#[macro_export]
macro_rules! series_record {
    ($node:expr, $id:expr, $v:expr) => {
        if $crate::ENABLED {
            $crate::collector::series_record(($node) as u32, $id, ($v) as u64);
        }
    };
}
