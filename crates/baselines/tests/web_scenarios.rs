//! Scenario tests for the centralized baselines: mixed client populations
//! against one origin server over a realistic day fragment.

use baselines::{AttackClient, ClientStats, FetchMode, WebClient, WebMsg, WebNode, WebServer};
use simnet::{NetworkModel, NodeId, SimDuration, SimTime, Simulation};

fn server() -> WebServer {
    WebServer::new(20, 300, 1_500, SimDuration::from_millis(2), 500)
}

fn publish_stories(sim: &mut Simulation<WebNode>, count: u64, gap_s: u64) {
    for s in 0..count {
        sim.schedule_external(
            SimTime::from_secs(1 + s * gap_s),
            NodeId(0),
            WebMsg::PublishStory { story: s },
        );
    }
}

#[test]
fn fetch_modes_rank_by_bytes() {
    // Same site, same polling cadence, four protocol generations: bytes
    // should strictly improve full page -> conditional -> delta, with RSS
    // in between (summary + article fetches for fresh items).
    let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(15)), 1);
    sim.add_node(WebNode::Server(server()));
    let modes =
        [FetchMode::FullPage, FetchMode::RssSummary, FetchMode::Conditional, FetchMode::Delta];
    for mode in modes {
        sim.add_node(WebNode::Client(WebClient::new(NodeId(0), mode, SimDuration::from_secs(20))));
    }
    publish_stories(&mut sim, 20, 60);
    sim.run_until(SimTime::from_secs(1_500));
    let bytes: Vec<u64> = (1..=4u32)
        .map(|i| {
            let WebNode::Client(c) = sim.node(NodeId(i)) else { panic!() };
            c.stats.bytes
        })
        .collect();
    let (full, rss, cond, delta) = (bytes[0], bytes[1], bytes[2], bytes[3]);
    assert!(delta < cond, "delta {delta} < conditional {cond}");
    assert!(cond < full, "conditional {cond} < full {full}");
    assert!(rss < full, "rss {rss} < full {full}");
    // And every mode saw the same fresh stories.
    for i in 1..=4u32 {
        let WebNode::Client(c) = sim.node(NodeId(i)) else { panic!() };
        assert!(c.stats.fresh >= 18, "client {i} fresh {}", c.stats.fresh);
    }
}

#[test]
fn push_subscribers_get_stories_exactly_once() {
    let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(15)), 2);
    let mut srv = server();
    srv.push_subscribers = (1..=30).collect();
    sim.add_node(WebNode::Server(srv));
    for _ in 0..30 {
        sim.add_node(WebNode::PushSubscriber(ClientStats::default()));
    }
    publish_stories(&mut sim, 10, 10);
    sim.run_until(SimTime::from_secs(200));
    for i in 1..=30u32 {
        let WebNode::PushSubscriber(st) = sim.node(NodeId(i)) else { panic!() };
        assert_eq!(st.push_deliveries.len(), 10, "subscriber {i}");
        let mut stories: Vec<u64> = st.push_deliveries.iter().map(|&(s, _)| s).collect();
        stories.sort_unstable();
        stories.dedup();
        assert_eq!(stories.len(), 10, "no duplicates for {i}");
    }
}

#[test]
fn attack_starves_the_origin_in_every_mode() {
    // The centralized failure mode the paper leads with: the origin is one
    // queue. A request flood starves the pollers AND crowds out the
    // server's own push deliveries — centralization fails both the pull
    // and the push variants, which is exactly why NewsWire moves
    // dissemination off the origin entirely (cf. experiment E4).
    let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(10)), 3);
    let mut srv = WebServer::new(20, 300, 1_500, SimDuration::from_millis(5), 60);
    srv.push_subscribers = (1..=10).collect();
    sim.add_node(WebNode::Server(srv));
    for _ in 0..10 {
        sim.add_node(WebNode::PushSubscriber(ClientStats::default()));
    }
    for _ in 0..10 {
        sim.add_node(WebNode::Client(WebClient::new(
            NodeId(0),
            FetchMode::FullPage,
            SimDuration::from_secs(5),
        )));
    }
    for _ in 0..50 {
        sim.add_node(WebNode::Attacker(AttackClient::new(NodeId(0), SimDuration::from_millis(50))));
    }
    publish_stories(&mut sim, 10, 10);
    sim.run_until(SimTime::from_secs(120));
    let mut poller_timeouts = 0u64;
    let mut poller_fetches = 0u64;
    let mut push_got = 0usize;
    for i in 1..=20u32 {
        match sim.node(NodeId(i)) {
            WebNode::PushSubscriber(st) => push_got += usize::from(!st.push_deliveries.is_empty()),
            WebNode::Client(c) => {
                poller_timeouts += c.stats.timeouts;
                poller_fetches += c.stats.fetches;
            }
            _ => {}
        }
    }
    assert!(
        poller_timeouts as f64 > 0.4 * poller_fetches as f64,
        "pollers should starve: {poller_timeouts}/{poller_fetches}"
    );
    // Push work shares the saturated queue: deliveries are crowded out too.
    let mut push_items = 0usize;
    for i in 1..=10u32 {
        if let WebNode::PushSubscriber(st) = sim.node(NodeId(i)) {
            push_items += st.push_deliveries.len();
        }
    }
    assert!(
        push_items < 10 * 10 / 2,
        "push deliveries should be mostly crowded out: {push_items}/100"
    );
    let _ = push_got;
}
