//! The rolling front page of a community news site (paper §1's Slashdot
//! example), plus the analytic polling model behind experiment E3.
//!
//! "A consumer who returns 4 times during a day receives about 70%
//! redundant data. Consumers who return more frequently … receive a much
//! higher rate of redundant data." That number is a property of front-page
//! geometry — the page shows the latest `capacity` headlines, so a poll
//! separated by Δt from the previous one sees `rate·Δt` fresh headlines and
//! `capacity − rate·Δt` repeats — which [`simulate_polling`] reproduces
//! exactly from a story-arrival trace.

use std::collections::VecDeque;

/// The rolling front page: latest `capacity` stories, newest first.
#[derive(Debug, Clone)]
pub struct FrontPage {
    capacity: usize,
    stories: VecDeque<u64>,
    version: u64,
    headline_bytes: u32,
}

impl FrontPage {
    /// A page showing `capacity` headlines of roughly `headline_bytes`
    /// each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, headline_bytes: u32) -> Self {
        assert!(capacity > 0, "front page needs capacity");
        FrontPage { capacity, stories: VecDeque::new(), version: 0, headline_bytes }
    }

    /// Publishes a story onto the page (evicting the oldest beyond
    /// capacity) and bumps the page version.
    pub fn push_story(&mut self, story: u64) {
        self.stories.push_front(story);
        if self.stories.len() > self.capacity {
            self.stories.pop_back();
        }
        self.version += 1;
    }

    /// Current page version (changes whenever content changes).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The headlines currently shown, newest first.
    pub fn headlines(&self) -> impl Iterator<Item = u64> + '_ {
        self.stories.iter().copied()
    }

    /// Number of headlines shown.
    pub fn len(&self) -> usize {
        self.stories.len()
    }

    /// True before any story has been published.
    pub fn is_empty(&self) -> bool {
        self.stories.is_empty()
    }

    /// Page size in bytes for a full fetch (headlines + fixed chrome).
    pub fn page_bytes(&self) -> u32 {
        2_000 + self.stories.len() as u32 * self.headline_bytes
    }

    /// Bytes of a delta fetch shipping only `new_headlines` headlines.
    pub fn delta_bytes(&self, new_headlines: usize) -> u32 {
        200 + new_headlines as u32 * self.headline_bytes
    }
}

/// Outcome of the analytic polling model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedundancyReport {
    /// Fetches performed.
    pub fetches: u64,
    /// Headlines served across all fetches.
    pub headlines_served: u64,
    /// Headlines the client had already seen.
    pub headlines_redundant: u64,
    /// Bytes served (full-page model).
    pub bytes_served: u64,
    /// Bytes attributable to redundant headlines.
    pub bytes_redundant: u64,
}

impl RedundancyReport {
    /// Fraction of served headlines that were redundant.
    pub fn redundant_fraction(&self) -> f64 {
        if self.headlines_served == 0 {
            0.0
        } else {
            self.headlines_redundant as f64 / self.headlines_served as f64
        }
    }
}

/// Replays a poll schedule against a story-arrival trace.
///
/// `story_times_us` are the publication instants (sorted ascending);
/// the client polls every `poll_interval_us` over `[0, horizon_us)`.
pub fn simulate_polling(
    story_times_us: &[u64],
    poll_interval_us: u64,
    horizon_us: u64,
    capacity: usize,
    headline_bytes: u32,
) -> RedundancyReport {
    assert!(poll_interval_us > 0, "poll interval must be positive");
    let mut page = FrontPage::new(capacity, headline_bytes);
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut next_story = 0usize;
    let mut report = RedundancyReport {
        fetches: 0,
        headlines_served: 0,
        headlines_redundant: 0,
        bytes_served: 0,
        bytes_redundant: 0,
    };
    let mut t = poll_interval_us;
    while t < horizon_us {
        while next_story < story_times_us.len() && story_times_us[next_story] <= t {
            page.push_story(next_story as u64);
            next_story += 1;
        }
        report.fetches += 1;
        report.bytes_served += u64::from(page.page_bytes());
        for h in page.headlines() {
            report.headlines_served += 1;
            if !seen.insert(h) {
                report.headlines_redundant += 1;
                report.bytes_redundant += u64::from(headline_bytes);
            }
        }
        t += poll_interval_us;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 86_400_000_000;

    fn uniform_trace(per_day: u64, days: u64) -> Vec<u64> {
        let n = per_day * days;
        let gap = days * DAY / n;
        (0..n).map(|i| i * gap + gap / 2).collect()
    }

    #[test]
    fn page_rolls_and_versions() {
        let mut p = FrontPage::new(3, 100);
        for s in 0..5 {
            p.push_story(s);
        }
        assert_eq!(p.headlines().collect::<Vec<_>>(), vec![4, 3, 2]);
        assert_eq!(p.version(), 5);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn paper_redundancy_claim_four_polls_per_day() {
        // §1: ~70% redundant at 4 polls/day. Slashdot-like geometry:
        // ~18 stories/day on a 20-headline page.
        let trace = uniform_trace(18, 10);
        let r = simulate_polling(&trace, DAY / 4, 10 * DAY, 20, 300);
        let f = r.redundant_fraction();
        assert!((0.6..0.85).contains(&f), "redundancy {f}");
    }

    #[test]
    fn more_frequent_polls_more_redundancy() {
        let trace = uniform_trace(18, 5);
        let rates = [1u64, 4, 12, 48];
        let fractions: Vec<f64> = rates
            .iter()
            .map(|&per_day| {
                simulate_polling(&trace, DAY / per_day, 5 * DAY, 20, 300).redundant_fraction()
            })
            .collect();
        assert!(
            fractions.windows(2).all(|w| w[0] <= w[1] + 1e-9),
            "redundancy must be monotone in poll rate: {fractions:?}"
        );
        assert!(fractions[3] > 0.9, "hourly pollers drown in repeats: {fractions:?}");
    }

    #[test]
    fn slow_pollers_see_little_redundancy() {
        // Polling once per day on an 18-story/day site: page fully turns
        // over between visits (capacity 15 < 18 new stories).
        let trace = uniform_trace(18, 10);
        let r = simulate_polling(&trace, DAY, 10 * DAY, 15, 300);
        assert!(r.redundant_fraction() < 0.05, "{}", r.redundant_fraction());
    }

    #[test]
    fn byte_accounting_consistent() {
        let trace = uniform_trace(10, 2);
        let r = simulate_polling(&trace, DAY / 2, 2 * DAY, 10, 250);
        assert!(r.bytes_redundant <= r.bytes_served);
        assert_eq!(r.bytes_redundant, r.headlines_redundant * 250);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        FrontPage::new(0, 10);
    }
}
