//! # baselines — the centralized comparators of paper §1
//!
//! Everything the paper's introduction measures NewsWire against, built on
//! the same simulator:
//!
//! * [`FrontPage`] / [`simulate_polling`] — the rolling Slashdot-style
//!   front page and the analytic redundancy model behind the "~70%
//!   redundant data at 4 polls/day" claim (experiment E3).
//! * [`WebServer`] / [`WebClient`] / [`WebNode`] — the centralized pull
//!   architecture with all four fetch modes ([`FetchMode`]): full page,
//!   RSS summary, if-modified-since, delta encoding.
//! * [`AttackClient`] — the request flood for the overload/DoS experiment
//!   (E4).
//! * Centralized push — a [`WebServer`] with `push_subscribers`, paying
//!   O(N) per story (experiment E2's upper line).
//! * [`FlashCrowdSpec`] / [`SubscriptionChurnSpec`] — production-shaped
//!   workload schedules (the breaking-news flash crowd and sustained
//!   subscription churn) driving the adversary experiment (E17).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flashcrowd;
mod frontpage;
mod web;

pub use flashcrowd::{ChurnFlip, FlashCrowdSpec, SubscriptionChurnSpec};
pub use frontpage::{simulate_polling, FrontPage, RedundancyReport};
pub use web::{
    AttackClient, ClientStats, FetchMode, ServerStats, WebClient, WebMsg, WebNode, WebServer,
};
