//! Production-shaped workload schedules (experiment E17): the
//! breaking-news flash crowd and sustained subscription churn.
//!
//! Both are *closed-form and deterministic* — each schedule is a pure
//! function of its parameters, drawing no randomness — so the adversary
//! experiments can hold the workload fixed while sweeping corruption, and
//! the CI determinism gates can bit-diff whole runs.

use simnet::{SimDuration, SimTime};

/// A breaking-news flash crowd: publish spacing tightens linearly from
/// `calm_spacing` down to `peak_spacing` over the first half of the burst
/// and relaxes back over the second half — the ramp-crest-decay shape of
/// a story breaking, crowding the wire, and cooling off.
#[derive(Debug, Clone)]
pub struct FlashCrowdSpec {
    /// When the first item publishes.
    pub onset: SimTime,
    /// Total items in the burst.
    pub items: u32,
    /// Inter-publish spacing at the edges of the burst.
    pub calm_spacing: SimDuration,
    /// Inter-publish spacing at the crest.
    pub peak_spacing: SimDuration,
}

impl FlashCrowdSpec {
    /// The E17 default: two dozen items, 20 s spacing at the edges
    /// compressing to 2 s at the crest — a 10× rate spike.
    pub fn breaking_news(onset: SimTime) -> Self {
        FlashCrowdSpec {
            onset,
            items: 24,
            calm_spacing: SimDuration::from_secs(20),
            peak_spacing: SimDuration::from_secs(2),
        }
    }

    /// The publish instants, strictly increasing, `items` long.
    pub fn schedule(&self) -> Vec<SimTime> {
        let n = u64::from(self.items);
        let mut out = Vec::with_capacity(self.items as usize);
        if n == 0 {
            return out;
        }
        let calm = self.calm_spacing.as_micros();
        let peak = self.peak_spacing.as_micros().min(calm);
        // Gap k (between items k-1 and k) gets a spacing proportional to
        // its distance from the crest gap, in integer microseconds.
        let crest = n / 2;
        // Largest crest distance any gap attains (gaps run 1..n), so the
        // edge gaps land exactly on `calm_spacing`.
        let reach = crest.saturating_sub(1).max(n.saturating_sub(1).saturating_sub(crest)).max(1);
        let mut t = self.onset;
        out.push(t);
        for k in 1..n {
            let d = crest.abs_diff(k);
            let spacing = peak + (calm - peak) * d / reach;
            t += SimDuration::from_micros(spacing.max(1));
            out.push(t);
        }
        out
    }

    /// When the last item publishes (`onset` for an empty burst).
    pub fn last_publish(&self) -> SimTime {
        self.schedule().last().copied().unwrap_or(self.onset)
    }
}

/// One step of a subscription-churn schedule: flip `subscriber` (an index
/// into the driver's subscriber list) off or back on at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnFlip {
    /// When the flip happens.
    pub at: SimTime,
    /// Index into the driver's subscriber list.
    pub subscriber: u32,
    /// True to (re-)subscribe, false to unsubscribe.
    pub subscribe: bool,
}

/// Sustained subscription churn: every `period`, the next subscriber in
/// round-robin order unsubscribes, staying gone for `off_for` before
/// re-subscribing. Every departure is paired with a return — possibly
/// after `end` — so a run that rides out the schedule finishes with the
/// full subscriber population restored (what the delivery oracle expects).
#[derive(Debug, Clone)]
pub struct SubscriptionChurnSpec {
    /// When churn starts.
    pub start: SimTime,
    /// No unsubscribes at or after this time (returns may land later).
    pub end: SimTime,
    /// Size of the subscriber list being churned over.
    pub subscribers: u32,
    /// One unsubscribe per `period`, round-robin.
    pub period: SimDuration,
    /// How long each churner stays unsubscribed.
    pub off_for: SimDuration,
}

impl SubscriptionChurnSpec {
    /// The E17 default: one departure every 5 s, each gone for 15 s — at
    /// steady state three subscribers are always missing and the Bloom
    /// summaries up the tree never stop moving.
    pub fn sustained(start: SimTime, end: SimTime, subscribers: u32) -> Self {
        SubscriptionChurnSpec {
            start,
            end,
            subscribers,
            period: SimDuration::from_secs(5),
            off_for: SimDuration::from_secs(15),
        }
    }

    /// The flips, sorted by time (departures before returns on a tie).
    pub fn schedule(&self) -> Vec<ChurnFlip> {
        let mut out = Vec::new();
        if self.subscribers == 0 {
            return out;
        }
        let mut t = self.start;
        let mut i = 0u32;
        while t < self.end {
            out.push(ChurnFlip { at: t, subscriber: i % self.subscribers, subscribe: false });
            out.push(ChurnFlip {
                at: t + self.off_for,
                subscriber: i % self.subscribers,
                subscribe: true,
            });
            i += 1;
            t += self.period;
        }
        out.sort_by_key(|f| (f.at, f.subscribe, f.subscriber));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_crowd_ramps_to_the_crest_and_back() {
        let spec = FlashCrowdSpec::breaking_news(SimTime::from_secs(100));
        let times = spec.schedule();
        assert_eq!(times.len(), 24);
        assert_eq!(times[0], SimTime::from_secs(100));
        let gaps: Vec<u64> =
            times.windows(2).map(|w| w[1].as_micros() - w[0].as_micros()).collect();
        // Strictly increasing times, spacing tightening into the crest and
        // relaxing after it.
        assert!(gaps.iter().all(|&g| g > 0));
        let crest = gaps.iter().enumerate().min_by_key(|&(_, g)| g).unwrap().0;
        assert!(gaps[..crest].windows(2).all(|w| w[0] >= w[1]), "ramp in tightens");
        assert!(gaps[crest..].windows(2).all(|w| w[0] <= w[1]), "ramp out relaxes");
        assert_eq!(*gaps.iter().min().unwrap(), spec.peak_spacing.as_micros());
        assert_eq!(*gaps.iter().max().unwrap(), spec.calm_spacing.as_micros());
        assert_eq!(spec.last_publish(), *times.last().unwrap());
    }

    #[test]
    fn flash_crowd_schedule_is_deterministic_and_total() {
        let spec = FlashCrowdSpec::breaking_news(SimTime::from_secs(7));
        assert_eq!(spec.schedule(), spec.schedule());
        // Degenerate shapes stay well-formed.
        let one = FlashCrowdSpec { items: 1, ..spec.clone() };
        assert_eq!(one.schedule(), vec![SimTime::from_secs(7)]);
        let none = FlashCrowdSpec { items: 0, ..spec };
        assert!(none.schedule().is_empty());
    }

    #[test]
    fn churn_pairs_every_departure_with_a_later_return() {
        let spec =
            SubscriptionChurnSpec::sustained(SimTime::from_secs(60), SimTime::from_secs(120), 8);
        let flips = spec.schedule();
        assert_eq!(flips, spec.schedule(), "schedule is deterministic");
        let departures: Vec<&ChurnFlip> = flips.iter().filter(|f| !f.subscribe).collect();
        let returns: Vec<&ChurnFlip> = flips.iter().filter(|f| f.subscribe).collect();
        assert_eq!(departures.len(), 12, "one per period across the window");
        assert_eq!(departures.len(), returns.len(), "everyone comes back");
        for d in &departures {
            assert!(d.at < spec.end, "no departures past the window");
            assert!(
                returns.iter().any(|r| r.subscriber == d.subscriber && r.at > d.at),
                "subscriber {} never returns",
                d.subscriber
            );
        }
        // Round-robin: the first `subscribers` departures cover everyone.
        let first: Vec<u32> = departures.iter().take(8).map(|f| f.subscriber).collect();
        assert_eq!(first, (0..8).collect::<Vec<_>>());
        // Sorted by time.
        assert!(flips.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
