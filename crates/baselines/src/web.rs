//! The centralized web-delivery baselines of paper §1 on the simulator:
//! pull (full page), RSS summary pull, if-modified-since + delta encoding,
//! and centralized one-to-many push — plus the overload/DoS client used by
//! experiment E4.
//!
//! One [`WebNode`] enum hosts all the roles so a single simulation can mix
//! a server, honest pollers, push subscribers and attackers.

use std::collections::VecDeque;

use rand::Rng;
use simnet::{Context, Node, NodeId, Payload, SimDuration, SimTime, TimerId};

use crate::frontpage::FrontPage;

/// How a client fetches the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchMode {
    /// Plain pull of the whole front page every poll.
    FullPage,
    /// Pull of the RSS summary; full articles fetched only for fresh
    /// headlines (modelled as added client bytes).
    RssSummary,
    /// `if-modified-since`: unchanged pages cost a tiny 304 response.
    Conditional,
    /// Conditional plus delta encoding: only fresh headlines are shipped.
    Delta,
}

/// Messages of the centralized baselines.
#[derive(Debug, Clone)]
pub enum WebMsg {
    /// External input to the server: a new story appears.
    PublishStory {
        /// Story id.
        story: u64,
    },
    /// Client poll.
    Get {
        /// Fetch mode.
        mode: FetchMode,
        /// Page version the client last saw.
        since_version: u64,
    },
    /// Server response.
    Reply {
        /// Current page version.
        version: u64,
        /// Response size in bytes.
        bytes: u32,
        /// Headlines on the page the client had not seen.
        fresh: u16,
        /// Total headlines on the page.
        total: u16,
        /// True for a 304-style not-modified response.
        not_modified: bool,
    },
    /// Centralized push delivery of one story.
    PushItem {
        /// Story id.
        story: u64,
        /// Item size in bytes.
        bytes: u32,
    },
}

impl Payload for WebMsg {
    fn wire_size(&self) -> usize {
        match self {
            WebMsg::PublishStory { .. } => 512,
            WebMsg::Get { .. } => 96, // HTTP request + headers
            WebMsg::Reply { bytes, .. } | WebMsg::PushItem { bytes, .. } => *bytes as usize,
        }
    }
}

/// Server statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests served.
    pub served: u64,
    /// Requests dropped at the full queue (overload).
    pub dropped: u64,
    /// Stories published.
    pub stories: u64,
    /// Push deliveries enqueued.
    pub pushes: u64,
}

/// One unit of server work awaiting service.
#[derive(Debug, Clone, Copy)]
enum Work {
    /// Answer a poll.
    Reply {
        /// Requesting client.
        dst: NodeId,
        /// Fetch mode.
        mode: FetchMode,
        /// Client's last-seen version.
        since: u64,
    },
    /// Deliver one pushed story.
    Push {
        /// Target subscriber.
        dst: NodeId,
        /// Story id.
        story: u64,
    },
}

/// The centralized news server.
#[derive(Debug)]
pub struct WebServer {
    page: FrontPage,
    service_interval: SimDuration,
    max_queue: usize,
    queue: VecDeque<Work>,
    draining: bool,
    /// Subscribers to push each story to (empty = pull-only server).
    pub push_subscribers: Vec<u32>,
    article_bytes: u32,
    /// Counters.
    pub stats: ServerStats,
}

impl WebServer {
    /// Creates a server with the given page geometry and capacity.
    /// `service_interval` is the per-request processing time; `max_queue`
    /// bounds the accept queue (beyond it requests are dropped — the §1
    /// overload failure mode).
    pub fn new(
        page_capacity: usize,
        headline_bytes: u32,
        article_bytes: u32,
        service_interval: SimDuration,
        max_queue: usize,
    ) -> Self {
        WebServer {
            page: FrontPage::new(page_capacity, headline_bytes),
            service_interval,
            max_queue,
            queue: VecDeque::new(),
            draining: false,
            push_subscribers: Vec::new(),
            article_bytes,
            stats: ServerStats::default(),
        }
    }

    fn reply_for(&self, mode: FetchMode, since_version: u64) -> WebMsg {
        let version = self.page.version();
        let total = self.page.len() as u16;
        let fresh = version.saturating_sub(since_version).min(total as u64) as u16;
        match mode {
            FetchMode::FullPage => WebMsg::Reply {
                version,
                bytes: self.page.page_bytes(),
                fresh,
                total,
                not_modified: false,
            },
            FetchMode::RssSummary => WebMsg::Reply {
                version,
                bytes: 300 + u32::from(total) * 60, // headline + link per entry
                fresh,
                total,
                not_modified: false,
            },
            FetchMode::Conditional => {
                if fresh == 0 {
                    WebMsg::Reply { version, bytes: 80, fresh: 0, total, not_modified: true }
                } else {
                    WebMsg::Reply {
                        version,
                        bytes: self.page.page_bytes(),
                        fresh,
                        total,
                        not_modified: false,
                    }
                }
            }
            FetchMode::Delta => {
                if fresh == 0 {
                    WebMsg::Reply { version, bytes: 80, fresh: 0, total, not_modified: true }
                } else {
                    WebMsg::Reply {
                        version,
                        bytes: self.page.delta_bytes(usize::from(fresh)),
                        fresh,
                        total,
                        not_modified: false,
                    }
                }
            }
        }
    }
}

/// Client statistics.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// Polls sent.
    pub fetches: u64,
    /// Replies received.
    pub replies: u64,
    /// 304-style replies.
    pub not_modified: u64,
    /// Total bytes received (including modelled article follow-ups).
    pub bytes: u64,
    /// Fresh headlines seen.
    pub fresh: u64,
    /// Redundant headlines received.
    pub redundant: u64,
    /// Polls that got no reply before the next poll (overload signal).
    pub timeouts: u64,
    /// Push items received, with delivery times.
    pub push_deliveries: Vec<(u64, SimTime)>,
}

/// A polling (or push-subscribing) client.
#[derive(Debug)]
pub struct WebClient {
    server: NodeId,
    mode: FetchMode,
    poll_interval: SimDuration,
    last_version: u64,
    awaiting: bool,
    article_bytes: u32,
    /// Counters.
    pub stats: ClientStats,
}

impl WebClient {
    /// A client polling `server` every `poll_interval` with `mode`.
    pub fn new(server: NodeId, mode: FetchMode, poll_interval: SimDuration) -> Self {
        WebClient {
            server,
            mode,
            poll_interval,
            last_version: 0,
            awaiting: false,
            article_bytes: 1_500,
            stats: ClientStats::default(),
        }
    }
}

/// A request-flooding attacker (experiment E4).
#[derive(Debug)]
pub struct AttackClient {
    server: NodeId,
    interval: SimDuration,
    /// Requests fired.
    pub sent: u64,
}

impl AttackClient {
    /// An attacker firing a full-page request every `interval`.
    pub fn new(server: NodeId, interval: SimDuration) -> Self {
        AttackClient { server, interval, sent: 0 }
    }
}

/// One simulated node of the centralized-baseline world.
#[derive(Debug)]
pub enum WebNode {
    /// The central server.
    Server(WebServer),
    /// An honest polling client.
    Client(WebClient),
    /// A passive push subscriber.
    PushSubscriber(ClientStats),
    /// A flooding attacker.
    Attacker(AttackClient),
}

const POLL_TIMER: u64 = 1;
const DRAIN_TIMER: u64 = 2;
const ATTACK_TIMER: u64 = 3;

impl Node for WebNode {
    type Msg = WebMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WebMsg>) {
        match self {
            WebNode::Server(_) | WebNode::PushSubscriber(_) => {}
            WebNode::Client(c) => {
                let first = SimDuration::from_micros(
                    ctx.rng().gen_range(0..c.poll_interval.as_micros().max(1)),
                );
                ctx.set_timer(first, POLL_TIMER);
            }
            WebNode::Attacker(a) => {
                let first =
                    SimDuration::from_micros(ctx.rng().gen_range(0..a.interval.as_micros().max(1)));
                ctx.set_timer(first, ATTACK_TIMER);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, WebMsg>, from: NodeId, msg: WebMsg) {
        match (self, msg) {
            (WebNode::Server(s), WebMsg::PublishStory { story }) => {
                s.page.push_story(story);
                s.stats.stories += 1;
                // Centralized push: one copy per subscriber through the same
                // service queue — the publisher-side O(N) cost of §2.
                let subs = s.push_subscribers.clone();
                for sub in subs {
                    if s.queue.len() >= s.max_queue {
                        s.stats.dropped += 1;
                        continue;
                    }
                    s.stats.pushes += 1;
                    s.queue.push_back(Work::Push { dst: NodeId(sub), story });
                    if !s.draining {
                        s.draining = true;
                        ctx.set_timer(s.service_interval, DRAIN_TIMER);
                    }
                }
            }
            (WebNode::Server(s), WebMsg::Get { mode, since_version }) => {
                if s.queue.len() >= s.max_queue {
                    s.stats.dropped += 1;
                    return;
                }
                s.queue.push_back(Work::Reply { dst: from, mode, since: since_version });
                if !s.draining {
                    s.draining = true;
                    ctx.set_timer(s.service_interval, DRAIN_TIMER);
                }
            }
            (WebNode::Client(c), WebMsg::Reply { version, bytes, fresh, total, not_modified }) => {
                c.awaiting = false;
                c.stats.replies += 1;
                c.stats.bytes += u64::from(bytes);
                if not_modified {
                    c.stats.not_modified += 1;
                    return;
                }
                c.stats.fresh += u64::from(fresh);
                // Delta replies ship only the fresh headlines; every other
                // mode re-ships the whole page/summary.
                if c.mode != FetchMode::Delta {
                    c.stats.redundant += u64::from(total.saturating_sub(fresh));
                }
                if c.mode == FetchMode::RssSummary {
                    // Model the follow-up article fetches for fresh entries.
                    c.stats.bytes += u64::from(fresh) * u64::from(c.article_bytes);
                }
                c.last_version = version;
            }
            (WebNode::PushSubscriber(stats), WebMsg::PushItem { story, bytes }) => {
                let now = ctx.now();
                stats.push_deliveries.push((story, now));
                stats.bytes += u64::from(bytes);
                stats.fresh += 1;
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, WebMsg>, _t: TimerId, tag: u64) {
        match (self, tag) {
            (WebNode::Client(c), POLL_TIMER) => {
                if c.awaiting {
                    c.stats.timeouts += 1;
                    c.awaiting = false;
                }
                c.stats.fetches += 1;
                c.awaiting = true;
                let since = match c.mode {
                    FetchMode::Conditional | FetchMode::Delta | FetchMode::RssSummary => {
                        c.last_version
                    }
                    FetchMode::FullPage => 0,
                };
                ctx.send(c.server, WebMsg::Get { mode: c.mode, since_version: since });
                ctx.set_timer(c.poll_interval, POLL_TIMER);
            }
            (WebNode::Attacker(a), ATTACK_TIMER) => {
                a.sent += 1;
                ctx.send(a.server, WebMsg::Get { mode: FetchMode::FullPage, since_version: 0 });
                ctx.set_timer(a.interval, ATTACK_TIMER);
            }
            (WebNode::Server(s), DRAIN_TIMER) => {
                if let Some(work) = s.queue.pop_front() {
                    s.stats.served += 1;
                    match work {
                        Work::Push { dst, story } => {
                            ctx.send(dst, WebMsg::PushItem { story, bytes: s.article_bytes });
                        }
                        Work::Reply { dst, mode, since } => {
                            let reply = s.reply_for(mode, since);
                            ctx.send(dst, reply);
                        }
                    }
                }
                if s.queue.is_empty() {
                    s.draining = false;
                } else {
                    ctx.set_timer(s.service_interval, DRAIN_TIMER);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NetworkModel, Simulation};

    const MS: u64 = 1_000;

    fn sim_with_server(
        clients: usize,
        mode: FetchMode,
        poll: SimDuration,
        seed: u64,
    ) -> Simulation<WebNode> {
        let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(20)), seed);
        sim.add_node(WebNode::Server(WebServer::new(
            15,
            300,
            1_500,
            SimDuration::from_micros(500),
            1_000,
        )));
        for _ in 0..clients {
            sim.add_node(WebNode::Client(WebClient::new(NodeId(0), mode, poll)));
        }
        sim
    }

    fn publish(sim: &mut Simulation<WebNode>, at_s: u64, story: u64) {
        sim.schedule_external(SimTime::from_secs(at_s), NodeId(0), WebMsg::PublishStory { story });
    }

    #[test]
    fn pull_clients_receive_pages() {
        let mut sim = sim_with_server(5, FetchMode::FullPage, SimDuration::from_secs(10), 1);
        for s in 0..10 {
            publish(&mut sim, s * 5, s);
        }
        sim.run_until(SimTime::from_secs(100));
        for i in 1..=5u32 {
            let WebNode::Client(c) = sim.node(NodeId(i)) else { panic!() };
            assert!(c.stats.replies >= 8, "client {i}: {} replies", c.stats.replies);
            assert!(c.stats.bytes > 0);
        }
    }

    #[test]
    fn conditional_get_saves_bytes_on_quiet_site() {
        // No stories at all: conditional pollers get cheap 304s.
        let mut full = sim_with_server(1, FetchMode::FullPage, SimDuration::from_secs(5), 2);
        publish(&mut full, 0, 1);
        full.run_until(SimTime::from_secs(200));
        let mut cond = sim_with_server(1, FetchMode::Conditional, SimDuration::from_secs(5), 2);
        publish(&mut cond, 0, 1);
        cond.run_until(SimTime::from_secs(200));
        let (WebNode::Client(f), WebNode::Client(c)) = (full.node(NodeId(1)), cond.node(NodeId(1)))
        else {
            panic!()
        };
        assert!(c.stats.not_modified > 30);
        assert!(c.stats.bytes < f.stats.bytes / 5, "{} vs {}", c.stats.bytes, f.stats.bytes);
    }

    #[test]
    fn delta_ships_only_fresh_headlines() {
        let mut sim = sim_with_server(1, FetchMode::Delta, SimDuration::from_secs(10), 3);
        for s in 0..20 {
            publish(&mut sim, s * 7, s);
        }
        sim.run_until(SimTime::from_secs(200));
        let WebNode::Client(c) = sim.node(NodeId(1)) else { panic!() };
        assert_eq!(c.stats.redundant, 0, "delta mode must never re-ship headlines");
        assert!(c.stats.fresh >= 15);
    }

    #[test]
    fn overloaded_server_drops_requests() {
        let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(5)), 4);
        // Slow server, tiny queue.
        sim.add_node(WebNode::Server(WebServer::new(
            15,
            300,
            1_500,
            SimDuration::from_micros(50 * MS),
            10,
        )));
        for _ in 0..5 {
            sim.add_node(WebNode::Client(WebClient::new(
                NodeId(0),
                FetchMode::FullPage,
                SimDuration::from_secs(2),
            )));
        }
        for i in 0..20 {
            sim.add_node(WebNode::Attacker(AttackClient::new(
                NodeId(0),
                SimDuration::from_millis(20),
            )));
            let _ = i;
        }
        sim.run_until(SimTime::from_secs(60));
        let WebNode::Server(s) = sim.node(NodeId(0)) else { panic!() };
        assert!(s.stats.dropped > 1_000, "dropped {}", s.stats.dropped);
        // Honest clients mostly time out — the §1 overload failure.
        let mut timeouts = 0;
        let mut fetches = 0;
        for i in 1..=5u32 {
            let WebNode::Client(c) = sim.node(NodeId(i)) else { panic!() };
            timeouts += c.stats.timeouts;
            fetches += c.stats.fetches;
        }
        assert!(timeouts as f64 > 0.5 * fetches as f64, "timeouts {timeouts} of {fetches} fetches");
    }

    #[test]
    fn push_server_cost_scales_with_subscribers() {
        let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(10)), 5);
        let mut server = WebServer::new(15, 300, 1_500, SimDuration::from_micros(200), 100_000);
        server.push_subscribers = (1..=50).collect();
        sim.add_node(WebNode::Server(server));
        for _ in 0..50 {
            sim.add_node(WebNode::PushSubscriber(ClientStats::default()));
        }
        publish(&mut sim, 1, 7);
        sim.run_until(SimTime::from_secs(30));
        let server_sent = sim.counters(NodeId(0)).msgs_sent;
        assert_eq!(server_sent, 50, "one copy per subscriber");
        for i in 1..=50u32 {
            let WebNode::PushSubscriber(st) = sim.node(NodeId(i)) else { panic!() };
            assert_eq!(st.push_deliveries.len(), 1);
        }
    }
}
