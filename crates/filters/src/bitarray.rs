//! A dynamically sized bit array with the union/intersection operations the
//! aggregation hierarchy needs.
//!
//! Subscription summaries travel up the Astrolabe tree as bit arrays that are
//! OR-ed together at every level (paper §6: "the subscription arrays are
//! aggregated into parent zones through a simple binary-or operation").

use std::fmt;

/// A fixed-length array of bits backed by 64-bit words.
///
/// ```
/// use filters::BitArray;
/// let mut a = BitArray::new(128);
/// a.set(3);
/// a.set(127);
/// assert!(a.get(3) && a.get(127) && !a.get(4));
/// assert_eq!(a.count_ones(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitArray {
    len: usize,
    words: Vec<u64>,
}

impl BitArray {
    /// Creates an all-zero array of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "bit array must have at least one bit");
        BitArray { len, words: vec![0; len.div_ceil(64)] }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array has length zero (never: construction forbids it,
    /// kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of bits set, in `[0, 1]`.
    pub fn fill_ratio(&self) -> f64 {
        self.count_ones() as f64 / self.len as f64
    }

    /// True when no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union (`self |= other`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ; arrays of different sizes summarize
    /// incomparable subscription spaces.
    pub fn or_assign(&mut self, other: &BitArray) {
        assert_eq!(self.len, other.len, "bit array length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection (`self &= other`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &BitArray) {
        assert_eq!(self.len, other.len, "bit array length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// True when every set bit of `self` is also set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_subset_of(&self, other: &BitArray) -> bool {
        assert_eq!(self.len, other.len, "bit array length mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// True when the two arrays share at least one set bit.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn intersects(&self, other: &BitArray) -> bool {
        assert_eq!(self.len, other.len, "bit array length mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Indices of all set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Serializes to little-endian bytes (length is carried out of band).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// Rebuilds an array of `len` bits from [`BitArray::to_bytes`] output.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than `len` requires.
    pub fn from_bytes(len: usize, bytes: &[u8]) -> Self {
        let mut arr = BitArray::new(len);
        for (i, chunk) in bytes.chunks(8).enumerate().take(arr.words.len()) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            arr.words[i] = u64::from_le_bytes(buf);
        }
        // Mask stray bits beyond `len` so equality stays canonical.
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = arr.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        arr
    }

    /// Approximate in-memory/wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

impl fmt::Debug for BitArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitArray[{} bits, {} set]", self.len, self.count_ones())
    }
}

impl fmt::Display for BitArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ones: Vec<String> = self.ones().take(16).map(|i| i.to_string()).collect();
        let more = if self.count_ones() > 16 { ",…" } else { "" };
        write!(f, "{{{}{}}}", ones.join(","), more)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut a = BitArray::new(70);
        a.set(0);
        a.set(69);
        assert!(a.get(0) && a.get(69));
        a.clear(0);
        assert!(!a.get(0));
        assert_eq!(a.count_ones(), 1);
    }

    #[test]
    fn or_and_subset_intersects() {
        let mut a = BitArray::new(100);
        let mut b = BitArray::new(100);
        a.set(1);
        a.set(2);
        b.set(2);
        b.set(3);
        assert!(a.intersects(&b));
        let mut u = a.clone();
        u.or_assign(&b);
        assert_eq!(u.ones().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        let mut i = a.clone();
        i.and_assign(&b);
        assert_eq!(i.ones().collect::<Vec<_>>(), vec![2]);
        assert!(!i.intersects(&BitArray::new(100)));
    }

    #[test]
    fn bytes_roundtrip() {
        let mut a = BitArray::new(130);
        for i in [0, 63, 64, 65, 129] {
            a.set(i);
        }
        let b = BitArray::from_bytes(130, &a.to_bytes());
        assert_eq!(a, b);
    }

    #[test]
    fn from_bytes_masks_tail() {
        // Feed all-ones bytes for a 10-bit array: only 10 bits may survive.
        let a = BitArray::from_bytes(10, &[0xFF; 16]);
        assert_eq!(a.count_ones(), 10);
    }

    #[test]
    fn fill_ratio_and_zero() {
        let mut a = BitArray::new(10);
        assert!(a.is_zero());
        a.set(0);
        assert!((a.fill_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        BitArray::new(8).set(8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_or_panics() {
        let mut a = BitArray::new(8);
        a.or_assign(&BitArray::new(16));
    }

    #[test]
    fn display_is_compact() {
        let mut a = BitArray::new(8);
        a.set(1);
        a.set(5);
        assert_eq!(a.to_string(), "{1,5}");
    }
}
