//! # filters — subscription summaries for the NewsWire hierarchy
//!
//! Paper §6–§7 describe two generations of subscription summary that travel
//! up the Astrolabe zone tree and gate forwarding decisions on the way down:
//!
//! * [`CategoryMask`] — the early prototype: an exact per-publisher bitmask
//!   of news categories, OR-aggregated at every level.
//! * [`BloomFilter`] — the scalable replacement: subscriptions hash into "a
//!   large single bit array in the order of a thousand bits or more", also
//!   OR-aggregated; publishers ship an item's bit [`positions`] and every
//!   forwarder tests them against the child zone's aggregate.
//!
//! Both rest on [`BitArray`], a plain dynamic bitset, and on the stable
//! dependency-free hashes in [`fnv1a`]/[`base_hashes`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitarray;
mod bitmask;
mod bloom;
mod hasher;

pub use bitarray::BitArray;
pub use bitmask::CategoryMask;
pub use bloom::{positions, BloomFilter};
pub use hasher::{base_hashes, derived, fnv1a, fnv1a_seeded};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// A Bloom filter never forgets an inserted key.
        #[test]
        fn bloom_no_false_negatives(keys in proptest::collection::vec("[a-z]{1,12}", 1..60)) {
            let mut f = BloomFilter::new(2048, 3);
            for k in &keys { f.insert(k); }
            for k in &keys { prop_assert!(f.contains(k)); }
        }

        /// Union equals inserting into one filter (merge = set union).
        #[test]
        fn bloom_union_equals_combined_inserts(
            xs in proptest::collection::vec("[a-z]{1,8}", 0..30),
            ys in proptest::collection::vec("[a-z]{1,8}", 0..30),
        ) {
            let mut a = BloomFilter::new(1024, 3);
            let mut b = BloomFilter::new(1024, 3);
            for k in &xs { a.insert(k); }
            for k in &ys { b.insert(k); }
            let mut merged = a.clone();
            merged.union(&b);
            let mut direct = BloomFilter::new(1024, 3);
            for k in xs.iter().chain(&ys) { direct.insert(k); }
            prop_assert_eq!(merged, direct);
        }

        /// Bloom union is commutative and idempotent — required for gossip:
        /// aggregates may be recomputed in any order, any number of times.
        #[test]
        fn bloom_union_commutative_idempotent(
            xs in proptest::collection::vec("[a-z]{1,8}", 0..20),
            ys in proptest::collection::vec("[a-z]{1,8}", 0..20),
        ) {
            let mut a = BloomFilter::new(512, 4);
            let mut b = BloomFilter::new(512, 4);
            for k in &xs { a.insert(k); }
            for k in &ys { b.insert(k); }
            let mut ab = a.clone(); ab.union(&b);
            let mut ba = b.clone(); ba.union(&a);
            prop_assert_eq!(&ab, &ba);
            let mut abb = ab.clone(); abb.union(&b);
            prop_assert_eq!(&ab, &abb);
        }

        /// Bit-array byte serialization round-trips.
        #[test]
        fn bitarray_bytes_roundtrip(len in 1usize..300, ones in proptest::collection::vec(0usize..300, 0..40)) {
            let mut a = BitArray::new(len);
            for o in ones { if o < len { a.set(o); } }
            prop_assert_eq!(BitArray::from_bytes(len, &a.to_bytes()), a);
        }

        /// Mask union is exactly bitwise OR of memberships.
        #[test]
        fn mask_union_semantics(xs in proptest::collection::vec(0u8..64, 0..20),
                                ys in proptest::collection::vec(0u8..64, 0..20)) {
            let a = CategoryMask::from_categories(xs.iter().copied());
            let b = CategoryMask::from_categories(ys.iter().copied());
            let u = a | b;
            for c in 0..64u8 {
                prop_assert_eq!(u.contains(c), a.contains(c) || b.contains(c));
            }
        }

        /// Double-hash positions are always in range and deterministic.
        #[test]
        fn positions_in_range(key in "[ -~]{0,24}", m in 8usize..4096, k in 1u32..8) {
            let p1 = positions(&key, m, k);
            let p2 = positions(&key, m, k);
            prop_assert_eq!(&p1, &p2);
            prop_assert_eq!(p1.len(), k as usize);
            prop_assert!(p1.iter().all(|&p| p < m));
        }
    }
}
