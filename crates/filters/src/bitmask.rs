//! The per-publisher category bitmask of paper §7.
//!
//! The paper's early prototype represents each publisher as an attribute
//! whose value is "a small bit mask that corresponds to a specific set of
//! news categories this publisher provides", aggregated up the tree by OR —
//! exactly like the Bloom arrays but exact (one bit per category, no
//! hashing). It is cheap but "has limited scalability in the selection of
//! publishers"; the Bloom filter generalizes it.

use std::fmt;

/// An exact 64-category interest mask.
///
/// ```
/// use filters::CategoryMask;
/// let mut m = CategoryMask::EMPTY;
/// m.add(3);
/// assert!(m.contains(3));
/// assert!(m.intersects(CategoryMask::single(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct CategoryMask(pub u64);

impl CategoryMask {
    /// No categories.
    pub const EMPTY: CategoryMask = CategoryMask(0);
    /// Every category.
    pub const ALL: CategoryMask = CategoryMask(u64::MAX);
    /// Number of representable categories.
    pub const CAPACITY: u8 = 64;

    /// A mask with exactly one category set.
    ///
    /// # Panics
    ///
    /// Panics if `cat >= 64`.
    pub fn single(cat: u8) -> Self {
        assert!(cat < Self::CAPACITY, "category {cat} out of range");
        CategoryMask(1 << cat)
    }

    /// Builds a mask from category indices.
    pub fn from_categories<I: IntoIterator<Item = u8>>(cats: I) -> Self {
        let mut m = CategoryMask::EMPTY;
        for c in cats {
            m.add(c);
        }
        m
    }

    /// Adds one category.
    ///
    /// # Panics
    ///
    /// Panics if `cat >= 64`.
    pub fn add(&mut self, cat: u8) {
        assert!(cat < Self::CAPACITY, "category {cat} out of range");
        self.0 |= 1 << cat;
    }

    /// Tests one category.
    pub fn contains(self, cat: u8) -> bool {
        cat < Self::CAPACITY && self.0 >> cat & 1 == 1
    }

    /// OR-aggregation with another mask (the parent-zone summary step).
    #[must_use]
    pub fn union(self, other: CategoryMask) -> CategoryMask {
        CategoryMask(self.0 | other.0)
    }

    /// True when any category is shared — the forwarding test.
    pub fn intersects(self, other: CategoryMask) -> bool {
        self.0 & other.0 != 0
    }

    /// True when no category is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of set categories.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterator over set category indices, ascending.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0..Self::CAPACITY).filter(move |&c| self.contains(c))
    }
}

impl std::ops::BitOr for CategoryMask {
    type Output = CategoryMask;
    fn bitor(self, rhs: CategoryMask) -> CategoryMask {
        self.union(rhs)
    }
}

impl std::ops::BitAnd for CategoryMask {
    type Output = CategoryMask;
    fn bitand(self, rhs: CategoryMask) -> CategoryMask {
        CategoryMask(self.0 & rhs.0)
    }
}

impl FromIterator<u8> for CategoryMask {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        CategoryMask::from_categories(iter)
    }
}

impl fmt::Display for CategoryMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl fmt::LowerHex for CategoryMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for CategoryMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_contains() {
        let m = CategoryMask::single(5);
        assert!(m.contains(5));
        assert!(!m.contains(4));
        assert!(!m.contains(64)); // out-of-range query is just "absent"
    }

    #[test]
    fn union_and_intersection() {
        let a = CategoryMask::from_categories([1, 2]);
        let b = CategoryMask::from_categories([2, 3]);
        assert_eq!((a | b).iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!((a & b).iter().collect::<Vec<_>>(), vec![2]);
        assert!(a.intersects(b));
        assert!(!a.intersects(CategoryMask::single(9)));
    }

    #[test]
    fn aggregation_is_monotone() {
        // OR-ing child masks never loses an interest — the invariant that
        // makes the §7 forwarding test sound.
        let children = [
            CategoryMask::from_categories([0]),
            CategoryMask::from_categories([7, 9]),
            CategoryMask::EMPTY,
        ];
        let parent = children.iter().copied().fold(CategoryMask::EMPTY, CategoryMask::union);
        for c in &children {
            for cat in c.iter() {
                assert!(parent.contains(cat));
            }
        }
        assert_eq!(parent.count(), 3);
    }

    #[test]
    fn collect_from_iterator() {
        let m: CategoryMask = [0u8, 63].into_iter().collect();
        assert!(m.contains(0) && m.contains(63));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_rejects_out_of_range() {
        let mut m = CategoryMask::EMPTY;
        m.add(64);
    }

    #[test]
    fn formatting() {
        let m = CategoryMask::single(4);
        assert_eq!(format!("{m:x}"), "10");
        assert_eq!(format!("{m:b}"), "10000");
        assert_eq!(m.to_string(), "0x0000000000000010");
    }
}
