//! Stable, dependency-free hash functions for the filter family.
//!
//! Bloom filters need several independent hash functions whose values are
//! identical on every node (the same subscription string must map to the same
//! bit everywhere in the system), so `std`'s randomized `DefaultHasher` is
//! unusable here. We use FNV-1a with two different offsets and the classic
//! Kirsch–Mitzenmacher double-hashing construction `h_i = h1 + i·h2`.

/// FNV-1a over `data` with the standard 64-bit offset basis.
pub fn fnv1a(data: &[u8]) -> u64 {
    fnv1a_seeded(data, 0xcbf2_9ce4_8422_2325)
}

/// FNV-1a starting from a caller-chosen basis, giving a cheap seeded hash.
pub fn fnv1a_seeded(data: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The two base hashes used by double hashing.
///
/// The second hash is forced odd so that, for power-of-two table sizes, the
/// probe sequence `h1 + i·h2 (mod m)` visits distinct slots.
pub fn base_hashes(data: &[u8]) -> (u64, u64) {
    let h1 = fnv1a(data);
    let h2 = fnv1a_seeded(data, 0x84222325_cbf29ce4) | 1;
    (h1, h2)
}

/// The `i`-th derived hash of the Kirsch–Mitzenmacher family.
pub fn derived(h1: u64, h2: u64, i: u32) -> u64 {
    h1.wrapping_add(h2.wrapping_mul(u64::from(i)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is a published vector.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(fnv1a(b"slashdot/linux"), fnv1a(b"slashdot/linux"));
        assert_eq!(base_hashes(b"x"), base_hashes(b"x"));
    }

    #[test]
    fn second_hash_is_odd() {
        for s in [&b"a"[..], b"bb", b"ccc", b""] {
            assert_eq!(base_hashes(s).1 & 1, 1);
        }
    }

    #[test]
    fn derived_family_spreads() {
        let (h1, h2) = base_hashes(b"reuters/politics");
        let m = 1024u64;
        let slots: std::collections::HashSet<u64> =
            (0..8).map(|i| derived(h1, h2, i) % m).collect();
        assert!(slots.len() >= 7, "family collapsed: {slots:?}");
    }
}
