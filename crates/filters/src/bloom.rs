//! The Bloom-filter subscription summary of paper §6.
//!
//! Each leaf hashes its subscriptions into a shared bit array; parent zones
//! hold the OR of their children's arrays; a publisher attaches the bit
//! positions of an item's subject to the item, and every forwarder tests
//! those positions against the child zone's aggregated array before
//! forwarding. False positives cost a wasted forward (caught by the exact
//! check at the leaf); false negatives are impossible.

use crate::bitarray::BitArray;
use crate::hasher::{base_hashes, derived};

/// A Bloom filter over UTF-8 subscription keys.
///
/// ```
/// use filters::BloomFilter;
/// let mut f = BloomFilter::new(1024, 4);
/// f.insert("reuters/politics");
/// assert!(f.contains("reuters/politics"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: BitArray,
    k: u32,
}

impl BloomFilter {
    /// Creates an empty filter of `m` bits using `k` hash functions.
    ///
    /// The paper suggests "a large single bit array in the order of a
    /// thousand bits or more"; experiment E5 sweeps `m` to test that claim.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `k == 0`.
    pub fn new(m: usize, k: u32) -> Self {
        assert!(k > 0, "need at least one hash function");
        BloomFilter { bits: BitArray::new(m), k }
    }

    /// Creates a filter sized for `n` expected keys at false-positive rate
    /// `p`, using the standard optimal formulas.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 0` and `0 < p < 1`.
    pub fn with_capacity(n: usize, p: f64) -> Self {
        assert!(n > 0, "capacity must be positive");
        assert!(p > 0.0 && p < 1.0, "false-positive rate must be in (0,1)");
        let ln2 = std::f64::consts::LN_2;
        let m = ((-(n as f64) * p.ln()) / (ln2 * ln2)).ceil().max(8.0) as usize;
        let k = ((m as f64 / n as f64) * ln2).round().max(1.0) as u32;
        BloomFilter::new(m, k)
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the filter holds zero bits set.
    pub fn is_empty(&self) -> bool {
        self.bits.is_zero()
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> u32 {
        self.k
    }

    /// The bit positions `key` maps to.
    ///
    /// Publishers ship exactly these positions with an item (§6: "an
    /// attribute is added to the data representing the bit position in the
    /// subscription array this publication corresponds to").
    pub fn positions(&self, key: &str) -> Vec<usize> {
        positions(key, self.bits.len(), self.k)
    }

    /// Inserts a subscription key.
    pub fn insert(&mut self, key: &str) {
        for p in self.positions(key) {
            self.bits.set(p);
        }
    }

    /// Membership test; false positives possible, false negatives not.
    pub fn contains(&self, key: &str) -> bool {
        self.positions(key).iter().all(|&p| self.bits.get(p))
    }

    /// Tests pre-computed positions (what a forwarding node does — it never
    /// sees the key, only the positions shipped with the item).
    pub fn contains_positions(&self, pos: &[usize]) -> bool {
        pos.iter().all(|&p| p < self.bits.len() && self.bits.get(p))
    }

    /// Merges another filter in place (bitwise OR) — the §6 aggregation step.
    ///
    /// # Panics
    ///
    /// Panics if geometry (`m`, `k`) differs; such filters summarize
    /// different hash spaces and must never be combined.
    pub fn union(&mut self, other: &BloomFilter) {
        assert_eq!(self.k, other.k, "hash-count mismatch");
        self.bits.or_assign(&other.bits);
    }

    /// Fraction of bits set.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.fill_ratio()
    }

    /// Expected false-positive probability at the current fill: `fill^k`.
    pub fn expected_fpr(&self) -> f64 {
        self.fill_ratio().powi(self.k as i32)
    }

    /// Read access to the underlying bit array.
    pub fn bits(&self) -> &BitArray {
        &self.bits
    }

    /// Reassembles a filter from its parts (wire decoding).
    pub fn from_parts(bits: BitArray, k: u32) -> Self {
        assert!(k > 0, "need at least one hash function");
        BloomFilter { bits, k }
    }
}

/// The bit positions `key` maps to in an `m`-bit, `k`-hash filter.
pub fn positions(key: &str, m: usize, k: u32) -> Vec<usize> {
    let (h1, h2) = base_hashes(key.as_bytes());
    (0..k).map(|i| (derived(h1, h2, i) % m as u64) as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(512, 3);
        let keys: Vec<String> = (0..50).map(|i| format!("pub{i}/cat{}", i % 7)).collect();
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.contains(k), "false negative on {k}");
        }
    }

    #[test]
    fn union_is_or() {
        let mut a = BloomFilter::new(256, 3);
        let mut b = BloomFilter::new(256, 3);
        a.insert("x");
        b.insert("y");
        a.union(&b);
        assert!(a.contains("x") && a.contains("y"));
    }

    #[test]
    fn positions_match_forwarding_test() {
        let mut f = BloomFilter::new(1024, 4);
        f.insert("reuters/business");
        let pos = positions("reuters/business", 1024, 4);
        assert!(f.contains_positions(&pos));
        let other = positions("reuters/weather", 1024, 4);
        // Almost surely absent at this fill level.
        assert!(!f.contains_positions(&other));
    }

    #[test]
    fn with_capacity_hits_target_fpr() {
        let n = 1000;
        let mut f = BloomFilter::with_capacity(n, 0.01);
        for i in 0..n {
            f.insert(&format!("key-{i}"));
        }
        let fp =
            (0..10_000).filter(|i| f.contains(&format!("absent-{i}"))).count() as f64 / 10_000.0;
        assert!(fp < 0.03, "observed FPR {fp}");
        assert!(f.expected_fpr() < 0.03);
    }

    #[test]
    fn paper_scale_thousand_bits_adequate_for_news() {
        // §6: "a relatively small array will be more than adequate" — with a
        // few hundred subjects, 1k bits keeps the FP-forwarding rate small.
        let mut f = BloomFilter::new(1024, 3);
        for i in 0..100 {
            f.insert(&format!("subject-{i}"));
        }
        assert!(f.expected_fpr() < 0.05, "fpr {}", f.expected_fpr());
    }

    #[test]
    #[should_panic(expected = "hash-count mismatch")]
    fn union_rejects_different_k() {
        let mut a = BloomFilter::new(256, 3);
        a.union(&BloomFilter::new(256, 4));
    }

    #[test]
    fn from_parts_roundtrip() {
        let mut f = BloomFilter::new(128, 2);
        f.insert("abc");
        let g = BloomFilter::from_parts(f.bits().clone(), f.hash_count());
        assert_eq!(f, g);
        assert!(g.contains("abc"));
    }
}
