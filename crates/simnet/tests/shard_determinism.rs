//! Shard-count invariance, end to end through the public API.
//!
//! A small anti-entropy protocol (version vectors gossiped over a ring plus
//! random peers) runs under the nastiest fault cocktail the engine offers —
//! crash/cold-restart, partition, gray links, duplication, reordering, drops,
//! a Byzantine liar and a colluder pair, disk corruption. In invariant
//! (sharded) mode the same seed must produce *byte-identical* telemetry and
//! identical node states for every shard count, sequential or
//! thread-parallel. This is the contract CI pins: `SIMNET_SHARDS=1` and
//! `SIMNET_SHARDS=4` runs of the determinism suite may be diffed directly.

use std::collections::BTreeMap;

use simnet::{
    Context, LiarBehavior, LiarMode, NetworkModel, Node, NodeId, Partition, Payload, RestartMode,
    SimDuration, SimTime, Simulation, TimerId,
};

#[derive(Debug, Clone)]
struct Gossip {
    vector: BTreeMap<u32, u64>,
}

impl Payload for Gossip {
    fn wire_size(&self) -> usize {
        16 + self.vector.len() * 12
    }
}

/// Gossips its version vector to the next ring member and one random peer
/// every tick, bumping its own entry each round. Deterministic per seed:
/// peer choice comes from the node's engine-provided RNG stream.
#[derive(Debug, Default)]
struct VvNode {
    n: u32,
    vector: BTreeMap<u32, u64>,
    merges: u64,
}

impl Node for VvNode {
    type Msg = Gossip;

    fn on_start(&mut self, ctx: &mut Context<'_, Gossip>) {
        let me = ctx.id().0;
        self.vector.insert(me, 1);
        ctx.set_timer(SimDuration::from_millis(10 + u64::from(me)), 0);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, Gossip>, _from: NodeId, msg: Gossip) {
        for (k, v) in msg.vector {
            let e = self.vector.entry(k).or_insert(0);
            if v > *e {
                *e = v;
                self.merges += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Gossip>, _timer: TimerId, _tag: u64) {
        let me = ctx.id().0;
        *self.vector.entry(me).or_insert(0) += 1;
        let msg = Gossip { vector: self.vector.clone() };
        ctx.send(NodeId((me + 1) % self.n), msg.clone());
        let peer = {
            use rand::Rng;
            ctx.rng().gen_range(0..self.n)
        };
        if peer != me {
            ctx.send(NodeId(peer), msg);
        }
        ctx.set_timer(SimDuration::from_millis(25), 0);
    }
}

/// Telemetry JSON, per-node `(vector, merges)` state, events processed.
type RunResult = (String, Vec<(BTreeMap<u32, u64>, u64)>, u64);

/// Runs the chaos cocktail and returns the run's observable outcome.
fn run(shards: usize, parallel: bool) -> RunResult {
    let n = 12u32;
    let mut sim = Simulation::new(
        NetworkModel {
            latency: simnet::LatencyModel::Uniform {
                min: SimDuration::from_millis(2),
                max: SimDuration::from_millis(15),
            },
            drop_prob: 0.03,
            ..NetworkModel::default()
        },
        0xD15C0,
    );
    sim.set_shards(shards);
    for _ in 0..n {
        sim.add_node(VvNode { n, ..Default::default() });
    }

    // Chaos: a crash with cold restart, a hard partition that heals, two
    // Byzantine nodes (a mis-summarizing liar and a colluder), gray links,
    // duplication + reordering on the wire, and a disk-corruption strike.
    sim.schedule_crash(SimTime::from_micros(400 * 1_000), NodeId(3));
    sim.schedule_restart(SimTime::from_micros(900 * 1_000), NodeId(3), RestartMode::ColdDurable);
    sim.schedule_partition(
        SimTime::from_micros(500 * 1_000),
        Some(Partition::split_at(n as usize, 6)),
    );
    sim.schedule_partition(SimTime::from_micros(1_500 * 1_000), None);
    sim.schedule_liar(
        SimTime::from_micros(100 * 1_000),
        NodeId(7),
        Some(LiarBehavior { mode: LiarMode::MisSummarize, prob: 0.4 }),
    );
    sim.schedule_colluder(SimTime::from_micros(100 * 1_000), NodeId(7), true);
    sim.schedule_colluder(SimTime::from_micros(100 * 1_000), NodeId(8), true);
    sim.schedule_gray(
        SimTime::from_micros(600 * 1_000),
        NodeId(5),
        Some(simnet::GrayProfile::severe()),
    );
    sim.schedule_gray(SimTime::from_micros(1_200 * 1_000), NodeId(5), None);
    sim.schedule_dup_prob(SimTime::from_micros(200 * 1_000), 0.08);
    sim.schedule_reorder(SimTime::from_micros(200 * 1_000), 0.15, SimDuration::from_millis(4));
    sim.schedule_corruption(
        SimTime::from_micros(700 * 1_000),
        NodeId(2),
        simnet::CorruptionOp::DiskBytes { flips: 3 },
        99,
    );

    if parallel {
        sim.run_until_parallel(SimTime::from_secs(3));
    } else {
        sim.run_until(SimTime::from_secs(3));
    }

    let telemetry = sim.drain_telemetry().to_json();
    let states = (0..n)
        .map(|i| {
            let node = sim.node(NodeId(i));
            (node.vector.clone(), node.merges)
        })
        .collect();
    (telemetry, states, sim.events_processed())
}

#[test]
fn telemetry_is_byte_identical_across_shard_counts() {
    let one = run(1, false);
    let two = run(2, false);
    let four = run(4, false);
    assert_eq!(one.2, two.2, "event counts diverged (1 vs 2 shards)");
    assert_eq!(one.2, four.2, "event counts diverged (1 vs 4 shards)");
    assert_eq!(one.1, two.1, "node states diverged (1 vs 2 shards)");
    assert_eq!(one.1, four.1, "node states diverged (1 vs 4 shards)");
    assert_eq!(one.0, two.0, "telemetry diverged (1 vs 2 shards)");
    assert_eq!(one.0, four.0, "telemetry diverged (1 vs 4 shards)");
}

#[test]
fn parallel_matches_sequential_at_four_shards() {
    let seq = run(4, false);
    let par = run(4, true);
    assert_eq!(seq.2, par.2, "event counts diverged under threads");
    assert_eq!(seq.1, par.1, "node states diverged under threads");
    assert_eq!(seq.0, par.0, "telemetry diverged under threads");
}

#[test]
fn rerun_is_deterministic() {
    assert_eq!(run(4, false), run(4, false));
}
