//! Chaos-engine integration tests: FaultPlan expansion, gray degradation,
//! duplication windows, and deterministic replay of whole chaos runs.

use simnet::{
    ChurnSpec, Context, FaultPlan, GrayProfile, GraySpec, LinkCutSpec, MessageChaosSpec,
    NetworkModel, Node, NodeId, Partition, PartitionSpec, SimDuration, SimTime, Simulation,
    TimerId,
};

/// Every node pings a random neighbour once a second and counts echoes.
struct Chatter {
    n: u32,
    sent: u64,
    received: u64,
    trace: Vec<(u64, NodeId)>,
}

impl Chatter {
    fn new(n: u32) -> Self {
        Chatter { n, sent: 0, received: 0, trace: Vec::new() }
    }
}

#[derive(Clone)]
enum Msg {
    Ping,
    Pong,
}

impl simnet::Payload for Msg {
    fn wire_size(&self) -> usize {
        16
    }
}

impl Node for Chatter {
    type Msg = Msg;
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.set_timer(SimDuration::from_millis(500), 1);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        self.trace.push((ctx.now().since(SimTime::ZERO).as_micros(), from));
        match msg {
            Msg::Ping => ctx.send(from, Msg::Pong),
            Msg::Pong => self.received += 1,
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _t: TimerId, _tag: u64) {
        let target = rand::Rng::gen_range(ctx.rng(), 0..self.n);
        if NodeId(target) != ctx.id() {
            self.sent += 1;
            ctx.send(NodeId(target), Msg::Ping);
        }
        ctx.set_timer(SimDuration::from_secs(1), 1);
    }
}

fn build(n: u32, net: NetworkModel, seed: u64) -> Simulation<Chatter> {
    let mut sim = Simulation::new(net, seed);
    for _ in 0..n {
        sim.add_node(Chatter::new(n));
    }
    sim
}

fn stress_plan(n: u32) -> FaultPlan {
    FaultPlan {
        salt: 7,
        churn: vec![ChurnSpec {
            nodes: (1..n / 2).map(NodeId).collect(),
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(90),
            mean_up_secs: 25.0,
            mean_down_secs: 8.0,
            recover_at_end: true,
        }],
        gray: vec![GraySpec {
            nodes: (n / 2..n / 2 + n / 5).map(NodeId).collect(),
            start: SimTime::from_secs(20),
            end: Some(SimTime::from_secs(70)),
            profile: GrayProfile::brownout(),
        }],
        link_cuts: vec![LinkCutSpec {
            from: NodeId(0),
            to: NodeId(1),
            start: SimTime::from_secs(30),
            end: Some(SimTime::from_secs(60)),
        }],
        partitions: vec![PartitionSpec {
            partition: Partition::split_at(n as usize, n as usize / 2),
            start: SimTime::from_secs(40),
            heal: SimTime::from_secs(55),
        }],
        message_chaos: vec![MessageChaosSpec {
            start: SimTime::from_secs(15),
            end: Some(SimTime::from_secs(80)),
            dup_prob: 0.05,
            reorder_prob: 0.10,
            reorder_jitter: SimDuration::from_millis(250),
        }],
    }
}

#[test]
fn fault_plan_replays_bit_for_bit() {
    let run = |seed: u64| {
        let mut sim = build(40, NetworkModel::wan((0..40).map(|i| i / 10).collect(), 0.01), seed);
        sim.apply_fault_plan(&stress_plan(40));
        sim.run_until(SimTime::from_secs(120));
        let traces: Vec<_> = sim.iter().map(|(_, n)| n.trace.clone()).collect();
        (traces, sim.fault_counters(), sim.total_counters())
    };
    assert_eq!(run(11), run(11), "same seed + same plan must replay identically");
    assert_ne!(run(11).0, run(12).0, "different seeds must diverge");
}

#[test]
fn churn_plan_crashes_and_recovers_nodes() {
    let mut sim = build(30, NetworkModel::default(), 3);
    let plan = FaultPlan {
        churn: vec![ChurnSpec {
            nodes: (1..30).map(NodeId).collect(),
            start: SimTime::from_secs(5),
            end: SimTime::from_secs(60),
            mean_up_secs: 15.0,
            mean_down_secs: 5.0,
            recover_at_end: true,
        }],
        ..FaultPlan::default()
    };
    assert_eq!(plan.churned_nodes().len(), 29);
    sim.apply_fault_plan(&plan);
    sim.run_until(SimTime::from_secs(80));
    let faults = sim.fault_counters();
    assert!(faults.crashes > 0, "churn produced no crashes");
    assert_eq!(faults.crashes, faults.recoveries, "recover_at_end balances the books");
    for i in 0..30 {
        assert!(!sim.is_down(NodeId(i)), "node {i} left down after the plan ended");
    }
}

#[test]
fn gray_node_still_gossips_slow_is_not_dead() {
    let mut sim = build(20, NetworkModel::ideal(SimDuration::from_millis(10)), 5);
    let gray = NodeId(7);
    sim.apply_fault_plan(&FaultPlan {
        gray: vec![GraySpec {
            nodes: vec![gray],
            start: SimTime::from_secs(10),
            end: None,
            profile: GrayProfile {
                extra_latency: SimDuration::from_millis(400),
                extra_drop: 0.2,
                send_throttle: 0.5,
            },
        }],
        ..FaultPlan::default()
    });
    sim.run_until(SimTime::from_secs(10));
    let (sent_before, recv_before) = {
        let n = sim.node(gray);
        (n.sent, n.trace.len())
    };
    sim.run_until(SimTime::from_secs(120));
    let n = sim.node(gray);
    assert!(!sim.is_down(gray), "gray is degradation, not a crash");
    assert!(n.sent > sent_before, "gray node kept initiating pings");
    assert!(n.trace.len() > recv_before, "gray node kept receiving (slowly)");
    let faults = sim.fault_counters();
    assert!(faults.drops_gray_send > 0, "throttle never fired");
    assert!(faults.drops_gray_recv > 0, "receiver-side gray loss never fired");
}

#[test]
fn duplication_window_inflates_deliveries() {
    let mut sim = build(20, NetworkModel::ideal(SimDuration::from_millis(10)), 6);
    sim.apply_fault_plan(&FaultPlan {
        message_chaos: vec![MessageChaosSpec {
            start: SimTime::ZERO,
            end: Some(SimTime::from_secs(60)),
            dup_prob: 0.25,
            reorder_prob: 0.0,
            reorder_jitter: SimDuration::ZERO,
        }],
        ..FaultPlan::default()
    });
    sim.run_until(SimTime::from_secs(60));
    let faults = sim.fault_counters();
    let totals = sim.total_counters();
    assert!(faults.msgs_duplicated > 0, "no duplicates in a 25% window");
    assert_eq!(
        totals.msgs_recv,
        totals.msgs_sent + faults.msgs_duplicated,
        "every copy (original or duplicate) is delivered on a lossless net"
    );
}

#[test]
fn asymmetric_cut_blocks_one_direction() {
    let mut sim = build(2, NetworkModel::ideal(SimDuration::from_millis(5)), 8);
    sim.apply_fault_plan(&FaultPlan {
        link_cuts: vec![LinkCutSpec {
            from: NodeId(0),
            to: NodeId(1),
            start: SimTime::ZERO,
            end: None,
        }],
        ..FaultPlan::default()
    });
    sim.run_until(SimTime::from_secs(60));
    // Node 1's pings reach node 0, but node 0 can never answer (or ping).
    assert!(!sim.node(NodeId(0)).trace.is_empty(), "reverse direction flows");
    assert!(sim.node(NodeId(1)).trace.is_empty(), "cut direction is dark");
    assert!(sim.fault_counters().drops_link_cut > 0);
}
