//! Chaos-engine integration tests: FaultPlan expansion, gray degradation,
//! duplication windows, and deterministic replay of whole chaos runs.

use simnet::{
    ChurnSpec, Context, FaultPlan, GrayProfile, GraySpec, LinkCutSpec, MessageChaosSpec,
    NetworkModel, Node, NodeId, Partition, PartitionSpec, RestartMode, SimDuration, SimTime,
    Simulation, TimerId,
};

/// Every node pings a random neighbour once a second and counts echoes.
struct Chatter {
    n: u32,
    sent: u64,
    received: u64,
    trace: Vec<(u64, NodeId)>,
}

impl Chatter {
    fn new(n: u32) -> Self {
        Chatter { n, sent: 0, received: 0, trace: Vec::new() }
    }
}

#[derive(Clone)]
enum Msg {
    Ping,
    Pong,
}

impl simnet::Payload for Msg {
    fn wire_size(&self) -> usize {
        16
    }
}

impl Node for Chatter {
    type Msg = Msg;
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.set_timer(SimDuration::from_millis(500), 1);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        self.trace.push((ctx.now().since(SimTime::ZERO).as_micros(), from));
        match msg {
            Msg::Ping => ctx.send(from, Msg::Pong),
            Msg::Pong => self.received += 1,
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _t: TimerId, _tag: u64) {
        let target = rand::Rng::gen_range(ctx.rng(), 0..self.n);
        if NodeId(target) != ctx.id() {
            self.sent += 1;
            ctx.send(NodeId(target), Msg::Ping);
        }
        ctx.set_timer(SimDuration::from_secs(1), 1);
    }
}

fn build(n: u32, net: NetworkModel, seed: u64) -> Simulation<Chatter> {
    let mut sim = Simulation::new(net, seed);
    for _ in 0..n {
        sim.add_node(Chatter::new(n));
    }
    sim
}

fn stress_plan(n: u32) -> FaultPlan {
    FaultPlan {
        salt: 7,
        churn: vec![ChurnSpec {
            nodes: (1..n / 2).map(NodeId).collect(),
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(90),
            mean_up_secs: 25.0,
            mean_down_secs: 8.0,
            recover_at_end: true,
            restart: RestartMode::Freeze,
        }],
        gray: vec![GraySpec {
            nodes: (n / 2..n / 2 + n / 5).map(NodeId).collect(),
            start: SimTime::from_secs(20),
            end: Some(SimTime::from_secs(70)),
            profile: GrayProfile::brownout(),
        }],
        link_cuts: vec![LinkCutSpec {
            from: NodeId(0),
            to: NodeId(1),
            start: SimTime::from_secs(30),
            end: Some(SimTime::from_secs(60)),
        }],
        partitions: vec![PartitionSpec {
            partition: Partition::split_at(n as usize, n as usize / 2),
            start: SimTime::from_secs(40),
            heal: SimTime::from_secs(55),
        }],
        message_chaos: vec![MessageChaosSpec {
            start: SimTime::from_secs(15),
            end: Some(SimTime::from_secs(80)),
            dup_prob: 0.05,
            reorder_prob: 0.10,
            reorder_jitter: SimDuration::from_millis(250),
        }],
        ..FaultPlan::default()
    }
}

#[test]
fn fault_plan_replays_bit_for_bit() {
    let run = |seed: u64| {
        let mut sim = build(40, NetworkModel::wan((0..40).map(|i| i / 10).collect(), 0.01), seed);
        sim.apply_fault_plan(&stress_plan(40));
        sim.run_until(SimTime::from_secs(120));
        let traces: Vec<_> = sim.iter().map(|(_, n)| n.trace.clone()).collect();
        (traces, sim.fault_counters(), sim.total_counters())
    };
    assert_eq!(run(11), run(11), "same seed + same plan must replay identically");
    assert_ne!(run(11).0, run(12).0, "different seeds must diverge");
}

#[test]
fn churn_plan_crashes_and_recovers_nodes() {
    let mut sim = build(30, NetworkModel::default(), 3);
    let plan = FaultPlan {
        churn: vec![ChurnSpec {
            nodes: (1..30).map(NodeId).collect(),
            start: SimTime::from_secs(5),
            end: SimTime::from_secs(60),
            mean_up_secs: 15.0,
            mean_down_secs: 5.0,
            recover_at_end: true,
            restart: RestartMode::Freeze,
        }],
        ..FaultPlan::default()
    };
    assert_eq!(plan.churned_nodes().len(), 29);
    sim.apply_fault_plan(&plan);
    sim.run_until(SimTime::from_secs(80));
    let faults = sim.fault_counters();
    assert!(faults.crashes > 0, "churn produced no crashes");
    assert_eq!(faults.crashes, faults.recoveries, "recover_at_end balances the books");
    for i in 0..30 {
        assert!(!sim.is_down(NodeId(i)), "node {i} left down after the plan ended");
    }
}

#[test]
fn gray_node_still_gossips_slow_is_not_dead() {
    let mut sim = build(20, NetworkModel::ideal(SimDuration::from_millis(10)), 5);
    let gray = NodeId(7);
    sim.apply_fault_plan(&FaultPlan {
        gray: vec![GraySpec {
            nodes: vec![gray],
            start: SimTime::from_secs(10),
            end: None,
            profile: GrayProfile {
                extra_latency: SimDuration::from_millis(400),
                extra_drop: 0.2,
                send_throttle: 0.5,
            },
        }],
        ..FaultPlan::default()
    });
    sim.run_until(SimTime::from_secs(10));
    let (sent_before, recv_before) = {
        let n = sim.node(gray);
        (n.sent, n.trace.len())
    };
    sim.run_until(SimTime::from_secs(120));
    let n = sim.node(gray);
    assert!(!sim.is_down(gray), "gray is degradation, not a crash");
    assert!(n.sent > sent_before, "gray node kept initiating pings");
    assert!(n.trace.len() > recv_before, "gray node kept receiving (slowly)");
    let faults = sim.fault_counters();
    assert!(faults.drops_gray_send > 0, "throttle never fired");
    assert!(faults.drops_gray_recv > 0, "receiver-side gray loss never fired");
}

#[test]
fn duplication_window_inflates_deliveries() {
    let mut sim = build(20, NetworkModel::ideal(SimDuration::from_millis(10)), 6);
    sim.apply_fault_plan(&FaultPlan {
        message_chaos: vec![MessageChaosSpec {
            start: SimTime::ZERO,
            end: Some(SimTime::from_secs(60)),
            dup_prob: 0.25,
            reorder_prob: 0.0,
            reorder_jitter: SimDuration::ZERO,
        }],
        ..FaultPlan::default()
    });
    sim.run_until(SimTime::from_secs(60));
    let faults = sim.fault_counters();
    let totals = sim.total_counters();
    assert!(faults.msgs_duplicated > 0, "no duplicates in a 25% window");
    assert_eq!(
        totals.msgs_recv,
        totals.msgs_sent + faults.msgs_duplicated,
        "every copy (original or duplicate) is delivered on a lossless net"
    );
}

/// Writes a durable marker at start and records, for every restart, the mode
/// the engine delivered and whether the marker was still on disk.
struct Probe {
    restarts: Vec<(RestartMode, bool)>,
}

impl Node for Probe {
    type Msg = ();
    fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
        ctx.disk().write("boot", b"installed".to_vec());
        ctx.disk().fsync();
        ctx.disk().write("scratch", b"unsynced".to_vec());
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _m: ()) {}
    fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _t: TimerId, _tag: u64) {}
    fn on_restart(&mut self, ctx: &mut Context<'_, ()>, mode: RestartMode) {
        let has_boot = ctx.disk().read("boot").is_some();
        self.restarts.push((mode, has_boot));
    }
}

/// Runs a churn plan whose down-dwell is far longer than the window, so the
/// node is (almost always) still down at `end` and `recover_at_end` does the
/// final restart. Returns node 1's recorded restarts.
fn run_recover_at_end(mode: RestartMode) -> Vec<(RestartMode, bool)> {
    let mut sim = Simulation::new(NetworkModel::default(), 21);
    for _ in 0..3 {
        sim.add_node(Probe { restarts: Vec::new() });
    }
    sim.apply_fault_plan(&FaultPlan {
        churn: vec![ChurnSpec {
            nodes: vec![NodeId(1)],
            start: SimTime::from_secs(5),
            end: SimTime::from_secs(30),
            mean_up_secs: 0.5,
            mean_down_secs: 120.0,
            recover_at_end: true,
            restart: mode,
        }],
        ..FaultPlan::default()
    });
    sim.run_until(SimTime::from_secs(40));
    assert!(!sim.is_down(NodeId(1)), "recover_at_end left the node down");
    sim.node(NodeId(1)).restarts.clone()
}

#[test]
fn recover_at_end_honors_freeze_mode() {
    let restarts = run_recover_at_end(RestartMode::Freeze);
    assert!(!restarts.is_empty(), "churn never crashed the node");
    for (mode, has_boot) in restarts {
        assert_eq!(mode, RestartMode::Freeze);
        assert!(has_boot, "freeze must leave the disk untouched");
    }
}

#[test]
fn recover_at_end_honors_cold_durable_mode() {
    let restarts = run_recover_at_end(RestartMode::ColdDurable);
    assert!(!restarts.is_empty(), "churn never crashed the node");
    for (mode, has_boot) in restarts {
        assert_eq!(mode, RestartMode::ColdDurable);
        assert!(has_boot, "cold-durable must keep fsynced state");
    }
}

#[test]
fn recover_at_end_honors_cold_amnesia_mode() {
    let restarts = run_recover_at_end(RestartMode::ColdAmnesia);
    assert!(!restarts.is_empty(), "churn never crashed the node");
    for (mode, has_boot) in restarts {
        assert_eq!(mode, RestartMode::ColdAmnesia);
        assert!(!has_boot, "amnesia must wipe the disk before on_restart");
    }
}

#[test]
fn crash_destroys_unsynced_writes_by_default() {
    let mut sim = Simulation::new(NetworkModel::default(), 17);
    let n = sim.add_node(Probe { restarts: Vec::new() });
    sim.schedule_crash(SimTime::from_secs(1), n);
    sim.schedule_restart(SimTime::from_secs(2), n, RestartMode::ColdDurable);
    sim.run_until(SimTime::from_secs(3));
    assert_eq!(sim.disk(n).read("boot"), Some(&b"installed"[..]), "fsynced data survives");
    assert_eq!(sim.disk(n).read("scratch"), None, "unsynced write lost in the crash");
    assert_eq!(sim.disk(n).total_lost(), 1);
}

#[test]
fn crash_unsynced_loss_zero_models_write_through() {
    let mut sim = Simulation::new(NetworkModel::default(), 17);
    let n = sim.add_node(Probe { restarts: Vec::new() });
    sim.set_crash_unsynced_loss(0);
    sim.schedule_crash(SimTime::from_secs(1), n);
    sim.schedule_restart(SimTime::from_secs(2), n, RestartMode::ColdDurable);
    sim.run_until(SimTime::from_secs(3));
    assert_eq!(sim.disk(n).read("scratch"), Some(&b"unsynced"[..]), "k=0 loses nothing");
    assert_eq!(sim.disk(n).total_lost(), 0);
}

#[test]
fn asymmetric_cut_blocks_one_direction() {
    let mut sim = build(2, NetworkModel::ideal(SimDuration::from_millis(5)), 8);
    sim.apply_fault_plan(&FaultPlan {
        link_cuts: vec![LinkCutSpec {
            from: NodeId(0),
            to: NodeId(1),
            start: SimTime::ZERO,
            end: None,
        }],
        ..FaultPlan::default()
    });
    sim.run_until(SimTime::from_secs(60));
    // Node 1's pings reach node 0, but node 0 can never answer (or ping).
    assert!(!sim.node(NodeId(0)).trace.is_empty(), "reverse direction flows");
    assert!(sim.node(NodeId(1)).trace.is_empty(), "cut direction is dark");
    assert!(sim.fault_counters().drops_link_cut > 0);
}
