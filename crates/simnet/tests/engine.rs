//! Engine-level integration tests: larger populations, fault schedules and
//! network dynamics combined.

use simnet::{
    Context, NetworkModel, Node, NodeId, Partition, SimDuration, SimTime, Simulation, TimerId,
};

/// Every node pings a random-ish neighbour once a second and counts echoes.
struct Chatter {
    n: u32,
    sent: u64,
    echoed: u64,
    received: u64,
}

impl Chatter {
    fn new(n: u32) -> Self {
        Chatter { n, sent: 0, echoed: 0, received: 0 }
    }
}

#[derive(Clone)]
enum Msg {
    Ping,
    Pong,
}

impl simnet::Payload for Msg {
    fn wire_size(&self) -> usize {
        16
    }
}

impl Node for Chatter {
    type Msg = Msg;
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        ctx.set_timer(SimDuration::from_millis(500), 1);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Ping => {
                self.echoed += 1;
                ctx.send(from, Msg::Pong);
            }
            Msg::Pong => self.received += 1,
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _t: TimerId, _tag: u64) {
        let target = rand::Rng::gen_range(ctx.rng(), 0..self.n);
        if NodeId(target) != ctx.id() {
            self.sent += 1;
            ctx.send(NodeId(target), Msg::Ping);
        }
        ctx.set_timer(SimDuration::from_secs(1), 1);
    }
}

fn build(n: u32, net: NetworkModel, seed: u64) -> Simulation<Chatter> {
    let mut sim = Simulation::new(net, seed);
    for _ in 0..n {
        sim.add_node(Chatter::new(n));
    }
    sim
}

#[test]
fn lossless_network_conserves_messages() {
    let mut sim = build(50, NetworkModel::ideal(SimDuration::from_millis(10)), 1);
    sim.run_until(SimTime::from_secs(60));
    let (mut sent, mut echoed, mut received) = (0u64, 0u64, 0u64);
    for (_, node) in sim.iter() {
        sent += node.sent;
        echoed += node.echoed;
        received += node.received;
    }
    assert_eq!(sent, echoed, "every ping echoed");
    assert_eq!(echoed, received, "every pong received");
    let totals = sim.total_counters();
    assert_eq!(totals.msgs_sent, totals.msgs_recv);
    assert_eq!(totals.msgs_lost, 0);
}

#[test]
fn loss_rate_is_respected_globally() {
    let mut net = NetworkModel::ideal(SimDuration::from_millis(10));
    net.drop_prob = 0.2;
    let mut sim = build(50, net, 2);
    sim.run_until(SimTime::from_secs(120));
    let totals = sim.total_counters();
    let loss = totals.msgs_lost as f64 / totals.msgs_sent as f64;
    assert!((0.17..0.23).contains(&loss), "observed loss {loss}");
}

#[test]
fn partitions_toggle_dynamically() {
    let mut sim = build(40, NetworkModel::ideal(SimDuration::from_millis(10)), 3);
    // Partition the network for the middle third of the run.
    sim.schedule_partition(SimTime::from_secs(40), Some(Partition::split_at(40, 20)));
    sim.schedule_partition(SimTime::from_secs(80), None);
    sim.run_until(SimTime::from_secs(120));
    let totals = sim.total_counters();
    assert!(totals.msgs_lost > 0, "cross-cut messages were dropped");
    // Loss only happens inside the partition window: roughly half the
    // random targets cross the cut for a third of the run.
    let loss = totals.msgs_lost as f64 / totals.msgs_sent as f64;
    assert!((0.05..0.30).contains(&loss), "loss fraction {loss}");
}

#[test]
fn drop_prob_schedule_applies_mid_run() {
    let mut sim = build(30, NetworkModel::ideal(SimDuration::from_millis(5)), 4);
    sim.run_until(SimTime::from_secs(30));
    let before = sim.total_counters().msgs_lost;
    assert_eq!(before, 0);
    sim.schedule_drop_prob(SimTime::from_secs(30), 0.5);
    sim.run_until(SimTime::from_secs(60));
    assert!(sim.total_counters().msgs_lost > 0, "loss turned on mid-run");
}

#[test]
fn mass_crash_and_recovery_keeps_engine_consistent() {
    let mut sim = build(60, NetworkModel::ideal(SimDuration::from_millis(10)), 5);
    for i in 0..30u32 {
        sim.schedule_crash(SimTime::from_secs(20), NodeId(i));
        sim.schedule_recover(SimTime::from_secs(40 + u64::from(i) % 10), NodeId(i));
    }
    sim.run_until(SimTime::from_secs(100));
    for i in 0..30u32 {
        assert!(!sim.is_down(NodeId(i)), "node {i} recovered");
    }
    // Survivors kept chatting through the outage.
    let busy = sim.iter().filter(|(_, n)| n.received > 0).count();
    assert!(busy >= 55, "{busy} nodes saw traffic");
}

#[test]
fn event_counts_are_deterministic() {
    let run = |seed| {
        let mut sim = build(25, NetworkModel::default(), seed);
        sim.run_until(SimTime::from_secs(30));
        (sim.events_processed(), sim.total_counters().msgs_sent)
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}
