//! Telemetry-layer integration tests: determinism of drained exports, view
//! equivalence of the legacy counter structs, and snapshot/drain semantics.

use obs::ctr;
use simnet::{
    Context, LatencyModel, NetworkModel, Node, NodeId, Partition, Payload, SimDuration, SimTime,
    Simulation, TimerId,
};

#[derive(Debug, Clone)]
struct Ping(u32);
impl Payload for Ping {
    fn wire_size(&self) -> usize {
        12
    }
}

struct Echo;
impl Node for Echo {
    type Msg = Ping;
    fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
        ctx.set_timer(SimDuration::from_millis(50), 1);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, Ping(n): Ping) {
        if n > 0 && from != NodeId::EXTERNAL {
            ctx.send(from, Ping(n - 1));
        } else if from == NodeId::EXTERNAL {
            ctx.send(NodeId((ctx.id().0 + 1) % 4), Ping(n));
        }
    }
    fn on_timer(&mut self, _: &mut Context<'_, Ping>, _: TimerId, _: u64) {}
}

fn lossy_sim(seed: u64) -> Simulation<Echo> {
    let mut sim = Simulation::new(
        NetworkModel {
            latency: LatencyModel::Uniform {
                min: SimDuration::from_millis(1),
                max: SimDuration::from_millis(40),
            },
            drop_prob: 0.15,
            ..NetworkModel::default()
        },
        seed,
    );
    for _ in 0..4 {
        sim.add_node(Echo);
    }
    for i in 0..12u32 {
        sim.schedule_external(SimTime::from_micros(u64::from(i) * 977), NodeId(i % 4), Ping(5));
    }
    sim.schedule_crash(SimTime::from_secs(1), NodeId(2));
    sim.schedule_recover(SimTime::from_secs(2), NodeId(2));
    sim.schedule_partition(SimTime::from_secs(3), Some(Partition::split_at(4, 2)));
    sim.schedule_partition(SimTime::from_secs(4), None);
    sim
}

#[test]
fn same_seed_drains_byte_identical_telemetry() {
    let drain = |seed: u64| {
        let mut sim = lossy_sim(seed);
        sim.run_until(SimTime::from_secs(5));
        sim.drain_telemetry().to_json()
    };
    assert_eq!(drain(0xD5), drain(0xD5), "same-seed telemetry must be byte-identical");
    assert_ne!(drain(0xD5), drain(0xD6), "different seeds should diverge");
}

#[test]
fn views_match_registry() {
    let mut sim = lossy_sim(7);
    sim.run_until(SimTime::from_secs(5));
    let totals = sim.total_counters();
    let hub = sim.telemetry();
    let hub = hub.borrow();
    assert_eq!(totals.msgs_sent, hub.counter_total(ctr::MSGS_SENT));
    assert_eq!(totals.bytes_sent, hub.counter_total(ctr::BYTES_SENT));
    assert_eq!(totals.msgs_lost, hub.counter_total(ctr::MSGS_LOST));
    assert!(totals.msgs_sent > 0);
    let f = sim.fault_counters();
    assert_eq!(f.crashes, 1);
    assert_eq!(f.recoveries, 1);
    assert_eq!(f.partitions_started, 1);
    assert_eq!(f.partitions_healed, 1);
    assert_eq!(f.drops_loss, hub.global().ctr(ctr::DROPS_LOSS));
    assert!(f.drops_loss > 0, "15% loss over dozens of messages");
}

#[cfg(feature = "obs")]
#[test]
fn engine_traces_cover_faults_and_delivery() {
    use obs::kind;
    let mut sim = lossy_sim(11);
    sim.run_until(SimTime::from_secs(5));
    let t = sim.snapshot_telemetry();
    let count = |k: u8| t.events.iter().filter(|e| e.kind == k).count() as u64;
    let totals = sim.total_counters();
    let f = sim.fault_counters();
    assert_eq!(count(kind::MSG_DELIVER), totals.msgs_recv, "one trace per delivery");
    assert_eq!(count(kind::MSG_DROP), f.total_drops(), "one trace per routed drop");
    assert_eq!(count(kind::NODE_CRASH), 1);
    assert_eq!(count(kind::NODE_RECOVER), 1);
    assert_eq!(count(kind::PARTITION_START), 1);
    assert_eq!(count(kind::PARTITION_HEAL), 1);
    // Snapshot is non-destructive: counters still read through the views.
    assert_eq!(sim.total_counters().msgs_recv, totals.msgs_recv);
}

#[test]
fn drain_resets_views_and_ring() {
    let mut sim = lossy_sim(3);
    sim.run_until(SimTime::from_secs(5));
    assert!(sim.total_counters().msgs_sent > 0);
    let t = sim.drain_telemetry();
    assert!(!t.nodes.is_empty());
    assert_eq!(t.now_us, SimTime::from_secs(5).as_micros());
    assert_eq!(sim.total_counters().msgs_sent, 0, "drain resets the registry the views read");
    assert_eq!(sim.fault_counters().total_drops(), 0);
    let t2 = sim.drain_telemetry();
    assert!(t2.events.is_empty());
}

#[test]
fn trace_capacity_is_respected() {
    let mut sim = lossy_sim(13);
    sim.set_trace_capacity(8);
    sim.run_until(SimTime::from_secs(5));
    let t = sim.snapshot_telemetry();
    assert!(t.events.len() <= 8);
    if obs::ENABLED {
        assert!(t.events_dropped > 0, "a lossy run emits far more than 8 records");
    }
}
