//! Traffic accounting and summary statistics.
//!
//! The engine credits every send/receive/drop against per-node
//! [`TrafficCounters`]; experiments read them back after the run to produce
//! the load tables (e.g. experiment E2, publisher load, and E12, per-node
//! gossip cost). [`Summary`] and [`Histogram`] provide the percentile and
//! distribution reporting used throughout the benchmark harness.

use crate::time::SimDuration;

/// Per-node message and byte counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounters {
    /// Messages passed to the network by this node.
    pub msgs_sent: u64,
    /// Payload bytes passed to the network by this node.
    pub bytes_sent: u64,
    /// Messages delivered to this node.
    pub msgs_recv: u64,
    /// Payload bytes delivered to this node.
    pub bytes_recv: u64,
    /// Messages lost in the network on their way *to* this node
    /// (loss, partition, or the destination being down).
    pub msgs_lost: u64,
    /// Timer events fired at this node.
    pub timers_fired: u64,
}

impl TrafficCounters {
    /// Adds another node's counters into this one (for totals).
    pub fn merge(&mut self, other: &TrafficCounters) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_recv += other.bytes_recv;
        self.msgs_lost += other.msgs_lost;
        self.timers_fired += other.timers_fired;
    }
}

/// Simulation-wide fault-injection accounting: what the chaos layer actually
/// did to a run. One instance per [`crate::Simulation`], read back by
/// experiments to report injected-fault intensity next to delivery outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages dropped by the active partition.
    pub drops_partition: u64,
    /// Messages dropped by a directed link cut.
    pub drops_link_cut: u64,
    /// Messages dropped by the global drop probability.
    pub drops_loss: u64,
    /// Messages dropped by a gray sender (throttle or extra loss).
    pub drops_gray_send: u64,
    /// Messages dropped by a gray receiver's extra loss.
    pub drops_gray_recv: u64,
    /// Extra in-flight copies created by duplication.
    pub msgs_duplicated: u64,
    /// Messages whose delay was inflated by reordering jitter.
    pub msgs_jittered: u64,
    /// Crash events applied to live nodes.
    pub crashes: u64,
    /// Recover events applied to down nodes.
    pub recoveries: u64,
    /// Partition changes applied with a concrete group assignment.
    pub partitions_started: u64,
    /// Partition changes that removed the active assignment (heals).
    pub partitions_healed: u64,
    /// Adversarial state-corruption strikes executed against live nodes.
    pub state_corruptions: u64,
    /// Outbound messages tampered with or dropped by liar interception.
    pub liar_intercepts: u64,
    /// Corruption strikes executed by members of a collusion group
    /// (counted in addition to `state_corruptions`).
    pub collusion_strikes: u64,
    /// Liar intercepts executed by members of a collusion group (these do
    /// *not* also count into `liar_intercepts`; the two partition the total).
    pub collusion_intercepts: u64,
    /// Forged news items fabricated into node state by `ForgeItems` strikes.
    pub forged_items_injected: u64,
    /// Stolen-key strikes executed by `StolenKey` corruption (validly
    /// signed forgeries; counted in addition to `state_corruptions`).
    pub key_compromise_strikes: u64,
    /// Fabricated identities injected by `SybilFlood` strikes.
    pub sybil_joins_attempted: u64,
}

impl FaultCounters {
    /// Total messages dropped by the network for any cause.
    pub fn total_drops(&self) -> u64 {
        self.drops_partition
            + self.drops_link_cut
            + self.drops_loss
            + self.drops_gray_send
            + self.drops_gray_recv
    }

    /// Adds another run's counters into this one (for sweep totals).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.drops_partition += other.drops_partition;
        self.drops_link_cut += other.drops_link_cut;
        self.drops_loss += other.drops_loss;
        self.drops_gray_send += other.drops_gray_send;
        self.drops_gray_recv += other.drops_gray_recv;
        self.msgs_duplicated += other.msgs_duplicated;
        self.msgs_jittered += other.msgs_jittered;
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.partitions_started += other.partitions_started;
        self.partitions_healed += other.partitions_healed;
        self.state_corruptions += other.state_corruptions;
        self.liar_intercepts += other.liar_intercepts;
        self.collusion_strikes += other.collusion_strikes;
        self.collusion_intercepts += other.collusion_intercepts;
        self.forged_items_injected += other.forged_items_injected;
        self.key_compromise_strikes += other.key_compromise_strikes;
        self.sybil_joins_attempted += other.sybil_joins_attempted;
    }
}

/// An exact-percentile summary built from raw `f64` samples.
///
/// Stores all samples (experiments here produce at most a few million), sorts
/// lazily on first query, and then answers arbitrary quantiles exactly.
///
/// ```
/// let mut s = simnet::Summary::new();
/// for v in [3.0, 1.0, 2.0] { s.record(v); }
/// assert_eq!(s.quantile(0.5), 2.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN; a NaN sample would poison every quantile.
    pub fn record(&mut self, v: f64) {
        assert!(!v.is_nan(), "cannot record NaN sample");
        self.samples.push(v);
        self.sorted = false;
    }

    /// Records a simulated duration, in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
    }

    /// The exact `q`-quantile (0 ≤ q ≤ 1) using nearest-rank interpolation.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        assert!(!self.samples.is_empty(), "quantile of empty summary");
        self.ensure_sorted();
        let n = self.samples.len();
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.samples[lo]
        } else {
            let w = pos - lo as f64;
            self.samples[lo] * (1.0 - w) + self.samples[hi] * w
        }
    }

    /// Arithmetic mean of the samples.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.samples.is_empty(), "mean of empty summary");
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Largest sample.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty.
    pub fn max(&mut self) -> f64 {
        self.quantile(1.0)
    }

    /// Smallest sample.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty.
    pub fn min(&mut self) -> f64 {
        self.quantile(0.0)
    }

    /// Borrow of the raw samples (unsorted unless a quantile was queried).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// A fixed-bucket histogram over `[lo, hi)` with uniform bucket width.
///
/// Used to show *distributions* (e.g. the bimodal delivery-ratio histogram of
/// experiment E8) rather than single quantiles.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `n` equal-width buckets.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `n == 0`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(n > 0, "histogram needs at least one bucket");
        Histogram { lo, hi, buckets: vec![0; n], underflow: 0, overflow: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((v - self.lo) / (self.hi - self.lo) * self.buckets.len() as f64) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Bucket counts, lowest bucket first.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// `(bucket_low, bucket_high, count)` triples for display.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + w * i as f64, self.lo + w * (i + 1) as f64, c))
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge() {
        let mut a = TrafficCounters { msgs_sent: 1, bytes_sent: 10, ..Default::default() };
        let b = TrafficCounters { msgs_sent: 2, msgs_recv: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.msgs_sent, 3);
        assert_eq!(a.msgs_recv, 5);
        assert_eq!(a.bytes_sent, 10);
    }

    #[test]
    fn summary_quantiles_exact() {
        let mut s: Summary = (1..=100).map(|i| i as f64).collect();
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert!((s.quantile(0.5) - 50.5).abs() < 1e-9);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn summary_interpolates() {
        let mut s: Summary = [0.0, 10.0].into_iter().collect();
        assert!((s.quantile(0.25) - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_empty_quantile_panics() {
        Summary::new().quantile(0.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn summary_rejects_nan() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for v in [0.0, 0.1, 0.3, 0.6, 0.99, -0.5, 1.0, 2.0] {
            h.record(v);
        }
        assert_eq!(h.buckets(), &[2, 1, 1, 1]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn histogram_iter_ranges() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(1.5);
        let triples: Vec<_> = h.iter().collect();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[1], (1.0, 2.0, 1));
    }
}
