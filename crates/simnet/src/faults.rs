//! Declarative, seeded fault injection — the chaos engine.
//!
//! A [`FaultPlan`] describes *processes* of failure rather than individual
//! events: Poisson churn (crash/recover with configurable mean up/down dwell
//! times), gray brownouts over node sets, directed link cuts, and
//! network-wide duplication/reordering windows. Applying a plan expands it
//! into concrete engine events using randomness forked from the simulation's
//! master seed (mixed with the plan's `salt`), so the same `(seed, plan)`
//! pair always produces the same schedule — chaos runs are replayable
//! bit-for-bit.
//!
//! ```
//! use simnet::*;
//!
//! struct Quiet;
//! impl Node for Quiet {
//!     type Msg = ();
//!     fn on_start(&mut self, _ctx: &mut Context<'_, ()>) {}
//!     fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _m: ()) {}
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _t: TimerId, _tag: u64) {}
//! }
//!
//! let mut sim = Simulation::new(NetworkModel::default(), 42);
//! for _ in 0..8 { sim.add_node(Quiet); }
//! let plan = FaultPlan {
//!     churn: vec![ChurnSpec {
//!         nodes: (1..8).map(NodeId).collect(),
//!         start: SimTime::from_secs(10),
//!         end: SimTime::from_secs(60),
//!         mean_up_secs: 20.0,
//!         mean_down_secs: 5.0,
//!         recover_at_end: true,
//!         restart: RestartMode::Freeze,
//!     }],
//!     ..FaultPlan::default()
//! };
//! sim.apply_fault_plan(&plan);
//! sim.run_until(SimTime::from_secs(70));
//! assert!((0..8).all(|i| !sim.is_down(NodeId(i))), "plan recovers everyone");
//! ```

use std::collections::BTreeSet;

use rand::Rng;

use crate::disk::RestartMode;
use crate::node::{CorruptionOp, LiarBehavior, LiarMode, Node, NodeId};
use crate::rng::{exp_sample, fork};
use crate::sim::Simulation;
use crate::time::{SimDuration, SimTime};
use crate::topology::{GrayProfile, Partition};

/// Stream tag mixed into the master seed for plan expansion, so the plan's
/// randomness never collides with node or network streams.
const PLAN_STREAM: u64 = 0xFA01_7A57_FA01_7A57;

/// A Poisson churn process over a set of nodes: each node independently
/// alternates exponential up-dwells and down-dwells within `[start, end)`.
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    /// Nodes subjected to churn.
    pub nodes: Vec<NodeId>,
    /// When the process starts.
    pub start: SimTime,
    /// When the process stops scheduling new transitions.
    pub end: SimTime,
    /// Mean time a node stays up before its next crash, in seconds.
    pub mean_up_secs: f64,
    /// Mean time a node stays down before recovering, in seconds.
    pub mean_down_secs: f64,
    /// Recover any node still down at `end` (so post-churn liveness checks
    /// see every churned node back up).
    pub recover_at_end: bool,
    /// What each recovery in this process restores: `Freeze` (legacy —
    /// volatile state survives), `ColdDurable` (rebuild from disk), or
    /// `ColdAmnesia` (rejoin from nothing). Applies to every recovery the
    /// process schedules, including the `recover_at_end` one.
    pub restart: RestartMode,
}

/// A gray brownout: the nodes degrade (but stay alive) for a window.
#[derive(Debug, Clone)]
pub struct GraySpec {
    /// Nodes degraded gray.
    pub nodes: Vec<NodeId>,
    /// When the brownout begins.
    pub start: SimTime,
    /// When it heals; `None` leaves the nodes gray forever.
    pub end: Option<SimTime>,
    /// The degradation applied.
    pub profile: GrayProfile,
}

/// A directed link cut for a window: `from → to` drops, `to → from` flows.
#[derive(Debug, Clone)]
pub struct LinkCutSpec {
    /// Sending side of the cut direction.
    pub from: NodeId,
    /// Receiving side of the cut direction.
    pub to: NodeId,
    /// When the cut begins.
    pub start: SimTime,
    /// When it heals; `None` leaves the link cut forever.
    pub end: Option<SimTime>,
}

/// A scheduled network partition with a heal point: the groups stop hearing
/// each other at `start` and the network is whole again at `heal`.
///
/// Unlike churn, a partition crashes nobody — both sides keep running, so
/// nodes on either side remain "continuously live" for the delivery oracle.
/// What the window creates is *divergence*: items published on one side
/// during `[start, heal)` are invisible to the other until anti-entropy
/// reconciliation closes the holes after the heal.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// The group assignment applied at `start`.
    pub partition: Partition,
    /// When the partition begins.
    pub start: SimTime,
    /// When the network heals (the partition is removed).
    pub heal: SimTime,
}

/// A window of network-wide message duplication and reordering.
#[derive(Debug, Clone)]
pub struct MessageChaosSpec {
    /// When the knobs engage.
    pub start: SimTime,
    /// When they reset to zero; `None` leaves them on forever.
    pub end: Option<SimTime>,
    /// Duplication probability during the window.
    pub dup_prob: f64,
    /// Reordering probability during the window.
    pub reorder_prob: f64,
    /// Maximum reordering jitter during the window.
    pub reorder_jitter: SimDuration,
}

/// A Poisson process of adversarial state-corruption strikes over a set of
/// nodes: within `[start, end)`, each node is struck at exponentially
/// distributed intervals, each strike applying `op` to its live state (or
/// its disk, for [`CorruptionOp::DiskBytes`]). Every strike carries its own
/// seed drawn from the plan-expansion stream, so the schedule *and* the
/// damage replay bit-for-bit for a given `(seed, plan)` pair.
#[derive(Debug, Clone)]
pub struct CorruptionSpec {
    /// Nodes subjected to corruption strikes.
    pub nodes: Vec<NodeId>,
    /// When the corruption window opens.
    pub start: SimTime,
    /// When it closes (no strikes at or after this time).
    pub end: SimTime,
    /// Mean seconds between strikes against one node.
    pub mean_interval_secs: f64,
    /// What each strike does.
    pub op: CorruptionOp,
}

/// The shared script a colluding group executes (see [`CollusionSpec`]).
/// Every member runs the *same* script with *jointly chosen* fabricated
/// values, which is what distinguishes collusion from independent
/// corruption: an unsigned neighborhood vote can be captured only when the
/// liars agree with each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollusionScript {
    /// Jointly vote the consensus epoch upward: every member repeatedly
    /// asserts the same fabricated log epoch for `publisher` (drawn once
    /// per spec from the plan stream) and advertises it, so the group forms
    /// a leaf-zone majority behind a history that never happened.
    EpochCapture {
        /// Raw id of the publisher whose epoch the group captures.
        publisher: u16,
    },
    /// Coordinated `SelectiveDrop` along a publisher→subscriber routing
    /// path: every member silently drops the outbound payload traffic it
    /// was trusted to forward, for the whole window.
    RoutePartition,
    /// Split-brain lying: each member tells different peers different
    /// stories about its anti-entropy digests (inflated to one half of the
    /// destination space, stale to the other).
    SplitBrain,
}

impl CollusionScript {
    /// Stable lowercase name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            CollusionScript::EpochCapture { .. } => "epoch_capture",
            CollusionScript::RoutePartition => "route_partition",
            CollusionScript::SplitBrain => "split_brain",
        }
    }
}

/// A seeded group of nodes bound to a shared Byzantine script for a window.
/// Strike cadence (for episodic scripts like
/// [`CollusionScript::EpochCapture`]) is Poisson per member; behavioral
/// scripts install liar behaviors for the window. The group membership is
/// marked in the engine so its strikes and intercepts are tallied as
/// *collusion* (not independent corruption) and harnesses can sweep the
/// colluding fraction.
#[derive(Debug, Clone)]
pub struct CollusionSpec {
    /// The colluding members.
    pub nodes: Vec<NodeId>,
    /// When the script starts.
    pub start: SimTime,
    /// When it stops.
    pub end: SimTime,
    /// Mean seconds between strikes against one member (episodic scripts).
    pub mean_interval_secs: f64,
    /// What the group jointly does.
    pub script: CollusionScript,
}

/// A Poisson process of item-forgery strikes: each strike fabricates
/// `items_per_strike` forged payload items (invented content under bogus
/// signatures, impersonating `publisher`) directly into the victim's own
/// state, where repair and anti-entropy traffic will offer them to honest
/// peers. Expands to [`CorruptionOp::ForgeItems`] strikes.
#[derive(Debug, Clone)]
pub struct ForgeSpec {
    /// Nodes that fabricate forged items.
    pub nodes: Vec<NodeId>,
    /// When the forgery window opens.
    pub start: SimTime,
    /// When it closes.
    pub end: SimTime,
    /// Mean seconds between strikes against one node.
    pub mean_interval_secs: f64,
    /// Forged items fabricated per strike.
    pub items_per_strike: u32,
    /// Raw id of the publisher being impersonated.
    pub publisher: u16,
}

/// A key-compromise window: the adversary holds `publisher`'s *real*
/// signing key (exfiltrated from the trust registry) and, at Poisson
/// intervals within `[start, end)`, strikes the listed nodes with
/// [`CorruptionOp::StolenKey`] — fabricating validly-signed forged items
/// and a bogus epoch attestation that verify correctly until the
/// key-epoch is revoked. Expands exactly like [`ForgeSpec`], so the
/// schedule replays bit-for-bit for a given `(seed, plan)` pair.
#[derive(Debug, Clone)]
pub struct KeyCompromiseSpec {
    /// Nodes the adversary operates from during the window.
    pub nodes: Vec<NodeId>,
    /// When the key is stolen (first possible strike).
    pub start: SimTime,
    /// When the window closes (no strikes at or after this time).
    pub end: SimTime,
    /// Mean seconds between strikes against one node.
    pub mean_interval_secs: f64,
    /// Forged (validly signed) items fabricated per strike.
    pub items_per_strike: u32,
    /// How far above the signed authority each bogus attestation claims.
    pub attest_bump: u32,
    /// Raw id of the publisher whose key the adversary holds.
    pub publisher: u16,
}

/// A Sybil burst: within `[start, end)`, the listed nodes are struck at
/// Poisson intervals with [`CorruptionOp::SybilFlood`], each strike
/// injecting `identities_per_strike` fabricated member identities into the
/// striker's own leaf-zone table — where gossip, join, and reconcile
/// peer-selection paths will encounter them. All Sybils in one spec vote
/// the same fabricated epoch (drawn once from the plan stream, like
/// [`CollusionScript::EpochCapture`]'s joint vote).
#[derive(Debug, Clone)]
pub struct SybilSpec {
    /// Nodes that fabricate identities.
    pub nodes: Vec<NodeId>,
    /// When the burst starts.
    pub start: SimTime,
    /// When it stops.
    pub end: SimTime,
    /// Mean seconds between strikes against one node.
    pub mean_interval_secs: f64,
    /// Fabricated identities injected per strike.
    pub identities_per_strike: u32,
    /// Raw id of the publisher whose epoch the Sybils jointly vote.
    pub publisher: u16,
}

/// A liar window: the nodes run their outbound traffic through the
/// protocol's `tamper_outbound` interceptor for the duration.
#[derive(Debug, Clone)]
pub struct LiarSpec {
    /// Nodes that lie.
    pub nodes: Vec<NodeId>,
    /// When the lying starts.
    pub start: SimTime,
    /// When it stops; `None` leaves the behavior installed forever.
    pub end: Option<SimTime>,
    /// What the lie does and how often.
    pub behavior: LiarBehavior,
}

/// A declarative, seeded schedule of faults.
///
/// Build one with struct-update syntax over [`FaultPlan::default`], then
/// apply it with [`Simulation::apply_fault_plan`] *before* running past the
/// earliest `start` in the plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Extra entropy mixed into the expansion stream, so two plans applied
    /// to the same simulation draw independent schedules.
    pub salt: u64,
    /// Churn processes.
    pub churn: Vec<ChurnSpec>,
    /// Gray brownouts.
    pub gray: Vec<GraySpec>,
    /// Directed link cuts.
    pub link_cuts: Vec<LinkCutSpec>,
    /// Scheduled partition/heal windows.
    pub partitions: Vec<PartitionSpec>,
    /// Duplication/reordering windows.
    pub message_chaos: Vec<MessageChaosSpec>,
    /// Adversarial state-corruption processes.
    pub corruption: Vec<CorruptionSpec>,
    /// Liar windows.
    pub liars: Vec<LiarSpec>,
    /// Colluding-group scripts.
    pub collusion: Vec<CollusionSpec>,
    /// Item-forgery processes.
    pub forgery: Vec<ForgeSpec>,
    /// Key-compromise windows (stolen-key forgeries).
    pub key_compromise: Vec<KeyCompromiseSpec>,
    /// Sybil identity bursts.
    pub sybil: Vec<SybilSpec>,
}

impl FaultPlan {
    /// Every node any churn process may crash — the complement of the
    /// "continuously live" set the delivery-invariant oracle reasons about.
    pub fn churned_nodes(&self) -> BTreeSet<NodeId> {
        self.churn.iter().flat_map(|c| c.nodes.iter().copied()).collect()
    }

    /// Every node any brownout degrades.
    pub fn grayed_nodes(&self) -> BTreeSet<NodeId> {
        self.gray.iter().flat_map(|g| g.nodes.iter().copied()).collect()
    }

    /// Every node any corruption process may strike.
    pub fn corrupted_nodes(&self) -> BTreeSet<NodeId> {
        self.corruption.iter().flat_map(|c| c.nodes.iter().copied()).collect()
    }

    /// Every node any liar window covers.
    pub fn liar_nodes(&self) -> BTreeSet<NodeId> {
        self.liars.iter().flat_map(|l| l.nodes.iter().copied()).collect()
    }

    /// Every node any collusion script binds.
    pub fn colluding_nodes(&self) -> BTreeSet<NodeId> {
        self.collusion.iter().flat_map(|c| c.nodes.iter().copied()).collect()
    }

    /// Every node any forgery process may strike.
    pub fn forging_nodes(&self) -> BTreeSet<NodeId> {
        self.forgery.iter().flat_map(|f| f.nodes.iter().copied()).collect()
    }

    /// Every node any key-compromise window operates from.
    pub fn compromised_nodes(&self) -> BTreeSet<NodeId> {
        self.key_compromise.iter().flat_map(|k| k.nodes.iter().copied()).collect()
    }

    /// Every node any Sybil burst strikes.
    pub fn sybil_nodes(&self) -> BTreeSet<NodeId> {
        self.sybil.iter().flat_map(|s| s.nodes.iter().copied()).collect()
    }
}

impl<N: Node> Simulation<N> {
    /// Expands `plan` into concrete crash/recover/gray/link/knob events.
    ///
    /// Expansion randomness is forked from the simulation's master seed and
    /// the plan's `salt` only — it does not touch the node or network RNG
    /// streams, so applying a plan never perturbs the protocol's own
    /// randomness.
    ///
    /// # Panics
    ///
    /// Panics if any window in the plan starts in the simulated past, or if
    /// a churn spec has a non-positive mean dwell.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        let mut rng = fork(self.seed() ^ plan.salt, PLAN_STREAM);
        for spec in &plan.churn {
            let end = spec.end.since(SimTime::ZERO).as_secs_f64();
            for &node in &spec.nodes {
                let mut t = spec.start.since(SimTime::ZERO).as_secs_f64()
                    + exp_sample(&mut rng, spec.mean_up_secs);
                loop {
                    if t >= end {
                        break;
                    }
                    self.schedule_crash(at_secs(t), node);
                    let down_until = t + exp_sample(&mut rng, spec.mean_down_secs);
                    if down_until >= end {
                        if spec.recover_at_end {
                            self.schedule_restart(spec.end, node, spec.restart);
                        }
                        break;
                    }
                    self.schedule_restart(at_secs(down_until), node, spec.restart);
                    t = down_until + exp_sample(&mut rng, spec.mean_up_secs);
                }
            }
        }
        for spec in &plan.gray {
            for &node in &spec.nodes {
                self.schedule_gray(spec.start, node, Some(spec.profile));
                if let Some(end) = spec.end {
                    self.schedule_gray(end, node, None);
                }
            }
        }
        for spec in &plan.link_cuts {
            self.schedule_link_cut(spec.start, spec.from, spec.to);
            if let Some(end) = spec.end {
                self.schedule_link_heal(end, spec.from, spec.to);
            }
        }
        for spec in &plan.partitions {
            assert!(spec.start < spec.heal, "partition must heal after it starts");
            self.schedule_partition(spec.start, Some(spec.partition.clone()));
            self.schedule_partition(spec.heal, None);
        }
        for spec in &plan.message_chaos {
            self.schedule_dup_prob(spec.start, spec.dup_prob);
            self.schedule_reorder(spec.start, spec.reorder_prob, spec.reorder_jitter);
            if let Some(end) = spec.end {
                self.schedule_dup_prob(end, 0.0);
                self.schedule_reorder(end, 0.0, SimDuration::ZERO);
            }
        }
        for spec in &plan.corruption {
            assert!(
                spec.mean_interval_secs > 0.0,
                "corruption spec needs a positive mean interval"
            );
            let end = spec.end.since(SimTime::ZERO).as_secs_f64();
            for &node in &spec.nodes {
                let mut t = spec.start.since(SimTime::ZERO).as_secs_f64()
                    + exp_sample(&mut rng, spec.mean_interval_secs);
                while t < end {
                    let strike_seed: u64 = rng.gen();
                    self.schedule_corruption(at_secs(t), node, spec.op, strike_seed);
                    t += exp_sample(&mut rng, spec.mean_interval_secs);
                }
            }
        }
        for spec in &plan.liars {
            if let Some(end) = spec.end {
                assert!(spec.start < end, "liar window must end after it starts");
            }
            for &node in &spec.nodes {
                self.schedule_liar(spec.start, node, Some(spec.behavior));
                if let Some(end) = spec.end {
                    self.schedule_liar(end, node, None);
                }
            }
        }
        for spec in &plan.collusion {
            assert!(spec.start < spec.end, "collusion window must end after it starts");
            for &node in &spec.nodes {
                self.schedule_colluder(spec.start, node, true);
                self.schedule_colluder(spec.end, node, false);
            }
            match spec.script {
                CollusionScript::EpochCapture { publisher } => {
                    assert!(
                        spec.mean_interval_secs > 0.0,
                        "epoch-capture script needs a positive mean interval"
                    );
                    // The joint vote: one fabricated epoch, drawn once from
                    // the plan stream, asserted by every member. High enough
                    // that no legitimate restart history reaches it.
                    let epoch: u32 = 100 + rng.gen_range(0u32..64);
                    let op = CorruptionOp::VoteEpoch { publisher, epoch };
                    let end = spec.end.since(SimTime::ZERO).as_secs_f64();
                    for &node in &spec.nodes {
                        let mut t = spec.start.since(SimTime::ZERO).as_secs_f64()
                            + exp_sample(&mut rng, spec.mean_interval_secs);
                        while t < end {
                            let strike_seed: u64 = rng.gen();
                            self.schedule_corruption(at_secs(t), node, op, strike_seed);
                            t += exp_sample(&mut rng, spec.mean_interval_secs);
                        }
                    }
                }
                CollusionScript::RoutePartition => {
                    let behavior = LiarBehavior { mode: LiarMode::SelectiveDrop, prob: 1.0 };
                    for &node in &spec.nodes {
                        self.schedule_liar(spec.start, node, Some(behavior));
                        self.schedule_liar(spec.end, node, None);
                    }
                }
                CollusionScript::SplitBrain => {
                    let behavior = LiarBehavior { mode: LiarMode::SplitBrain, prob: 1.0 };
                    for &node in &spec.nodes {
                        self.schedule_liar(spec.start, node, Some(behavior));
                        self.schedule_liar(spec.end, node, None);
                    }
                }
            }
        }
        for spec in &plan.forgery {
            assert!(spec.mean_interval_secs > 0.0, "forge spec needs a positive mean interval");
            let op = CorruptionOp::ForgeItems {
                items: spec.items_per_strike,
                publisher: spec.publisher,
            };
            let end = spec.end.since(SimTime::ZERO).as_secs_f64();
            for &node in &spec.nodes {
                let mut t = spec.start.since(SimTime::ZERO).as_secs_f64()
                    + exp_sample(&mut rng, spec.mean_interval_secs);
                while t < end {
                    let strike_seed: u64 = rng.gen();
                    self.schedule_corruption(at_secs(t), node, op, strike_seed);
                    t += exp_sample(&mut rng, spec.mean_interval_secs);
                }
            }
        }
        for spec in &plan.key_compromise {
            assert!(
                spec.mean_interval_secs > 0.0,
                "key-compromise spec needs a positive mean interval"
            );
            let op = CorruptionOp::StolenKey {
                publisher: spec.publisher,
                items: spec.items_per_strike,
                attest_bump: spec.attest_bump,
            };
            let end = spec.end.since(SimTime::ZERO).as_secs_f64();
            for &node in &spec.nodes {
                let mut t = spec.start.since(SimTime::ZERO).as_secs_f64()
                    + exp_sample(&mut rng, spec.mean_interval_secs);
                while t < end {
                    let strike_seed: u64 = rng.gen();
                    self.schedule_corruption(at_secs(t), node, op, strike_seed);
                    t += exp_sample(&mut rng, spec.mean_interval_secs);
                }
            }
        }
        for spec in &plan.sybil {
            assert!(spec.mean_interval_secs > 0.0, "sybil spec needs a positive mean interval");
            // Like the epoch-capture joint vote: one fabricated epoch per
            // spec, drawn once from the plan stream, claimed by every Sybil.
            let epoch: u32 = 100 + rng.gen_range(0u32..64);
            let op = CorruptionOp::SybilFlood {
                identities: spec.identities_per_strike,
                publisher: spec.publisher,
                epoch,
            };
            let end = spec.end.since(SimTime::ZERO).as_secs_f64();
            for &node in &spec.nodes {
                let mut t = spec.start.since(SimTime::ZERO).as_secs_f64()
                    + exp_sample(&mut rng, spec.mean_interval_secs);
                while t < end {
                    let strike_seed: u64 = rng.gen();
                    self.schedule_corruption(at_secs(t), node, op, strike_seed);
                    t += exp_sample(&mut rng, spec.mean_interval_secs);
                }
            }
        }
    }
}

fn at_secs(secs: f64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs_f64(secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TimerId;
    use crate::node::{Context, LiarAction, LiarMode};
    use crate::topology::NetworkModel;
    use rand::rngs::SmallRng;

    struct Echo {
        seen: u32,
    }
    impl Node for Echo {
        type Msg = ();
        fn on_start(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _m: ()) {
            self.seen += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _t: TimerId, _tag: u64) {}
    }

    /// A chatty node that records exactly what the adversary did to it:
    /// every corruption draw, every tampered byte it received.
    struct Chatty {
        peer: NodeId,
        draws: Vec<u64>,
        got: Vec<u8>,
    }
    impl Node for Chatty {
        type Msg = Vec<u8>;
        fn on_start(&mut self, ctx: &mut Context<'_, Vec<u8>>) {
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Vec<u8>>, _from: NodeId, m: Vec<u8>) {
            self.got.push(m[0]);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Vec<u8>>, _t: TimerId, _tag: u64) {
            ctx.send(self.peer, vec![7]);
            ctx.set_timer(SimDuration::from_secs(1), 0);
        }
        fn apply_corruption(&mut self, op: &CorruptionOp, rng: &mut SmallRng) -> u64 {
            match op {
                CorruptionOp::ZoneRows { rows } => {
                    for _ in 0..*rows {
                        self.draws.push(rng.gen());
                    }
                    u64::from(*rows)
                }
                CorruptionOp::ForgeItems { items, .. } => {
                    for _ in 0..*items {
                        self.draws.push(rng.gen());
                    }
                    u64::from(*items)
                }
                CorruptionOp::VoteEpoch { epoch, .. } => {
                    self.draws.push(u64::from(*epoch));
                    1
                }
                CorruptionOp::StolenKey { items, .. } => {
                    for _ in 0..*items {
                        self.draws.push(rng.gen());
                    }
                    u64::from(*items)
                }
                CorruptionOp::SybilFlood { identities, epoch, .. } => {
                    for _ in 0..*identities {
                        self.draws.push(u64::from(*epoch));
                    }
                    u64::from(*identities)
                }
                _ => 0,
            }
        }
        fn tamper_outbound(
            &mut self,
            to: NodeId,
            msg: &mut Vec<u8>,
            mode: LiarMode,
            rng: &mut SmallRng,
        ) -> LiarAction {
            match mode {
                LiarMode::MisSummarize => {
                    msg[0] = rng.gen();
                    LiarAction::Tampered
                }
                LiarMode::SelectiveDrop => LiarAction::Dropped,
                LiarMode::StaleDigest => LiarAction::Pass,
                LiarMode::SplitBrain => {
                    msg[0] = if to.0.is_multiple_of(2) { 101 } else { 102 };
                    LiarAction::Tampered
                }
            }
        }
    }

    fn chatty_pair(seed: u64, plan: &FaultPlan) -> Simulation<Chatty> {
        let mut sim = Simulation::new(NetworkModel::default(), seed);
        let a = sim.add_node(Chatty { peer: NodeId(1), draws: Vec::new(), got: Vec::new() });
        let b = sim.add_node(Chatty { peer: NodeId(0), draws: Vec::new(), got: Vec::new() });
        assert_eq!((a, b), (NodeId(0), NodeId(1)));
        sim.apply_fault_plan(plan);
        sim.run_until(SimTime::from_secs(40));
        sim
    }

    #[test]
    fn corruption_spec_schedule_is_seed_deterministic() {
        let plan = FaultPlan {
            salt: 0xBAD,
            corruption: vec![CorruptionSpec {
                nodes: vec![NodeId(0), NodeId(1)],
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(30),
                mean_interval_secs: 4.0,
                op: CorruptionOp::ZoneRows { rows: 3 },
            }],
            ..FaultPlan::default()
        };
        let s1 = chatty_pair(11, &plan);
        let s2 = chatty_pair(11, &plan);
        let f1 = s1.fault_counters();
        assert!(f1.state_corruptions > 0, "the window must actually strike");
        assert_eq!(f1, s2.fault_counters(), "same seed ⇒ identical fault counters");
        for n in [NodeId(0), NodeId(1)] {
            assert_eq!(
                s1.node(n).draws,
                s2.node(n).draws,
                "same seed ⇒ identical corruption draws on {n}"
            );
        }
        assert!(!s1.node(NodeId(0)).draws.is_empty() || !s1.node(NodeId(1)).draws.is_empty());
        // A different salt draws a different schedule.
        let s3 = chatty_pair(11, &FaultPlan { salt: 0xF00D, ..plan.clone() });
        assert_ne!(
            (s1.node(NodeId(0)).draws.clone(), s1.node(NodeId(1)).draws.clone()),
            (s3.node(NodeId(0)).draws.clone(), s3.node(NodeId(1)).draws.clone()),
            "salt must re-randomize the schedule"
        );
    }

    #[test]
    fn liar_spec_windows_and_determinism() {
        let plan = FaultPlan {
            salt: 0x11A2,
            liars: vec![LiarSpec {
                nodes: vec![NodeId(0)],
                start: SimTime::from_secs(5),
                end: Some(SimTime::from_secs(20)),
                behavior: LiarBehavior { mode: LiarMode::SelectiveDrop, prob: 1.0 },
            }],
            ..FaultPlan::default()
        };
        let s1 = chatty_pair(13, &plan);
        let s2 = chatty_pair(13, &plan);
        let f1 = s1.fault_counters();
        assert!(f1.liar_intercepts > 0, "the liar must intercept inside its window");
        assert_eq!(f1, s2.fault_counters(), "same seed ⇒ identical intercepts");
        assert_eq!(s1.node(NodeId(1)).got, s2.node(NodeId(1)).got);
        // Messages sent outside the window still flow: ~39 ticks minus the
        // 15-second drop window must leave plenty delivered.
        assert!(!s1.node(NodeId(1)).got.is_empty(), "traffic outside the liar window must survive");
        // Tampering (as opposed to dropping) rewrites payloads in place.
        let tamper_plan = FaultPlan {
            salt: 0x11A2,
            liars: vec![LiarSpec {
                nodes: vec![NodeId(0)],
                start: SimTime::from_secs(5),
                end: None,
                behavior: LiarBehavior { mode: LiarMode::MisSummarize, prob: 1.0 },
            }],
            ..FaultPlan::default()
        };
        let s4 = chatty_pair(13, &tamper_plan);
        assert!(
            s4.node(NodeId(1)).got.iter().any(|&b| b != 7),
            "a mis-summarizing liar must corrupt payloads on the wire"
        );
        assert_eq!(
            s4.fault_counters().liar_intercepts,
            chatty_pair(13, &tamper_plan).fault_counters().liar_intercepts
        );
    }

    #[test]
    fn inert_adversary_layer_draws_nothing() {
        // A plan with no corruption or liars must leave the run identical
        // to one never touched by the adversary machinery at all.
        let empty = FaultPlan::default();
        let s1 = chatty_pair(17, &empty);
        let mut s2 = Simulation::new(NetworkModel::default(), 17);
        s2.add_node(Chatty { peer: NodeId(1), draws: Vec::new(), got: Vec::new() });
        s2.add_node(Chatty { peer: NodeId(0), draws: Vec::new(), got: Vec::new() });
        s2.run_until(SimTime::from_secs(40));
        assert_eq!(s1.node(NodeId(1)).got, s2.node(NodeId(1)).got);
        assert_eq!(s1.fault_counters().state_corruptions, 0);
        assert_eq!(s1.fault_counters().liar_intercepts, 0);
        assert_eq!(s1.fault_counters().collusion_strikes, 0);
        assert_eq!(s1.fault_counters().collusion_intercepts, 0);
        assert_eq!(s1.fault_counters().forged_items_injected, 0);
        assert_eq!(s1.fault_counters().key_compromise_strikes, 0);
        assert_eq!(s1.fault_counters().sybil_joins_attempted, 0);
    }

    #[test]
    fn collusion_epoch_capture_is_seed_deterministic() {
        let plan = FaultPlan {
            salt: 0xC0117,
            collusion: vec![CollusionSpec {
                nodes: vec![NodeId(0), NodeId(1)],
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(30),
                mean_interval_secs: 5.0,
                script: CollusionScript::EpochCapture { publisher: 0 },
            }],
            ..FaultPlan::default()
        };
        let s1 = chatty_pair(21, &plan);
        let s2 = chatty_pair(21, &plan);
        let f1 = s1.fault_counters();
        assert!(f1.collusion_strikes > 0, "the script must actually strike");
        assert_eq!(
            f1.state_corruptions, f1.collusion_strikes,
            "colluder strikes are also state corruptions"
        );
        assert_eq!(f1, s2.fault_counters(), "same seed ⇒ identical strike counters");
        // The vote is *joint*: both members assert the identical fabricated
        // epoch, every strike.
        let all: Vec<u64> = s1
            .node(NodeId(0))
            .draws
            .iter()
            .chain(s1.node(NodeId(1)).draws.iter())
            .copied()
            .collect();
        assert!(!all.is_empty());
        assert!(all.iter().all(|&e| e == all[0]), "colluders must vote the same epoch");
        assert!(all[0] >= 100, "the fabricated epoch sits above any legitimate history");
        assert_eq!(s1.node(NodeId(0)).draws, s2.node(NodeId(0)).draws);
        // A different salt draws a different schedule (and usually epoch).
        let s3 = chatty_pair(21, &FaultPlan { salt: 0xD00D, ..plan.clone() });
        assert_ne!(
            (s1.node(NodeId(0)).draws.clone(), s1.fault_counters().collusion_strikes),
            (s3.node(NodeId(0)).draws.clone(), s3.fault_counters().collusion_strikes),
            "salt must re-randomize the script"
        );
    }

    #[test]
    fn collusion_split_brain_lies_by_destination() {
        let plan = FaultPlan {
            salt: 0x5B,
            collusion: vec![CollusionSpec {
                nodes: vec![NodeId(0)],
                start: SimTime::from_secs(2),
                end: SimTime::from_secs(30),
                mean_interval_secs: 5.0,
                script: CollusionScript::SplitBrain,
            }],
            ..FaultPlan::default()
        };
        let s1 = chatty_pair(23, &plan);
        let f1 = s1.fault_counters();
        assert!(f1.collusion_intercepts > 0, "the colluder must intercept");
        assert_eq!(f1.liar_intercepts, 0, "colluder intercepts are tallied separately");
        // Node 1 is an odd destination: it sees the odd-half story only.
        assert!(s1.node(NodeId(1)).got.contains(&102));
        assert!(s1.node(NodeId(1)).got.iter().all(|&b| b != 101));
        assert_eq!(s1.fault_counters(), chatty_pair(23, &plan).fault_counters());
    }

    #[test]
    fn forge_spec_schedule_is_seed_deterministic() {
        let plan = FaultPlan {
            salt: 0xF06E,
            forgery: vec![ForgeSpec {
                nodes: vec![NodeId(1)],
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(35),
                mean_interval_secs: 6.0,
                items_per_strike: 2,
                publisher: 0,
            }],
            ..FaultPlan::default()
        };
        let s1 = chatty_pair(29, &plan);
        let s2 = chatty_pair(29, &plan);
        let f1 = s1.fault_counters();
        assert!(f1.forged_items_injected > 0, "forgery must actually inject");
        assert_eq!(f1.collusion_strikes, 0, "a lone forger is not a collusion");
        assert_eq!(f1, s2.fault_counters(), "same seed ⇒ identical forge counters");
        assert_eq!(s1.node(NodeId(1)).draws, s2.node(NodeId(1)).draws);
        assert_eq!(
            f1.forged_items_injected,
            s1.node(NodeId(1)).draws.len() as u64,
            "every fabricated item was drawn from the strike stream"
        );
    }

    #[test]
    fn key_compromise_spec_schedule_is_seed_deterministic() {
        let plan = FaultPlan {
            salt: 0x5701E,
            key_compromise: vec![KeyCompromiseSpec {
                nodes: vec![NodeId(1)],
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(35),
                mean_interval_secs: 6.0,
                items_per_strike: 2,
                attest_bump: 3,
                publisher: 0,
            }],
            ..FaultPlan::default()
        };
        let s1 = chatty_pair(31, &plan);
        let s2 = chatty_pair(31, &plan);
        let f1 = s1.fault_counters();
        assert!(f1.key_compromise_strikes > 0, "the stolen key must actually strike");
        assert_eq!(f1.forged_items_injected, 0, "stolen-key forgeries are tallied separately");
        assert_eq!(f1, s2.fault_counters(), "same seed ⇒ identical strike counters");
        assert_eq!(s1.node(NodeId(1)).draws, s2.node(NodeId(1)).draws);
        assert_eq!(
            s1.node(NodeId(1)).draws.len() as u64,
            f1.key_compromise_strikes * 2,
            "every strike fabricates items_per_strike items"
        );
        // A different salt draws a different schedule.
        let s3 = chatty_pair(31, &FaultPlan { salt: 0xD1FF, ..plan.clone() });
        assert_ne!(s1.node(NodeId(1)).draws, s3.node(NodeId(1)).draws);
    }

    #[test]
    fn sybil_spec_votes_one_epoch_and_replays() {
        let plan = FaultPlan {
            salt: 0x5B11,
            sybil: vec![SybilSpec {
                nodes: vec![NodeId(0), NodeId(1)],
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(30),
                mean_interval_secs: 5.0,
                identities_per_strike: 4,
                publisher: 0,
            }],
            ..FaultPlan::default()
        };
        let s1 = chatty_pair(37, &plan);
        let s2 = chatty_pair(37, &plan);
        let f1 = s1.fault_counters();
        assert!(f1.sybil_joins_attempted > 0, "the burst must actually inject");
        assert_eq!(f1, s2.fault_counters(), "same seed ⇒ identical injection counters");
        // The Sybils vote *jointly*: every fabricated identity across every
        // striker claims the identical epoch, drawn once per spec.
        let all: Vec<u64> = s1
            .node(NodeId(0))
            .draws
            .iter()
            .chain(s1.node(NodeId(1)).draws.iter())
            .copied()
            .collect();
        assert_eq!(all.len() as u64, f1.sybil_joins_attempted);
        assert!(all.iter().all(|&e| e == all[0]), "sybils must vote the same epoch");
        assert!((100..164).contains(&(all[0] as u32)));
    }

    #[test]
    fn partition_spec_starts_and_heals() {
        let mut sim = Simulation::new(NetworkModel::default(), 9);
        let a = sim.add_node(Echo { seen: 0 });
        let b = sim.add_node(Echo { seen: 0 });
        let plan = FaultPlan {
            partitions: vec![PartitionSpec {
                partition: Partition::split_at(2, 1),
                start: SimTime::from_secs(10),
                heal: SimTime::from_secs(20),
            }],
            ..FaultPlan::default()
        };
        sim.apply_fault_plan(&plan);
        sim.schedule_external(SimTime::from_secs(12), a, ());
        sim.schedule_external(SimTime::from_secs(25), b, ());
        sim.run_until(SimTime::from_secs(30));
        let f = sim.fault_counters();
        assert_eq!(f.partitions_started, 1);
        assert_eq!(f.partitions_healed, 1);
        assert_eq!(sim.node(a).seen + sim.node(b).seen, 2, "external inputs still land");
    }

    #[test]
    #[should_panic(expected = "heal after it starts")]
    fn partition_spec_rejects_inverted_window() {
        let mut sim: Simulation<Echo> = Simulation::new(NetworkModel::default(), 9);
        let plan = FaultPlan {
            partitions: vec![PartitionSpec {
                partition: Partition::split_at(2, 1),
                start: SimTime::from_secs(20),
                heal: SimTime::from_secs(10),
            }],
            ..FaultPlan::default()
        };
        sim.apply_fault_plan(&plan);
    }
}
