//! Declarative, seeded fault injection — the chaos engine.
//!
//! A [`FaultPlan`] describes *processes* of failure rather than individual
//! events: Poisson churn (crash/recover with configurable mean up/down dwell
//! times), gray brownouts over node sets, directed link cuts, and
//! network-wide duplication/reordering windows. Applying a plan expands it
//! into concrete engine events using randomness forked from the simulation's
//! master seed (mixed with the plan's `salt`), so the same `(seed, plan)`
//! pair always produces the same schedule — chaos runs are replayable
//! bit-for-bit.
//!
//! ```
//! use simnet::*;
//!
//! struct Quiet;
//! impl Node for Quiet {
//!     type Msg = ();
//!     fn on_start(&mut self, _ctx: &mut Context<'_, ()>) {}
//!     fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _m: ()) {}
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _t: TimerId, _tag: u64) {}
//! }
//!
//! let mut sim = Simulation::new(NetworkModel::default(), 42);
//! for _ in 0..8 { sim.add_node(Quiet); }
//! let plan = FaultPlan {
//!     churn: vec![ChurnSpec {
//!         nodes: (1..8).map(NodeId).collect(),
//!         start: SimTime::from_secs(10),
//!         end: SimTime::from_secs(60),
//!         mean_up_secs: 20.0,
//!         mean_down_secs: 5.0,
//!         recover_at_end: true,
//!         restart: RestartMode::Freeze,
//!     }],
//!     ..FaultPlan::default()
//! };
//! sim.apply_fault_plan(&plan);
//! sim.run_until(SimTime::from_secs(70));
//! assert!((0..8).all(|i| !sim.is_down(NodeId(i))), "plan recovers everyone");
//! ```

use std::collections::BTreeSet;

use crate::disk::RestartMode;
use crate::node::{Node, NodeId};
use crate::rng::{exp_sample, fork};
use crate::sim::Simulation;
use crate::time::{SimDuration, SimTime};
use crate::topology::{GrayProfile, Partition};

/// Stream tag mixed into the master seed for plan expansion, so the plan's
/// randomness never collides with node or network streams.
const PLAN_STREAM: u64 = 0xFA01_7A57_FA01_7A57;

/// A Poisson churn process over a set of nodes: each node independently
/// alternates exponential up-dwells and down-dwells within `[start, end)`.
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    /// Nodes subjected to churn.
    pub nodes: Vec<NodeId>,
    /// When the process starts.
    pub start: SimTime,
    /// When the process stops scheduling new transitions.
    pub end: SimTime,
    /// Mean time a node stays up before its next crash, in seconds.
    pub mean_up_secs: f64,
    /// Mean time a node stays down before recovering, in seconds.
    pub mean_down_secs: f64,
    /// Recover any node still down at `end` (so post-churn liveness checks
    /// see every churned node back up).
    pub recover_at_end: bool,
    /// What each recovery in this process restores: `Freeze` (legacy —
    /// volatile state survives), `ColdDurable` (rebuild from disk), or
    /// `ColdAmnesia` (rejoin from nothing). Applies to every recovery the
    /// process schedules, including the `recover_at_end` one.
    pub restart: RestartMode,
}

/// A gray brownout: the nodes degrade (but stay alive) for a window.
#[derive(Debug, Clone)]
pub struct GraySpec {
    /// Nodes degraded gray.
    pub nodes: Vec<NodeId>,
    /// When the brownout begins.
    pub start: SimTime,
    /// When it heals; `None` leaves the nodes gray forever.
    pub end: Option<SimTime>,
    /// The degradation applied.
    pub profile: GrayProfile,
}

/// A directed link cut for a window: `from → to` drops, `to → from` flows.
#[derive(Debug, Clone)]
pub struct LinkCutSpec {
    /// Sending side of the cut direction.
    pub from: NodeId,
    /// Receiving side of the cut direction.
    pub to: NodeId,
    /// When the cut begins.
    pub start: SimTime,
    /// When it heals; `None` leaves the link cut forever.
    pub end: Option<SimTime>,
}

/// A scheduled network partition with a heal point: the groups stop hearing
/// each other at `start` and the network is whole again at `heal`.
///
/// Unlike churn, a partition crashes nobody — both sides keep running, so
/// nodes on either side remain "continuously live" for the delivery oracle.
/// What the window creates is *divergence*: items published on one side
/// during `[start, heal)` are invisible to the other until anti-entropy
/// reconciliation closes the holes after the heal.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// The group assignment applied at `start`.
    pub partition: Partition,
    /// When the partition begins.
    pub start: SimTime,
    /// When the network heals (the partition is removed).
    pub heal: SimTime,
}

/// A window of network-wide message duplication and reordering.
#[derive(Debug, Clone)]
pub struct MessageChaosSpec {
    /// When the knobs engage.
    pub start: SimTime,
    /// When they reset to zero; `None` leaves them on forever.
    pub end: Option<SimTime>,
    /// Duplication probability during the window.
    pub dup_prob: f64,
    /// Reordering probability during the window.
    pub reorder_prob: f64,
    /// Maximum reordering jitter during the window.
    pub reorder_jitter: SimDuration,
}

/// A declarative, seeded schedule of faults.
///
/// Build one with struct-update syntax over [`FaultPlan::default`], then
/// apply it with [`Simulation::apply_fault_plan`] *before* running past the
/// earliest `start` in the plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Extra entropy mixed into the expansion stream, so two plans applied
    /// to the same simulation draw independent schedules.
    pub salt: u64,
    /// Churn processes.
    pub churn: Vec<ChurnSpec>,
    /// Gray brownouts.
    pub gray: Vec<GraySpec>,
    /// Directed link cuts.
    pub link_cuts: Vec<LinkCutSpec>,
    /// Scheduled partition/heal windows.
    pub partitions: Vec<PartitionSpec>,
    /// Duplication/reordering windows.
    pub message_chaos: Vec<MessageChaosSpec>,
}

impl FaultPlan {
    /// Every node any churn process may crash — the complement of the
    /// "continuously live" set the delivery-invariant oracle reasons about.
    pub fn churned_nodes(&self) -> BTreeSet<NodeId> {
        self.churn.iter().flat_map(|c| c.nodes.iter().copied()).collect()
    }

    /// Every node any brownout degrades.
    pub fn grayed_nodes(&self) -> BTreeSet<NodeId> {
        self.gray.iter().flat_map(|g| g.nodes.iter().copied()).collect()
    }
}

impl<N: Node> Simulation<N> {
    /// Expands `plan` into concrete crash/recover/gray/link/knob events.
    ///
    /// Expansion randomness is forked from the simulation's master seed and
    /// the plan's `salt` only — it does not touch the node or network RNG
    /// streams, so applying a plan never perturbs the protocol's own
    /// randomness.
    ///
    /// # Panics
    ///
    /// Panics if any window in the plan starts in the simulated past, or if
    /// a churn spec has a non-positive mean dwell.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        let mut rng = fork(self.seed() ^ plan.salt, PLAN_STREAM);
        for spec in &plan.churn {
            let end = spec.end.since(SimTime::ZERO).as_secs_f64();
            for &node in &spec.nodes {
                let mut t = spec.start.since(SimTime::ZERO).as_secs_f64()
                    + exp_sample(&mut rng, spec.mean_up_secs);
                loop {
                    if t >= end {
                        break;
                    }
                    self.schedule_crash(at_secs(t), node);
                    let down_until = t + exp_sample(&mut rng, spec.mean_down_secs);
                    if down_until >= end {
                        if spec.recover_at_end {
                            self.schedule_restart(spec.end, node, spec.restart);
                        }
                        break;
                    }
                    self.schedule_restart(at_secs(down_until), node, spec.restart);
                    t = down_until + exp_sample(&mut rng, spec.mean_up_secs);
                }
            }
        }
        for spec in &plan.gray {
            for &node in &spec.nodes {
                self.schedule_gray(spec.start, node, Some(spec.profile));
                if let Some(end) = spec.end {
                    self.schedule_gray(end, node, None);
                }
            }
        }
        for spec in &plan.link_cuts {
            self.schedule_link_cut(spec.start, spec.from, spec.to);
            if let Some(end) = spec.end {
                self.schedule_link_heal(end, spec.from, spec.to);
            }
        }
        for spec in &plan.partitions {
            assert!(spec.start < spec.heal, "partition must heal after it starts");
            self.schedule_partition(spec.start, Some(spec.partition.clone()));
            self.schedule_partition(spec.heal, None);
        }
        for spec in &plan.message_chaos {
            self.schedule_dup_prob(spec.start, spec.dup_prob);
            self.schedule_reorder(spec.start, spec.reorder_prob, spec.reorder_jitter);
            if let Some(end) = spec.end {
                self.schedule_dup_prob(end, 0.0);
                self.schedule_reorder(end, 0.0, SimDuration::ZERO);
            }
        }
    }
}

fn at_secs(secs: f64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs_f64(secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Context;
    use crate::node::TimerId;
    use crate::topology::NetworkModel;

    struct Echo {
        seen: u32,
    }
    impl Node for Echo {
        type Msg = ();
        fn on_start(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _m: ()) {
            self.seen += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _t: TimerId, _tag: u64) {}
    }

    #[test]
    fn partition_spec_starts_and_heals() {
        let mut sim = Simulation::new(NetworkModel::default(), 9);
        let a = sim.add_node(Echo { seen: 0 });
        let b = sim.add_node(Echo { seen: 0 });
        let plan = FaultPlan {
            partitions: vec![PartitionSpec {
                partition: Partition::split_at(2, 1),
                start: SimTime::from_secs(10),
                heal: SimTime::from_secs(20),
            }],
            ..FaultPlan::default()
        };
        sim.apply_fault_plan(&plan);
        sim.schedule_external(SimTime::from_secs(12), a, ());
        sim.schedule_external(SimTime::from_secs(25), b, ());
        sim.run_until(SimTime::from_secs(30));
        let f = sim.fault_counters();
        assert_eq!(f.partitions_started, 1);
        assert_eq!(f.partitions_healed, 1);
        assert_eq!(sim.node(a).seen + sim.node(b).seen, 2, "external inputs still land");
    }

    #[test]
    #[should_panic(expected = "heal after it starts")]
    fn partition_spec_rejects_inverted_window() {
        let mut sim: Simulation<Echo> = Simulation::new(NetworkModel::default(), 9);
        let plan = FaultPlan {
            partitions: vec![PartitionSpec {
                partition: Partition::split_at(2, 1),
                start: SimTime::from_secs(20),
                heal: SimTime::from_secs(10),
            }],
            ..FaultPlan::default()
        };
        sim.apply_fault_plan(&plan);
    }
}
