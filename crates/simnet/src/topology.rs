//! Network models: latency, loss, partitions, and chaos knobs.
//!
//! The paper's target environment is the wide-area Internet, where nodes
//! cluster into regions (the same structure Astrolabe's zone hierarchy
//! mirrors). [`LatencyModel::ZonedWan`] captures that: cheap intra-region
//! links, expensive inter-region links. Uniform and constant models support
//! unit tests and micro-benchmarks.
//!
//! Beyond clean crash/recover and a global drop probability, the model
//! supports the *gray* failure modes that actually break large pub/sub
//! deployments: per-node degradation ([`GrayProfile`]: added latency,
//! elevated loss, send throttling), per-link asymmetric cuts, and message
//! duplication/reordering. All of it is sampled from the engine's network
//! RNG, so runs stay deterministic under the master seed; every new knob
//! draws randomness only when enabled, so legacy traces are bit-for-bit
//! unchanged when the chaos features are unconfigured.

use std::collections::{HashMap, HashSet};

use rand::rngs::SmallRng;
use rand::Rng;

use crate::node::NodeId;
use crate::time::SimDuration;

/// How point-to-point message latency is sampled.
#[derive(Debug, Clone)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Minimum one-way latency.
        min: SimDuration,
        /// Maximum one-way latency.
        max: SimDuration,
    },
    /// Region-structured WAN: intra-region links draw from `intra`,
    /// inter-region links from `inter` (both uniform ranges).
    ZonedWan {
        /// Region id of every node, indexed by `NodeId`.
        region_of: Vec<u32>,
        /// Latency range for links within one region.
        intra: (SimDuration, SimDuration),
        /// Latency range for links crossing regions.
        inter: (SimDuration, SimDuration),
    },
}

impl LatencyModel {
    /// A typical WAN defaults model: 5–25 ms within a region, 40–180 ms across.
    pub fn wan_defaults(region_of: Vec<u32>) -> Self {
        LatencyModel::ZonedWan {
            region_of,
            intra: (SimDuration::from_millis(5), SimDuration::from_millis(25)),
            inter: (SimDuration::from_millis(40), SimDuration::from_millis(180)),
        }
    }

    /// The smallest latency this model can ever produce, over every node
    /// pair. This is the sharded engine's conservative lookahead: a message
    /// sent at `t` can never arrive before `t + min_latency()`, because the
    /// gray/jitter/duplication knobs only *add* delay on top of the sample.
    pub fn min_latency(&self) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, .. } => *min,
            LatencyModel::ZonedWan { intra, inter, .. } => intra.0.min(inter.0),
        }
    }

    /// Samples the one-way latency from `from` to `to`.
    pub fn sample(&self, from: NodeId, to: NodeId, rng: &mut SmallRng) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => sample_range(*min, *max, rng),
            LatencyModel::ZonedWan { region_of, intra, inter } => {
                let rf = region_of.get(from.index()).copied().unwrap_or(0);
                let rt = region_of.get(to.index()).copied().unwrap_or(0);
                let (lo, hi) = if rf == rt { *intra } else { *inter };
                sample_range(lo, hi, rng)
            }
        }
    }
}

fn sample_range(min: SimDuration, max: SimDuration, rng: &mut SmallRng) -> SimDuration {
    if min >= max {
        return min;
    }
    SimDuration::from_micros(rng.gen_range(min.as_micros()..=max.as_micros()))
}

/// A network partition: nodes are assigned to groups and messages crossing
/// groups are silently dropped, modelling a WAN cut.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    group_of: Vec<u32>,
}

impl Partition {
    /// Builds a partition from an explicit group assignment.
    pub fn new(group_of: Vec<u32>) -> Self {
        Partition { group_of }
    }

    /// Splits nodes `0..n` into two groups at `split`: `[0, split)` vs the rest.
    pub fn split_at(n: usize, split: usize) -> Self {
        Partition { group_of: (0..n).map(|i| u32::from(i >= split)).collect() }
    }

    /// True when a message from `a` to `b` crosses the cut.
    pub fn separates(&self, a: NodeId, b: NodeId) -> bool {
        let ga = self.group_of.get(a.index()).copied().unwrap_or(0);
        let gb = self.group_of.get(b.index()).copied().unwrap_or(0);
        ga != gb
    }
}

/// Per-node gray-failure degradation: the node is alive (its timers fire
/// and it processes what it receives) but slow and lossy — the failure mode
/// a crash detector misses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayProfile {
    /// Added one-way latency on every link touching the node (applied on
    /// both its sends and its receives).
    pub extra_latency: SimDuration,
    /// Additional independent drop probability on links touching the node.
    pub extra_drop: f64,
    /// Probability a send is discarded at the node's own NIC before it ever
    /// reaches the wire (models an overloaded outbound queue).
    pub send_throttle: f64,
}

impl GrayProfile {
    /// A mild brownout: +200 ms each way, 10% extra loss, 20% send throttle.
    pub fn brownout() -> Self {
        GrayProfile {
            extra_latency: SimDuration::from_millis(200),
            extra_drop: 0.10,
            send_throttle: 0.20,
        }
    }

    /// A severe degradation: +2 s each way, 40% extra loss, 60% send throttle.
    pub fn severe() -> Self {
        GrayProfile {
            extra_latency: SimDuration::from_secs(2),
            extra_drop: 0.40,
            send_throttle: 0.60,
        }
    }
}

/// Why [`NetworkModel::route`] dropped a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The active [`Partition`] separates sender and receiver.
    Partition,
    /// A per-link asymmetric cut is in force for this `(from, to)` pair.
    LinkCut,
    /// The global independent per-message drop probability fired.
    Loss,
    /// The sender's [`GrayProfile`] throttled or lost the message.
    GraySend,
    /// The receiver's [`GrayProfile`] lost the message.
    GrayRecv,
}

/// The fate of one message as decided by [`NetworkModel::route`].
#[derive(Debug, Clone, PartialEq)]
pub enum RouteOutcome {
    /// Deliver one copy per entry after the given one-way delay. More than
    /// one entry means the message was duplicated in flight; `jittered`
    /// flags that reordering jitter inflated the (first) delay.
    Deliver {
        /// One-way delay of each delivered copy (never empty).
        copies: Vec<SimDuration>,
        /// True when reordering jitter was added to the primary copy.
        jittered: bool,
    },
    /// The message is lost; the cause feeds the fault counters.
    Drop(DropCause),
}

impl RouteOutcome {
    /// Convenience for tests: the primary copy's delay, if delivered.
    pub fn delay(&self) -> Option<SimDuration> {
        match self {
            RouteOutcome::Deliver { copies, .. } => copies.first().copied(),
            RouteOutcome::Drop(_) => None,
        }
    }
}

/// The complete network model the engine consults for every send.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// Latency distribution.
    pub latency: LatencyModel,
    /// Independent per-message drop probability in `[0, 1)`.
    pub drop_prob: f64,
    /// Active partition, if any.
    pub partition: Option<Partition>,
    /// Probability a delivered message is duplicated in flight (the second
    /// copy samples its own independent latency).
    pub dup_prob: f64,
    /// Probability a delivered message gets extra reordering jitter.
    pub reorder_prob: f64,
    /// Maximum extra delay added when reordering jitter fires (uniform in
    /// `[0, reorder_jitter]`).
    pub reorder_jitter: SimDuration,
    /// Nodes currently degraded gray; consulted for both endpoints.
    pub gray: HashMap<NodeId, GrayProfile>,
    /// Directed link cuts: a `(from, to)` entry drops every message in that
    /// direction only — the asymmetric flaky-link case a symmetric
    /// [`Partition`] cannot express.
    pub cut_links: HashSet<(NodeId, NodeId)>,
}

impl NetworkModel {
    /// A lossless constant-latency network (useful for unit tests).
    pub fn ideal(latency: SimDuration) -> Self {
        NetworkModel {
            latency: LatencyModel::Constant(latency),
            drop_prob: 0.0,
            partition: None,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_jitter: SimDuration::ZERO,
            gray: HashMap::new(),
            cut_links: HashSet::new(),
        }
    }

    /// A region-structured lossy WAN.
    ///
    /// # Panics
    ///
    /// Panics if `drop_prob` is outside `[0, 1)`.
    pub fn wan(region_of: Vec<u32>, drop_prob: f64) -> Self {
        assert!((0.0..1.0).contains(&drop_prob), "drop probability out of range");
        NetworkModel {
            latency: LatencyModel::wan_defaults(region_of),
            drop_prob,
            ..NetworkModel::default()
        }
    }

    /// The conservative lookahead bound for sharded execution: no message
    /// routed through this model is ever delivered sooner than this after
    /// its send (see [`LatencyModel::min_latency`]).
    pub fn min_latency(&self) -> SimDuration {
        self.latency.min_latency()
    }

    /// Decides the fate of one message.
    ///
    /// Checks, in order: partition, directed link cuts, the sender's gray
    /// throttle, the global drop probability, gray loss at either endpoint;
    /// survivors sample a latency (inflated by gray latency at both ends),
    /// optionally pick up reordering jitter, and are optionally duplicated.
    /// Every chaos knob draws randomness only when enabled, so a model with
    /// the knobs at rest consumes exactly the RNG sequence the pre-chaos
    /// engine did.
    pub fn route(&self, from: NodeId, to: NodeId, rng: &mut SmallRng) -> RouteOutcome {
        if let Some(p) = &self.partition {
            if p.separates(from, to) {
                return RouteOutcome::Drop(DropCause::Partition);
            }
        }
        if !self.cut_links.is_empty() && self.cut_links.contains(&(from, to)) {
            return RouteOutcome::Drop(DropCause::LinkCut);
        }
        let gray_from = self.gray.get(&from).copied();
        let gray_to = self.gray.get(&to).copied();
        if let Some(g) = gray_from {
            if g.send_throttle > 0.0 && rng.gen::<f64>() < g.send_throttle {
                return RouteOutcome::Drop(DropCause::GraySend);
            }
        }
        if self.drop_prob > 0.0 && rng.gen::<f64>() < self.drop_prob {
            return RouteOutcome::Drop(DropCause::Loss);
        }
        if let Some(g) = gray_from {
            if g.extra_drop > 0.0 && rng.gen::<f64>() < g.extra_drop {
                return RouteOutcome::Drop(DropCause::GraySend);
            }
        }
        if let Some(g) = gray_to {
            if g.extra_drop > 0.0 && rng.gen::<f64>() < g.extra_drop {
                return RouteOutcome::Drop(DropCause::GrayRecv);
            }
        }
        let gray_extra = gray_from.map_or(SimDuration::ZERO, |g| g.extra_latency)
            + gray_to.map_or(SimDuration::ZERO, |g| g.extra_latency);
        let mut delay = self.latency.sample(from, to, rng) + gray_extra;
        let mut jittered = false;
        if self.reorder_prob > 0.0 && rng.gen::<f64>() < self.reorder_prob {
            delay = delay + sample_range(SimDuration::ZERO, self.reorder_jitter, rng);
            jittered = true;
        }
        let mut copies = vec![delay];
        if self.dup_prob > 0.0 && rng.gen::<f64>() < self.dup_prob {
            copies.push(self.latency.sample(from, to, rng) + gray_extra);
        }
        RouteOutcome::Deliver { copies, jittered }
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::ideal(SimDuration::from_millis(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fork;

    #[test]
    fn constant_latency() {
        let m = LatencyModel::Constant(SimDuration::from_millis(7));
        let mut rng = fork(1, 0);
        assert_eq!(m.sample(NodeId(0), NodeId(1), &mut rng), SimDuration::from_millis(7));
    }

    #[test]
    fn uniform_latency_in_range() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(5),
            max: SimDuration::from_millis(10),
        };
        let mut rng = fork(2, 0);
        for _ in 0..100 {
            let d = m.sample(NodeId(0), NodeId(1), &mut rng);
            assert!(d >= SimDuration::from_millis(5) && d <= SimDuration::from_millis(10));
        }
    }

    #[test]
    fn zoned_wan_prefers_local() {
        let m = LatencyModel::wan_defaults(vec![0, 0, 1]);
        let mut rng = fork(3, 0);
        for _ in 0..50 {
            let local = m.sample(NodeId(0), NodeId(1), &mut rng);
            let remote = m.sample(NodeId(0), NodeId(2), &mut rng);
            assert!(local <= SimDuration::from_millis(25));
            assert!(remote >= SimDuration::from_millis(40));
        }
    }

    #[test]
    fn partition_separates() {
        let p = Partition::split_at(4, 2);
        assert!(p.separates(NodeId(0), NodeId(2)));
        assert!(!p.separates(NodeId(0), NodeId(1)));
        assert!(!p.separates(NodeId(2), NodeId(3)));
    }

    #[test]
    fn route_applies_partition_and_loss() {
        let mut m = NetworkModel::ideal(SimDuration::from_millis(1));
        m.partition = Some(Partition::split_at(2, 1));
        let mut rng = fork(4, 0);
        assert_eq!(
            m.route(NodeId(0), NodeId(1), &mut rng),
            RouteOutcome::Drop(DropCause::Partition)
        );

        let mut lossy = NetworkModel::ideal(SimDuration::from_millis(1));
        lossy.drop_prob = 0.5;
        let delivered = (0..1000)
            .filter(|_| lossy.route(NodeId(0), NodeId(0), &mut rng).delay().is_some())
            .count();
        assert!((350..650).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn asymmetric_link_cut_drops_one_direction_only() {
        let mut m = NetworkModel::ideal(SimDuration::from_millis(1));
        m.cut_links.insert((NodeId(0), NodeId(1)));
        let mut rng = fork(5, 0);
        assert_eq!(m.route(NodeId(0), NodeId(1), &mut rng), RouteOutcome::Drop(DropCause::LinkCut));
        assert!(m.route(NodeId(1), NodeId(0), &mut rng).delay().is_some());
    }

    #[test]
    fn duplication_and_reordering_are_sound() {
        // Duplicated messages deliver >1 copy, each with a latency the base
        // model could have produced; jitter only ever adds delay.
        let mut m = NetworkModel::ideal(SimDuration::from_millis(10));
        m.dup_prob = 0.5;
        m.reorder_prob = 0.5;
        m.reorder_jitter = SimDuration::from_millis(30);
        let mut rng = fork(6, 0);
        let (mut dups, mut jitters) = (0u32, 0u32);
        for _ in 0..2000 {
            match m.route(NodeId(0), NodeId(1), &mut rng) {
                RouteOutcome::Deliver { copies, jittered } => {
                    assert!(!copies.is_empty() && copies.len() <= 2);
                    if copies.len() == 2 {
                        dups += 1;
                        // The duplicate copy is un-jittered base latency.
                        assert_eq!(copies[1], SimDuration::from_millis(10));
                    }
                    if jittered {
                        jitters += 1;
                        assert!(copies[0] >= SimDuration::from_millis(10));
                        assert!(copies[0] <= SimDuration::from_millis(40));
                    } else {
                        assert_eq!(copies[0], SimDuration::from_millis(10));
                    }
                }
                RouteOutcome::Drop(c) => panic!("lossless model dropped: {c:?}"),
            }
        }
        assert!((700..1300).contains(&dups), "dups {dups}");
        assert!((700..1300).contains(&jitters), "jitters {jitters}");
    }

    #[test]
    fn gray_profile_slows_and_throttles() {
        let mut m = NetworkModel::ideal(SimDuration::from_millis(10));
        m.gray.insert(
            NodeId(0),
            GrayProfile {
                extra_latency: SimDuration::from_millis(500),
                extra_drop: 0.0,
                send_throttle: 0.5,
            },
        );
        let mut rng = fork(7, 0);
        let (mut throttled, mut delivered) = (0u32, 0u32);
        for _ in 0..1000 {
            match m.route(NodeId(0), NodeId(1), &mut rng) {
                RouteOutcome::Drop(DropCause::GraySend) => throttled += 1,
                RouteOutcome::Deliver { copies, .. } => {
                    delivered += 1;
                    assert_eq!(copies[0], SimDuration::from_millis(510));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!((350..650).contains(&throttled), "throttled {throttled}");
        // The gray node still receives slowly (receiver-side latency).
        match m.route(NodeId(1), NodeId(0), &mut rng) {
            RouteOutcome::Deliver { copies, .. } => {
                assert_eq!(copies[0], SimDuration::from_millis(510));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(delivered > 0);
    }

    #[test]
    fn chaos_knobs_at_rest_preserve_legacy_rng_sequence() {
        // With every chaos knob unconfigured, the RNG draw sequence must be
        // identical to the pre-chaos model: [drop draw if enabled, latency].
        let legacy = |rng: &mut SmallRng| {
            // The historical implementation, inlined.
            let drop_prob = 0.3;
            if rng.gen::<f64>() < drop_prob {
                return None;
            }
            Some(sample_range(SimDuration::from_millis(5), SimDuration::from_millis(25), rng))
        };
        let mut m = NetworkModel::ideal(SimDuration::ZERO);
        m.drop_prob = 0.3;
        m.latency = LatencyModel::Uniform {
            min: SimDuration::from_millis(5),
            max: SimDuration::from_millis(25),
        };
        let mut a = fork(8, 0);
        let mut b = fork(8, 0);
        for _ in 0..500 {
            assert_eq!(m.route(NodeId(0), NodeId(1), &mut a).delay(), legacy(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn wan_rejects_bad_drop_prob() {
        let _ = NetworkModel::wan(vec![0], 1.5);
    }
}
