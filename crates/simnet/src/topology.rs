//! Network models: latency, loss, and partitions.
//!
//! The paper's target environment is the wide-area Internet, where nodes
//! cluster into regions (the same structure Astrolabe's zone hierarchy
//! mirrors). [`LatencyModel::ZonedWan`] captures that: cheap intra-region
//! links, expensive inter-region links. Uniform and constant models support
//! unit tests and micro-benchmarks.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::node::NodeId;
use crate::time::SimDuration;

/// How point-to-point message latency is sampled.
#[derive(Debug, Clone)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Minimum one-way latency.
        min: SimDuration,
        /// Maximum one-way latency.
        max: SimDuration,
    },
    /// Region-structured WAN: intra-region links draw from `intra`,
    /// inter-region links from `inter` (both uniform ranges).
    ZonedWan {
        /// Region id of every node, indexed by `NodeId`.
        region_of: Vec<u32>,
        /// Latency range for links within one region.
        intra: (SimDuration, SimDuration),
        /// Latency range for links crossing regions.
        inter: (SimDuration, SimDuration),
    },
}

impl LatencyModel {
    /// A typical WAN defaults model: 5–25 ms within a region, 40–180 ms across.
    pub fn wan_defaults(region_of: Vec<u32>) -> Self {
        LatencyModel::ZonedWan {
            region_of,
            intra: (SimDuration::from_millis(5), SimDuration::from_millis(25)),
            inter: (SimDuration::from_millis(40), SimDuration::from_millis(180)),
        }
    }

    /// Samples the one-way latency from `from` to `to`.
    pub fn sample(&self, from: NodeId, to: NodeId, rng: &mut SmallRng) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => sample_range(*min, *max, rng),
            LatencyModel::ZonedWan { region_of, intra, inter } => {
                let rf = region_of.get(from.index()).copied().unwrap_or(0);
                let rt = region_of.get(to.index()).copied().unwrap_or(0);
                let (lo, hi) = if rf == rt { *intra } else { *inter };
                sample_range(lo, hi, rng)
            }
        }
    }
}

fn sample_range(min: SimDuration, max: SimDuration, rng: &mut SmallRng) -> SimDuration {
    if min >= max {
        return min;
    }
    SimDuration::from_micros(rng.gen_range(min.as_micros()..=max.as_micros()))
}

/// A network partition: nodes are assigned to groups and messages crossing
/// groups are silently dropped, modelling a WAN cut.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    group_of: Vec<u32>,
}

impl Partition {
    /// Builds a partition from an explicit group assignment.
    pub fn new(group_of: Vec<u32>) -> Self {
        Partition { group_of }
    }

    /// Splits nodes `0..n` into two groups at `split`: `[0, split)` vs the rest.
    pub fn split_at(n: usize, split: usize) -> Self {
        Partition { group_of: (0..n).map(|i| u32::from(i >= split)).collect() }
    }

    /// True when a message from `a` to `b` crosses the cut.
    pub fn separates(&self, a: NodeId, b: NodeId) -> bool {
        let ga = self.group_of.get(a.index()).copied().unwrap_or(0);
        let gb = self.group_of.get(b.index()).copied().unwrap_or(0);
        ga != gb
    }
}

/// The complete network model the engine consults for every send.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// Latency distribution.
    pub latency: LatencyModel,
    /// Independent per-message drop probability in `[0, 1)`.
    pub drop_prob: f64,
    /// Active partition, if any.
    pub partition: Option<Partition>,
}

impl NetworkModel {
    /// A lossless constant-latency network (useful for unit tests).
    pub fn ideal(latency: SimDuration) -> Self {
        NetworkModel { latency: LatencyModel::Constant(latency), drop_prob: 0.0, partition: None }
    }

    /// A region-structured lossy WAN.
    ///
    /// # Panics
    ///
    /// Panics if `drop_prob` is outside `[0, 1)`.
    pub fn wan(region_of: Vec<u32>, drop_prob: f64) -> Self {
        assert!((0.0..1.0).contains(&drop_prob), "drop probability out of range");
        NetworkModel {
            latency: LatencyModel::wan_defaults(region_of),
            drop_prob,
            partition: None,
        }
    }

    /// Decides the fate of one message: `Some(latency)` to deliver after that
    /// delay, `None` to drop it.
    pub fn route(&self, from: NodeId, to: NodeId, rng: &mut SmallRng) -> Option<SimDuration> {
        if let Some(p) = &self.partition {
            if p.separates(from, to) {
                return None;
            }
        }
        if self.drop_prob > 0.0 && rng.gen::<f64>() < self.drop_prob {
            return None;
        }
        Some(self.latency.sample(from, to, rng))
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::ideal(SimDuration::from_millis(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fork;

    #[test]
    fn constant_latency() {
        let m = LatencyModel::Constant(SimDuration::from_millis(7));
        let mut rng = fork(1, 0);
        assert_eq!(m.sample(NodeId(0), NodeId(1), &mut rng), SimDuration::from_millis(7));
    }

    #[test]
    fn uniform_latency_in_range() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(5),
            max: SimDuration::from_millis(10),
        };
        let mut rng = fork(2, 0);
        for _ in 0..100 {
            let d = m.sample(NodeId(0), NodeId(1), &mut rng);
            assert!(d >= SimDuration::from_millis(5) && d <= SimDuration::from_millis(10));
        }
    }

    #[test]
    fn zoned_wan_prefers_local() {
        let m = LatencyModel::wan_defaults(vec![0, 0, 1]);
        let mut rng = fork(3, 0);
        for _ in 0..50 {
            let local = m.sample(NodeId(0), NodeId(1), &mut rng);
            let remote = m.sample(NodeId(0), NodeId(2), &mut rng);
            assert!(local <= SimDuration::from_millis(25));
            assert!(remote >= SimDuration::from_millis(40));
        }
    }

    #[test]
    fn partition_separates() {
        let p = Partition::split_at(4, 2);
        assert!(p.separates(NodeId(0), NodeId(2)));
        assert!(!p.separates(NodeId(0), NodeId(1)));
        assert!(!p.separates(NodeId(2), NodeId(3)));
    }

    #[test]
    fn route_applies_partition_and_loss() {
        let mut m = NetworkModel::ideal(SimDuration::from_millis(1));
        m.partition = Some(Partition::split_at(2, 1));
        let mut rng = fork(4, 0);
        assert!(m.route(NodeId(0), NodeId(1), &mut rng).is_none());

        let mut lossy = NetworkModel::ideal(SimDuration::from_millis(1));
        lossy.drop_prob = 0.5;
        let delivered = (0..1000)
            .filter(|_| lossy.route(NodeId(0), NodeId(0), &mut rng).is_some())
            .count();
        assert!((350..650).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn wan_rejects_bad_drop_prob() {
        let _ = NetworkModel::wan(vec![0], 1.5);
    }
}
