//! Deterministic randomness.
//!
//! Every source of randomness in a simulation is a [`rand::rngs::SmallRng`]
//! forked from a single master seed with [`fork`]. Forking mixes the master
//! seed with a *stream* identifier through SplitMix64, so per-node and
//! per-subsystem generators are statistically independent yet fully
//! reproducible: the same `(seed, stream)` pair always yields the same
//! generator.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One round of the SplitMix64 output function.
///
/// Used both to mix seeds and as a cheap stateless hash in tests.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Forks a deterministic generator for `stream` out of `seed`.
///
/// ```
/// use rand::Rng;
/// let mut a = simnet::fork(42, 1);
/// let mut b = simnet::fork(42, 1);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn fork(seed: u64, stream: u64) -> SmallRng {
    let mixed = splitmix64(seed ^ splitmix64(stream));
    SmallRng::seed_from_u64(mixed)
}

/// Samples an exponential inter-arrival time with the given mean, in seconds.
///
/// Clamped away from zero so callers can use it directly as a timer delay.
///
/// # Panics
///
/// Panics if `mean_secs` is not positive and finite.
pub fn exp_sample(rng: &mut SmallRng, mean_secs: f64) -> f64 {
    use rand::Rng;
    assert!(mean_secs.is_finite() && mean_secs > 0.0, "mean must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (-u.ln() * mean_secs).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fork_is_deterministic() {
        let xs: Vec<u64> = fork(7, 3).sample_iter(rand::distributions::Standard).take(8).collect();
        let ys: Vec<u64> = fork(7, 3).sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn streams_differ() {
        let a: u64 = fork(7, 1).gen();
        let b: u64 = fork(7, 2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let a: u64 = fork(1, 9).gen();
        let b: u64 = fork(2, 9).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_avalanche() {
        // Flipping one input bit should change roughly half the output bits.
        let x = 0xDEAD_BEEF_u64;
        let d = (splitmix64(x) ^ splitmix64(x ^ 1)).count_ones();
        assert!((16..=48).contains(&d), "weak diffusion: {d} bits");
    }

    #[test]
    fn exp_sample_mean_roughly_correct() {
        let mut rng = fork(11, 0);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exp_sample(&mut rng, 2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exp_sample_rejects_bad_mean() {
        let mut rng = fork(0, 0);
        exp_sample(&mut rng, 0.0);
    }
}
