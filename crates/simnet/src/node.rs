//! Node identity and the application callback interface.

use std::fmt;

use rand::rngs::SmallRng;

use crate::disk::{Disk, RestartMode};
use crate::time::{SimDuration, SimTime};

/// Dense identifier of a simulated node (index into the node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// A pseudo-sender for messages injected from outside the simulation
    /// (experiment harnesses, attack generators).
    pub const EXTERNAL: NodeId = NodeId(u32::MAX);

    /// The node-table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == NodeId::EXTERNAL {
            write!(f, "n(ext)")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Handle of a pending timer, returned by [`Context::set_timer`] and
/// accepted by [`Context::cancel_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// One flavor of adversarial state corruption the fault engine can inflict
/// on a node (see `CorruptionSpec`). The engine handles [`CorruptionOp::DiskBytes`]
/// itself (it owns the disks); the in-memory flavors are dispatched to the
/// protocol through [`Node::apply_corruption`], so the engine stays generic
/// over what a node's state looks like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionOp {
    /// Scramble live membership/aggregation state: subscription summary
    /// attributes in the node's own MIB row plus up to `rows` held zone-table
    /// rows (stamps preserved, so gossip's stamp-diff repair is blind to it).
    ZoneRows {
        /// Held rows to scramble.
        rows: u32,
    },
    /// Corrupt a sequenced log: bump its epoch past the legitimate one and
    /// insert `entries` phantom entries (state the node never actually saw).
    LogEpoch {
        /// Phantom entries to insert.
        entries: u32,
    },
    /// Flip `flips` random bits across the node's fsynced disk records
    /// (torn state — complements the crash model's *lost* state).
    DiskBytes {
        /// Bits to flip.
        flips: u32,
    },
    /// Fabricate `items` forged payload items (bogus content under invented
    /// or tampered signatures) directly into the node's own state, where
    /// anti-entropy and repair traffic will offer them to honest peers.
    /// `publisher` is the raw id of the authority being impersonated.
    ForgeItems {
        /// Forged items to fabricate per strike.
        items: u32,
        /// Raw id of the publisher being impersonated.
        publisher: u16,
    },
    /// Assert a jointly-fabricated log epoch for `publisher` and advertise
    /// it: the collusion script's vote. Every colluding member asserts the
    /// *same* `epoch`, so an unsigned neighborhood mode can be captured by
    /// a majority while signed authority cannot.
    VoteEpoch {
        /// Raw id of the publisher whose history is being rewritten.
        publisher: u16,
        /// The fabricated epoch the group jointly claims.
        epoch: u32,
    },
    /// Sign forgeries with a *stolen real key*: the adversary holds
    /// `publisher`'s current signing key (exfiltrated from the trust
    /// registry) and fabricates `items` items plus a bogus epoch
    /// attestation bumped `attest_bump` above the signed authority — all
    /// of which verify correctly until the key-epoch is revoked.
    StolenKey {
        /// Raw id of the publisher whose key the adversary holds.
        publisher: u16,
        /// Forged (validly signed) items fabricated per strike.
        items: u32,
        /// How far above the current authority the bogus attestation
        /// claims.
        attest_bump: u32,
    },
    /// Inject `identities` fabricated member identities into the node's own
    /// leaf-zone table, where gossip will spread them: the Sybil burst.
    /// Each fake row votes the fabricated `epoch` for `publisher`.
    SybilFlood {
        /// Fabricated identities injected per strike.
        identities: u32,
        /// Raw id of the publisher whose epoch the Sybils vote.
        publisher: u16,
        /// The fabricated epoch the Sybils jointly claim.
        epoch: u32,
    },
}

impl CorruptionOp {
    /// Stable discriminant for traces.
    pub fn discriminant(self) -> u64 {
        match self {
            CorruptionOp::ZoneRows { .. } => 1,
            CorruptionOp::LogEpoch { .. } => 2,
            CorruptionOp::DiskBytes { .. } => 3,
            CorruptionOp::ForgeItems { .. } => 4,
            CorruptionOp::VoteEpoch { .. } => 5,
            CorruptionOp::StolenKey { .. } => 6,
            CorruptionOp::SybilFlood { .. } => 7,
        }
    }

    /// Stable lowercase name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            CorruptionOp::ZoneRows { .. } => "zone_rows",
            CorruptionOp::LogEpoch { .. } => "log_epoch",
            CorruptionOp::DiskBytes { .. } => "disk_bytes",
            CorruptionOp::ForgeItems { .. } => "forge_items",
            CorruptionOp::VoteEpoch { .. } => "vote_epoch",
            CorruptionOp::StolenKey { .. } => "stolen_key",
            CorruptionOp::SybilFlood { .. } => "sybil_flood",
        }
    }
}

/// What a lying node does to its own outbound traffic (see `LiarSpec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiarMode {
    /// Mis-aggregate: rewrite subscription summaries (Bloom bits, category
    /// masks) in outbound gossip rows to wrong values.
    MisSummarize,
    /// Selectively drop outbound payload messages by subject.
    SelectiveDrop,
    /// Re-advertise stale anti-entropy digests (claim to know nothing).
    StaleDigest,
    /// Split-brain lying: tell *different* stories to different peers —
    /// inflated anti-entropy digests to one half of the destination space,
    /// stale ones to the other — so no single observer sees a
    /// contradiction, only the neighborhood in aggregate does.
    SplitBrain,
}

impl LiarMode {
    /// Stable lowercase name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            LiarMode::MisSummarize => "mis_summarize",
            LiarMode::SelectiveDrop => "selective_drop",
            LiarMode::StaleDigest => "stale_digest",
            LiarMode::SplitBrain => "split_brain",
        }
    }
}

/// A liar assignment: the mode plus the per-message probability that an
/// outbound message is intercepted while the behavior is installed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiarBehavior {
    /// What the lie does.
    pub mode: LiarMode,
    /// Probability an outbound message is run through the interceptor.
    pub prob: f64,
}

/// Outcome of a liar intercept, reported by [`Node::tamper_outbound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiarAction {
    /// The message was not touched (the lie does not apply to it).
    Pass,
    /// The message was modified in place and should still be routed.
    Tampered,
    /// The message must be silently dropped.
    Dropped,
}

/// Messages must report their wire size so the engine can account bandwidth.
///
/// Implementations should return the approximate serialized size; the engine
/// never serializes messages (they move by ownership), but experiments E2 and
/// E12 report byte loads from these figures.
pub trait Payload {
    /// Approximate serialized size of this message, in bytes.
    fn wire_size(&self) -> usize;

    /// Size after the delta/compression accounting model, in bytes.
    ///
    /// Defaults to [`Payload::wire_size`]; message types that can ship a
    /// payload as a delta against receiver-held state (see the newswire
    /// delta protocol) override this to report the smaller figure. The
    /// engine tallies it into the `bytes_wire` counter only when
    /// [`delta_mode`](crate::delta_mode) is on, so deltas-off runs stay
    /// byte-identical.
    fn compressed_wire_size(&self) -> usize {
        self.wire_size()
    }
}

impl Payload for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl Payload for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

/// The callback interface a simulated protocol implements.
///
/// One value of the implementing type exists per node; the engine invokes the
/// callbacks with a [`Context`] through which the node reads the clock, sends
/// messages, and manages timers. All callbacks run on simulated time — they
/// must not block or use wall-clock time.
pub trait Node {
    /// The message type exchanged between nodes of this protocol. `Clone`
    /// lets the network duplicate messages in flight (chaos injection).
    type Msg: Payload + Clone;

    /// Invoked once when the simulation starts (or the node is spawned).
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Invoked when a message addressed to this node arrives.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Invoked when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: TimerId, tag: u64);

    /// Invoked when the engine crashes this node. Default: do nothing.
    ///
    /// While down the node receives no messages or timers; timers that
    /// expire during the outage are lost. What the node gets back at
    /// recovery is decided by the [`RestartMode`] of the recovery event, not
    /// here: the in-memory value always survives in the engine's node table,
    /// but under a cold restart [`Node::on_restart`] is responsible for
    /// discarding it. The engine applies the disk failure model (losing the
    /// newest unsynced writes) immediately after this hook returns.
    fn on_crash(&mut self) {}

    /// Invoked when the engine recovers this node under the legacy
    /// "process freeze" model ([`RestartMode::Freeze`]): all volatile state
    /// survived the outage. Default: do nothing.
    ///
    /// Protocols that support cold restarts should override
    /// [`Node::on_restart`] instead, which receives the restart mode and can
    /// reach stable storage through [`Context::disk`]; its default delegates
    /// `Freeze` recoveries here.
    fn on_recover(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Invoked when the engine recovers this node, with the restart mode the
    /// recovery was scheduled under (see
    /// [`Simulation::schedule_restart`](crate::Simulation::schedule_restart)
    /// and `ChurnSpec::restart`).
    ///
    /// The contract per mode:
    ///
    /// - [`RestartMode::Freeze`] — volatile state survived; resume.
    /// - [`RestartMode::ColdDurable`] — the process died: the node must
    ///   discard all volatile state and rebuild from [`Context::disk`],
    ///   which holds everything fsynced before the crash (minus the
    ///   configured number of lost unsynced writes).
    /// - [`RestartMode::ColdAmnesia`] — the machine died: the engine has
    ///   already wiped the disk; the node must discard everything and
    ///   rejoin as if newly installed.
    ///
    /// The default delegates to [`Node::on_recover`] for *every* mode, which
    /// preserves the legacy freeze semantics for nodes that predate cold
    /// restarts; override this to honor the cold modes.
    fn on_restart(&mut self, ctx: &mut Context<'_, Self::Msg>, mode: RestartMode) {
        let _ = mode;
        self.on_recover(ctx);
    }

    /// Invoked when a scheduled in-memory corruption strike hits this node
    /// (see `CorruptionSpec`). The implementation scrambles its own live
    /// state as `op` directs, drawing any randomness it needs from `rng`
    /// (a stream private to the strike — never the node's protocol RNG).
    /// Returns how many units (rows, entries) were actually corrupted.
    ///
    /// The default ignores the strike: protocols that predate the
    /// adversarial fault layer are simply immune.
    fn apply_corruption(&mut self, op: &CorruptionOp, rng: &mut SmallRng) -> u64 {
        let _ = (op, rng);
        0
    }

    /// Invoked for each outbound message selected for interception while a
    /// liar behavior is installed on this node (see `LiarSpec`). The
    /// implementation may rewrite `msg` in place ([`LiarAction::Tampered`]),
    /// ask for it to be silently dropped ([`LiarAction::Dropped`]), or leave
    /// it alone ([`LiarAction::Pass`]). `rng` is the engine's dedicated liar
    /// stream.
    ///
    /// The default never lies.
    fn tamper_outbound(
        &mut self,
        to: NodeId,
        msg: &mut Self::Msg,
        mode: LiarMode,
        rng: &mut SmallRng,
    ) -> LiarAction {
        let _ = (to, msg, mode, rng);
        LiarAction::Pass
    }
}

/// One message or timer the node asked the engine to schedule.
#[derive(Debug)]
pub(crate) enum Effect<M> {
    Send { to: NodeId, msg: M },
    SetTimer { id: TimerId, delay: SimDuration, tag: u64 },
    CancelTimer { id: TimerId },
}

/// The node's window onto the engine during a callback.
///
/// Collects requested effects; the engine applies them (sampling latencies,
/// scheduling events) after the callback returns, which keeps the borrow
/// structure simple and the event order deterministic.
pub struct Context<'a, M> {
    pub(crate) id: NodeId,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) effects: &'a mut Vec<Effect<M>>,
    pub(crate) next_timer: &'a mut u64,
    pub(crate) disk: &'a mut Disk,
}

impl<M> fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context").field("id", &self.id).field("now", &self.now).finish()
    }
}

impl<M> Context<'_, M> {
    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's private deterministic random generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// This node's simulated stable storage. Writes are volatile until
    /// [`Disk::fsync`]; a crash loses the newest unsynced writes (see
    /// [`Simulation::set_crash_unsynced_loss`](crate::Simulation::set_crash_unsynced_loss)).
    pub fn disk(&mut self) -> &mut Disk {
        self.disk
    }

    /// Sends `msg` to `to`. Delivery latency, loss and partitions are applied
    /// by the engine's [`NetworkModel`](crate::NetworkModel).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Schedules a timer to fire after `delay`, carrying an opaque `tag` the
    /// node uses to tell its timers apart.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        *self.next_timer += 1;
        let id = TimerId(*self.next_timer);
        self.effects.push(Effect::SetTimer { id, delay, tag });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown timer
    /// is a silent no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer { id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId::EXTERNAL.to_string(), "n(ext)");
    }

    #[test]
    fn node_id_index_roundtrip() {
        assert_eq!(NodeId::from(9u32).index(), 9);
    }

    #[test]
    fn payload_impls() {
        assert_eq!(().wire_size(), 0);
        assert_eq!(vec![0u8; 17].wire_size(), 17);
    }
}
