//! The calendar-queue event scheduler.
//!
//! The engine's old scheduler was one `BinaryHeap` over full event values:
//! every push and pop sifted ~100-byte payloads through `O(log n)` heap
//! levels, which goes cache-cold once the queue holds hundreds of thousands
//! of in-flight events. This module replaces it with a two-tier calendar
//! queue over compact 32-byte index entries:
//!
//! * **Event bodies live in a slab** (`Vec` + free list) and never move
//!   while queued; the ordering structures shuffle only `(time, a, b, idx)`
//!   entries.
//! * **Near-future events** (within ~4 simulated seconds) hash into a ring
//!   of 4096 one-millisecond buckets — insertion is O(1) `Vec::push`.
//! * **The current bucket** is kept as a small binary heap, so pops follow
//!   the exact `(time, a, b)` total order the engine's determinism contract
//!   requires. A bucket only pays `O(k log k)` for the `k` events that
//!   actually share its millisecond.
//! * **Far-future events** (beyond the ring's horizon) wait in an overflow
//!   heap and are re-filed into the ring when their epoch arrives — each
//!   entry is touched at most once more, so inserts stay O(1) amortized.
//!
//! The ordering key is `(time, a, b)`: the legacy engine uses
//! `a = 0, b = global sequence` (bit-identical to the historical
//! `(time, seq)` heap order), while the sharded engine uses the
//! shard-count-invariant keys described in `sim.rs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the bucket width: 1024 µs ≈ 1 ms per bucket.
const SHIFT: u32 = 10;
/// Number of buckets in the ring (power of two).
const NBUCKETS: usize = 4096;
const MASK: u64 = (NBUCKETS as u64) - 1;
/// Simulated time covered by one full ring rotation, µs (~4.2 s).
const SPAN: u64 = (NBUCKETS as u64) << SHIFT;

/// A queued entry: the full ordering key plus the slab index of the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    t: u64,
    a: u64,
    b: u64,
    idx: u32,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.t, self.a, self.b).cmp(&(other.t, other.a, other.b))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-priority event queue keyed by `(t_us, a, b)`, with
/// event bodies of type `T` parked in a slab until their entry pops.
///
/// Exported so the micro-benchmarks can measure it head-to-head against a
/// plain `BinaryHeap`; protocol code should drive [`crate::Simulation`]
/// instead of using this directly.
#[derive(Debug)]
pub struct EventQueue<T> {
    slab: Vec<Option<T>>,
    free: Vec<u32>,
    /// The bucket ring; `buckets[i]` holds unsorted entries whose time maps
    /// to slot `i` of the current epoch window.
    buckets: Vec<Vec<Entry>>,
    /// The bucket the cursor is parked on, heapified so pops follow the
    /// exact key order. Late insertions that land at or behind the cursor
    /// also go here, which keeps every bucket strictly ahead of the heap.
    cur: BinaryHeap<Reverse<Entry>>,
    cur_bucket: usize,
    /// Exclusive end (µs) of the epoch window the ring currently covers;
    /// always SPAN-aligned.
    epoch_end: u64,
    /// Entries at or beyond `epoch_end`, waiting to be re-filed.
    far: BinaryHeap<Reverse<Entry>>,
    /// Entries currently in the ring (buckets + cur).
    ring_live: usize,
    len: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slab: Vec::new(),
            free: Vec::new(),
            buckets: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            cur: BinaryHeap::new(),
            cur_bucket: 0,
            epoch_end: SPAN,
            far: BinaryHeap::new(),
            ring_live: 0,
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are queued (test/diagnostic convenience).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, body: T) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.slab[idx as usize] = Some(body);
            idx
        } else {
            let idx = self.slab.len() as u32;
            self.slab.push(Some(body));
            idx
        }
    }

    /// Inserts an event. `t_us` must not be earlier than the last popped
    /// entry's time (the engine never schedules into the past).
    pub fn push(&mut self, t_us: u64, a: u64, b: u64, body: T) {
        let idx = self.alloc(body);
        let e = Entry { t: t_us, a, b, idx };
        self.len += 1;
        if t_us >= self.epoch_end {
            self.far.push(Reverse(e));
            return;
        }
        self.ring_live += 1;
        // Absolute end (exclusive) of the bucket the cursor is parked on.
        // The comparison must be on *time*, not the mod-SPAN bucket index:
        // when an idle queue's window has jumped ahead to a far-future
        // epoch, a new entry can be earlier than the whole window, and its
        // mod-SPAN index would silently file it into a future slot where
        // it pops a full rotation late.
        let cursor_end = self.epoch_end - SPAN + (((self.cur_bucket as u64) + 1) << SHIFT);
        if t_us < cursor_end {
            // At or behind the cursor (e.g. a zero-delay timer scheduled
            // while the cursor already sits on a later bucket, or a
            // cross-shard arrival behind a jumped window): the heap absorbs
            // it so nothing is ever parked behind the cursor.
            self.cur.push(Reverse(e));
        } else {
            let bi = ((t_us >> SHIFT) & MASK) as usize;
            self.buckets[bi].push(e);
        }
    }

    /// Moves every far-heap entry whose time now falls inside the epoch
    /// window into its ring bucket.
    fn refill_from_far(&mut self) {
        while let Some(Reverse(e)) = self.far.peek() {
            if e.t >= self.epoch_end {
                break;
            }
            let Reverse(e) = self.far.pop().unwrap();
            let bi = ((e.t >> SHIFT) & MASK) as usize;
            self.ring_live += 1;
            if bi < self.cur_bucket {
                self.cur.push(Reverse(e));
            } else {
                self.buckets[bi].push(e);
            }
        }
    }

    /// Parks the cursor on the bucket holding the earliest entry, with that
    /// bucket heapified into `cur`. No-op when `cur` is already non-empty.
    fn advance(&mut self) {
        while self.cur.is_empty() && self.len > 0 {
            if self.ring_live == 0 {
                // Ring empty: jump the window straight to the far heap's
                // earliest epoch instead of rotating through empty buckets.
                let t = self.far.peek().expect("len > 0 but both tiers empty").0.t;
                self.epoch_end = (t / SPAN + 1) * SPAN;
                self.cur_bucket = ((t >> SHIFT) & MASK) as usize;
                self.refill_from_far();
            } else {
                self.cur_bucket += 1;
                if self.cur_bucket == NBUCKETS {
                    self.cur_bucket = 0;
                    self.epoch_end += SPAN;
                    self.refill_from_far();
                }
            }
            let drained = std::mem::take(&mut self.buckets[self.cur_bucket]);
            self.cur.extend(drained.into_iter().map(Reverse));
        }
    }

    /// Time of the earliest queued event (advances the internal cursor, but
    /// never pops).
    pub fn peek_time(&mut self) -> Option<u64> {
        self.advance();
        self.cur.peek().map(|Reverse(e)| e.t)
    }

    /// Full `(t, a, b)` key of the earliest queued event (advances the
    /// internal cursor, but never pops). The sharded engine's `step` uses
    /// this to pick the globally earliest event across shard queues.
    pub fn peek_key(&mut self) -> Option<(u64, u64, u64)> {
        self.advance();
        self.cur.peek().map(|Reverse(e)| (e.t, e.a, e.b))
    }

    /// Pops the earliest event in strict `(t, a, b)` order.
    pub fn pop(&mut self) -> Option<(u64, u64, u64, T)> {
        self.advance();
        let Reverse(e) = self.cur.pop()?;
        self.len -= 1;
        self.ring_live -= 1;
        let body = self.slab[e.idx as usize].take().expect("slab entry vanished");
        self.free.push(e.idx);
        Some((e.t, e.a, e.b, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pops everything, asserting strict key order, returning the keys.
    fn drain_sorted(q: &mut EventQueue<u64>) -> Vec<(u64, u64, u64)> {
        let mut out: Vec<(u64, u64, u64)> = Vec::new();
        while let Some((t, a, b, body)) = q.pop() {
            assert_eq!(body, t ^ a ^ b, "body follows its key through the slab");
            if let Some(&last) = out.last() {
                assert!(last <= (t, a, b), "pop order went backwards: {last:?} then {t},{a},{b}");
            }
            out.push((t, a, b));
        }
        out
    }

    #[test]
    fn pops_follow_total_key_order() {
        let mut q = EventQueue::new();
        // A spread of near, same-bucket, same-time and far-future keys.
        let mut keys: Vec<(u64, u64, u64)> = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = x % 20_000_000; // 0..20 s: several epochs
            let a = (x >> 32) % 8;
            keys.push((t, a, i));
        }
        for &(t, a, b) in &keys {
            q.push(t, a, b, t ^ a ^ b);
        }
        assert_eq!(q.len(), keys.len());
        let popped = drain_sorted(&mut q);
        let mut want = keys.clone();
        want.sort_unstable();
        assert_eq!(popped, want);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(5_000, 0, 1, 5_000 ^ 1);
        q.push(10_000_000, 0, 2, 10_000_000 ^ 2);
        assert_eq!(q.peek_time(), Some(5_000));
        let (t, _, _, _) = q.pop().unwrap();
        assert_eq!(t, 5_000);
        // Schedule at the exact popped time (zero-delay timer): the cursor
        // already sits on that bucket.
        q.push(5_000, 0, 3, 5_000 ^ 3);
        // And behind the cursor's bucket but in the future epoch-wise.
        q.push(5_500, 0, 4, 5_500 ^ 4);
        let popped = drain_sorted(&mut q);
        assert_eq!(popped, vec![(5_000, 0, 3), (5_500, 0, 4), (10_000_000, 0, 2)]);
    }

    #[test]
    fn far_future_events_cross_epochs() {
        let mut q = EventQueue::new();
        // One event per ~SPAN so every pop jumps the window.
        for i in 0..20u64 {
            q.push(i * (SPAN + 123), 0, i, (i * (SPAN + 123)) ^ i);
        }
        let popped = drain_sorted(&mut q);
        assert_eq!(popped.len(), 20);
    }

    #[test]
    fn push_behind_a_jumped_window_stays_visible() {
        // Regression: the sharded engine can push into a queue whose window
        // jumped several epochs ahead (an idle shard whose only remaining
        // event was far-future). The new entry's time is behind the whole
        // window; filing it by mod-SPAN bucket index would park it in a
        // future slot where it pops a rotation late and out of order.
        let mut q = EventQueue::new();
        let far = 3 * SPAN + 777; // several epochs out
        q.push(far, 0, 1, far ^ 1);
        // Peeking jumps the window to the far event's epoch.
        assert_eq!(q.peek_time(), Some(far));
        // A near arrival lands behind the jumped window; it must surface
        // immediately and pop before the far event.
        q.push(10_000, 0, 2, 10_000 ^ 2);
        assert_eq!(q.peek_time(), Some(10_000));
        let popped = drain_sorted(&mut q);
        assert_eq!(popped, vec![(10_000, 0, 2), (far, 0, 1)]);
    }

    #[test]
    fn slab_reuses_slots() {
        let mut q = EventQueue::new();
        for round in 0..3u64 {
            for i in 0..100u64 {
                let t = round * 1_000 + i;
                q.push(t, 0, i, t ^ i);
            }
            while q.pop().is_some() {}
        }
        assert!(q.slab.len() <= 100, "slab grew past the high-water mark: {}", q.slab.len());
    }
}
