//! Simulated time.
//!
//! The simulator measures time in integer **microseconds** since the start of
//! the run. Using a fixed integer tick keeps event ordering exact and the
//! whole simulation deterministic; 2^64 µs is ~584 thousand years, far beyond
//! any experiment horizon.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in microseconds since simulation start.
///
/// `SimTime` is a newtype so that real (wall-clock) durations can never be
/// mixed into simulated arithmetic by accident.
///
/// ```
/// use simnet::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_secs(3);
/// assert_eq!(t.as_micros(), 3_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// ```
/// use simnet::SimDuration;
/// assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_micros(6000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated time never runs
    /// backwards, so this indicates a logic error in the caller.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from fractional seconds, rounding to the microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// The span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span in fractional milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Checked multiplication by an integer factor.
    pub fn checked_mul(self, rhs: u64) -> Option<SimDuration> {
        self.0.checked_mul(rhs).map(SimDuration)
    }

    /// Saturating addition of two spans.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration subtraction underflow"))
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl std::ops::Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn arithmetic() {
        let t0 = SimTime::from_secs(1);
        let t1 = t0 + SimDuration::from_millis(250);
        assert_eq!(t1.as_micros(), 1_250_000);
        assert_eq!((t1 - t0).as_millis_f64(), 250.0);
        assert_eq!(SimDuration::from_secs(1) / 4, SimDuration::from_millis(250));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_on_reversed_order() {
        let _ = SimTime::ZERO.since(SimTime::from_secs(1));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(SimTime::ZERO.saturating_since(SimTime::from_secs(1)), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000000s");
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(3);
        assert_eq!(t, SimTime::from_secs(3));
    }
}
