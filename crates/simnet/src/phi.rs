//! Phi-accrual failure detection (Hayashibara et al., SRDS 2004).
//!
//! A boolean timeout collapses the rich signal "how late is this peer,
//! relative to how it usually behaves" into a single cliff. The phi-accrual
//! detector instead keeps a sliding window of observed heartbeat
//! inter-arrival times and reports a continuous *suspicion level*
//!
//! ```text
//! phi(t) = -log10( P(next heartbeat arrives later than t) )
//! ```
//!
//! under a normal model of the inter-arrival distribution. phi = 1 means a
//! ~10% chance the peer is merely slow, phi = 3 a ~0.1% chance. Callers pick
//! a threshold per use: aggressive for retransmit scheduling, conservative
//! for eviction. Crucially, a gray-degraded peer whose heartbeats slow down
//! *gradually raises* phi instead of flapping across a fixed TTL.
//!
//! The normal tail probability uses the logistic approximation
//! `1 - CDF(y) ≈ 1 / (1 + e^(y·(1.5976 + 0.070566·y²)))`, accurate to a few
//! percent over the range that matters and monotone in `y`, which keeps phi
//! strictly increasing while a peer stays silent.

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// Tuning for a [`PhiAccrualDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhiConfig {
    /// Sliding window of inter-arrival samples to model.
    pub window: usize,
    /// Suspicion threshold: `phi >= threshold` means "suspect".
    pub threshold: f64,
    /// Assumed inter-arrival until the first real sample arrives.
    pub first_interval: SimDuration,
    /// Stddev floor, so a metronomically regular peer is not suspected the
    /// microsecond it slips (simulated gossip can be exactly periodic). The
    /// effective floor is the larger of this and a quarter of the observed
    /// mean interval, keeping tolerance proportional to cadence.
    pub min_stddev: SimDuration,
}

impl Default for PhiConfig {
    fn default() -> Self {
        PhiConfig {
            window: 64,
            threshold: 8.0,
            first_interval: SimDuration::from_secs(2),
            min_stddev: SimDuration::from_millis(200),
        }
    }
}

/// A phi-accrual failure detector for one monitored peer.
#[derive(Debug, Clone)]
pub struct PhiAccrualDetector {
    config: PhiConfig,
    intervals_us: VecDeque<f64>,
    sum: f64,
    sum_sq: f64,
    last_arrival: Option<SimTime>,
    /// Conservative elapsed bound (µs since `last_arrival`) below which phi
    /// provably stays under the threshold — recomputed on each heartbeat so
    /// [`PhiAccrualDetector::is_suspect`] is a single integer compare for a
    /// healthy peer. Callers sweep every monitored row every round; the full
    /// transcendental phi only runs once a peer is genuinely late.
    safe_elapsed_us: u64,
}

impl PhiAccrualDetector {
    /// Creates a detector with the given tuning.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or the threshold is not positive.
    pub fn new(config: PhiConfig) -> Self {
        assert!(config.window > 0, "phi window must be non-empty");
        assert!(config.threshold > 0.0, "phi threshold must be positive");
        PhiAccrualDetector {
            config,
            intervals_us: VecDeque::with_capacity(config.window),
            sum: 0.0,
            sum_sq: 0.0,
            last_arrival: None,
            safe_elapsed_us: 0,
        }
    }

    /// Records a heartbeat (any sign of life) from the peer at `now`.
    /// Out-of-order arrivals (at or before the last one) refresh nothing.
    pub fn heartbeat(&mut self, now: SimTime) {
        match self.last_arrival {
            None => {
                self.last_arrival = Some(now);
                self.safe_elapsed_us = self.safe_elapsed();
            }
            Some(last) if now > last => {
                self.push_interval(now.since(last).as_micros() as f64);
                self.last_arrival = Some(now);
                self.safe_elapsed_us = self.safe_elapsed();
            }
            Some(_) => {}
        }
    }

    /// The suspicion level at `now`. Zero before the first heartbeat (an
    /// unobserved peer is unknown, not dead) and zero at the instant of an
    /// arrival; grows without bound while the peer stays silent.
    pub fn phi(&self, now: SimTime) -> f64 {
        let Some(last) = self.last_arrival else {
            return 0.0;
        };
        let elapsed = now.saturating_since(last).as_micros() as f64;
        let (mean, stddev) = self.model();
        let y = (elapsed - mean) / stddev;
        // -log10 of the logistic tail approximation, computed in a form
        // stable for large y (where 1 - CDF underflows).
        let e = y * (1.5976 + 0.070566 * y * y);
        if e > 0.0 {
            // tail = exp(-e) / (1 + exp(-e))
            (std::f64::consts::LOG10_E * e) + (1.0 + (-e).exp()).log10()
        } else {
            // tail = 1 / (1 + exp(e))
            (1.0 + e.exp()).log10()
        }
    }

    /// True when the suspicion level has crossed the configured threshold.
    /// Equivalent to `phi(now) >= threshold`, but a healthy (not-yet-late)
    /// peer is cleared by one integer compare against a precomputed bound.
    pub fn is_suspect(&self, now: SimTime) -> bool {
        if let Some(last) = self.last_arrival {
            if now.saturating_since(last).as_micros() < self.safe_elapsed_us {
                return false;
            }
        }
        self.phi(now) >= self.config.threshold
    }

    /// The instant of the most recent heartbeat, if any.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.last_arrival
    }

    /// Number of inter-arrival samples currently modeled.
    pub fn samples(&self) -> usize {
        self.intervals_us.len()
    }

    /// Forgets all history (e.g. the monitored peer deliberately restarted).
    pub fn reset(&mut self) {
        self.intervals_us.clear();
        self.sum = 0.0;
        self.sum_sq = 0.0;
        self.last_arrival = None;
        self.safe_elapsed_us = 0;
    }

    /// Largest elapsed time (µs) for which phi provably stays below the
    /// threshold under the current model.
    ///
    /// With `y = (elapsed - mean) / stddev` and `e(y) = y·(1.5976 +
    /// 0.070566·y²)` increasing in `y`: for `e ≤ 0`, `phi ≤ log10 2`; for
    /// `e ≥ 0`, `phi ≤ LOG10_E·e + log10 2`. So phi stays under the
    /// threshold while `e < e_need = (threshold − log10 2)·ln 10`, and in
    /// particular while `y < y_safe = e_need / (1.5976 + 0.070566·c²)` for
    /// `c = e_need / 1.5976` (since `e(c) ≥ e_need` forces `y_safe ≤
    /// e⁻¹(e_need)`). Truncation to integer µs only tightens the bound.
    fn safe_elapsed(&self) -> u64 {
        let e_need = (self.config.threshold - std::f64::consts::LOG10_2) * std::f64::consts::LN_10;
        if e_need <= 0.0 {
            return 0;
        }
        let c = e_need / 1.5976;
        let y_safe = e_need / (1.5976 + 0.070566 * c * c);
        let (mean, stddev) = self.model();
        (mean + y_safe * stddev).max(0.0) as u64
    }

    fn push_interval(&mut self, us: f64) {
        if self.intervals_us.len() == self.config.window {
            let old = self.intervals_us.pop_front().expect("window non-empty");
            self.sum -= old;
            self.sum_sq -= old * old;
        }
        self.intervals_us.push_back(us);
        self.sum += us;
        self.sum_sq += us * us;
    }

    /// Windowed (mean, stddev) of inter-arrivals in µs, with the configured
    /// floors applied.
    fn model(&self) -> (f64, f64) {
        if self.intervals_us.is_empty() {
            let first = self.config.first_interval.as_micros() as f64;
            return (first, (self.config.min_stddev.as_micros() as f64).max(first / 4.0));
        }
        let n = self.intervals_us.len() as f64;
        let mean = self.sum / n;
        let var = (self.sum_sq / n - mean * mean).max(0.0);
        let floor = (self.config.min_stddev.as_micros() as f64).max(mean / 4.0);
        (mean, var.sqrt().max(floor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fed(period_s: u64, beats: u64) -> (PhiAccrualDetector, SimTime) {
        let mut d = PhiAccrualDetector::new(PhiConfig::default());
        let mut now = SimTime::ZERO;
        for i in 0..beats {
            now = SimTime::from_secs(i * period_s);
            d.heartbeat(now);
        }
        (d, now)
    }

    #[test]
    fn phi_rises_monotonically_without_heartbeats() {
        let (d, last) = fed(2, 20);
        let mut prev = -1.0;
        for k in 0..200 {
            let phi = d.phi(last + SimDuration::from_millis(200 * k));
            assert!(phi >= prev, "phi regressed at step {k}: {phi} < {prev}");
            prev = phi;
        }
        // And it grows without bound: far past the mean it is decisive.
        assert!(d.phi(last + SimDuration::from_secs(60)) > 16.0);
    }

    #[test]
    fn phi_resets_on_arrival() {
        let (mut d, last) = fed(2, 20);
        let late = last + SimDuration::from_secs(30);
        assert!(d.is_suspect(late));
        d.heartbeat(late);
        assert!(d.phi(late) < 0.5);
        assert!(!d.is_suspect(late + SimDuration::from_secs(1)));
    }

    #[test]
    fn fresh_detector_is_not_suspicious() {
        let d = PhiAccrualDetector::new(PhiConfig::default());
        assert_eq!(d.phi(SimTime::from_secs(1000)), 0.0);
        assert!(!d.is_suspect(SimTime::from_secs(1000)));
        assert_eq!(d.last_arrival(), None);
    }

    #[test]
    fn first_heartbeat_uses_configured_estimate() {
        let mut d = PhiAccrualDetector::new(PhiConfig {
            first_interval: SimDuration::from_secs(1),
            ..PhiConfig::default()
        });
        d.heartbeat(SimTime::ZERO);
        assert!(d.phi(SimTime::from_micros(500_000)) < 1.0);
        assert!(d.phi(SimTime::from_secs(20)) > PhiConfig::default().threshold);
    }

    #[test]
    fn regular_peer_tolerated_at_its_own_cadence() {
        // A peer gossiping every 5s must not be suspected 6s in, even though
        // a 2s-period peer at 6s would look very late.
        let (slow, last) = fed(5, 30);
        assert!(slow.phi(last + SimDuration::from_secs(6)) < 2.0);
        let (fast, last_fast) = fed(1, 30);
        assert!(fast.phi(last_fast + SimDuration::from_secs(6)) > 8.0);
    }

    #[test]
    fn gray_slowdown_raises_phi_gradually() {
        let mut d = PhiAccrualDetector::new(PhiConfig::default());
        let mut now = SimTime::ZERO;
        for i in 0..30 {
            now = SimTime::from_secs(i * 2);
            d.heartbeat(now);
        }
        // The peer degrades: heartbeats now every 8s. Suspicion appears in
        // between but never saturates the way silence does.
        let mut peak: f64 = 0.0;
        for _ in 0..10 {
            now += SimDuration::from_secs(8);
            peak = peak.max(d.phi(now));
            d.heartbeat(now);
        }
        assert!(peak > 1.0, "slowdown should raise suspicion, got {peak}");
        // After adapting to the new cadence, the same lateness alarms less.
        let adapted = d.phi(now + SimDuration::from_secs(8));
        assert!(adapted < peak, "window should adapt: {adapted} vs {peak}");
    }

    #[test]
    fn out_of_order_heartbeats_ignored() {
        let (mut d, last) = fed(2, 5);
        let before = d.samples();
        d.heartbeat(SimTime::ZERO);
        d.heartbeat(last);
        assert_eq!(d.samples(), before);
        assert_eq!(d.last_arrival(), Some(last));
    }

    #[test]
    fn window_is_bounded() {
        let mut d = PhiAccrualDetector::new(PhiConfig { window: 8, ..PhiConfig::default() });
        for i in 0..100 {
            d.heartbeat(SimTime::from_secs(i));
        }
        assert_eq!(d.samples(), 8);
    }

    #[test]
    fn fast_path_agrees_with_exact_phi() {
        // The precomputed safe-elapsed bound must never flip a decision:
        // sweep a dense grid across the suspicion boundary.
        let (d, last) = fed(2, 20);
        for k in 0..600u64 {
            let t = last + SimDuration::from_millis(50 * k);
            let exact = d.phi(t) >= PhiConfig::default().threshold;
            assert_eq!(d.is_suspect(t), exact, "diverged at step {k}");
        }
    }

    #[test]
    fn reset_forgets_history() {
        let (mut d, last) = fed(2, 20);
        d.reset();
        assert_eq!(d.samples(), 0);
        assert_eq!(d.phi(last + SimDuration::from_secs(100)), 0.0);
    }
}
