//! The discrete-event engine.
//!
//! [`Simulation`] owns the nodes, the event queues, the network model and all
//! randomness. Events are totally ordered by a `(time, a, b)` key, so a run
//! is a pure function of the master seed and the schedule of external
//! inputs — the determinism every experiment in this reproduction relies on.
//!
//! # Execution modes
//!
//! The engine always runs over one or more internal **shards**, each owning a
//! contiguous range of node ids with its own calendar-queue scheduler (see
//! [`crate::sched`]), network-model copy and RNG streams.
//!
//! * **Legacy mode** (the default): one shard, events keyed
//!   `(time, 0, global sequence)` — bit-identical to the historical single
//!   `BinaryHeap` engine, preserving every recorded experiment.
//! * **Sharded mode** ([`Simulation::set_shards`] or the `SIMNET_SHARDS`
//!   environment variable): events carry *shard-count-invariant* keys and all
//!   randomness is split into per-node streams, so the same seed produces
//!   byte-identical telemetry whether the run uses 1 shard or 16. Shards
//!   synchronize conservatively at windows bounded by the network's minimum
//!   latency (the lookahead): a message sent in window `[W, W+L)` cannot
//!   arrive before `W+L`, so shards never see each other's events early.
//!   [`Simulation::run_until_parallel`] executes the same window plan with
//!   one thread per shard and is byte-identical to the sequential path by
//!   construction.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use obs::{ctr, kind, Layer, Telemetry, TelemetryHub, TraceEvent};
use rand::rngs::SmallRng;

use crate::disk::{Disk, RestartMode};
use crate::node::{
    Context, CorruptionOp, Effect, LiarAction, LiarBehavior, Node, NodeId, Payload, TimerId,
};
use crate::rng::fork;
use crate::sched::EventQueue;
use crate::stats::{FaultCounters, TrafficCounters};
use crate::time::{SimDuration, SimTime};
use crate::topology::{DropCause, GrayProfile, NetworkModel, Partition, RouteOutcome};

/// Trace operand code for a [`DropCause`] (stable across runs; part of the
/// telemetry encoding).
fn drop_cause_code(cause: DropCause) -> u64 {
    match cause {
        DropCause::Partition => 0,
        DropCause::LinkCut => 1,
        DropCause::Loss => 2,
        DropCause::GraySend => 3,
        DropCause::GrayRecv => 4,
    }
}

/// Stream tag for the engine's dedicated liar RNG: interception draws must
/// never touch the node or network streams, so an inert liar layer leaves
/// every legacy run bit-identical.
const LIAR_STREAM: u64 = 0x11A2_11A2_11A2_11A2;

/// Base of the per-sender network RNG streams used in sharded mode (stream
/// tag = base + sender id). Disjoint from the per-node protocol streams
/// (small integers) and the legacy network stream (`u64::MAX`).
const NET_STREAM_BASE: u64 = 0x4E45_5452_0000_0000;

/// Base of the per-node liar RNG streams used in sharded mode.
const LIAR_STREAM_BASE: u64 = 0x11A2_0000_0000_0000;

/// `a`-key of network-global control events in sharded mode: sorts after
/// every node event at the same instant, in every shard's queue.
const KEY_CONTROL: u64 = u64::MAX;

/// Lane marker distinguishing externally injected events from node-emitted
/// ones in the sharded `a`-key (no real node id equals it).
const EXT_LANE: u64 = 0xFFFF_FFFF;

/// Sharded-mode `a`-key of a node-emitted event: destination-major so all of
/// one node's inbound traffic shares a lane, sub-ordered by source.
fn key_local(dest: u32, src: u32) -> u64 {
    (u64::from(dest) << 32) | u64::from(src)
}

/// Sharded-mode `a`-key of an externally injected per-node event.
fn key_external(dest: u32) -> u64 {
    (u64::from(dest) << 32) | EXT_LANE
}

#[derive(Clone)]
enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M, size: usize },
    Timer { node: NodeId, id: TimerId, tag: u64 },
    Crash(NodeId),
    Recover(NodeId, RestartMode),
    SetPartition(Option<Partition>),
    SetDropProb(f64),
    SetGray(NodeId, Option<GrayProfile>),
    SetLink { from: NodeId, to: NodeId, cut: bool },
    SetDupProb(f64),
    SetReorder { prob: f64, jitter: SimDuration },
    Corrupt { node: NodeId, op: CorruptionOp, seed: u64 },
    SetLiar(NodeId, Option<LiarBehavior>),
    SetColluder(NodeId, bool),
}

/// The shard that must process an event: `Some(node)` for per-node events
/// (owner shard), `None` for network-global control events (broadcast — every
/// shard applies them to its network-model copy).
fn event_target<M>(kind: &EventKind<M>) -> Option<NodeId> {
    match kind {
        EventKind::Deliver { to, .. } => Some(*to),
        EventKind::Timer { node, .. } => Some(*node),
        EventKind::Crash(n) => Some(*n),
        EventKind::Recover(n, _) => Some(*n),
        EventKind::Corrupt { node, .. } => Some(*node),
        EventKind::SetLiar(n, _) => Some(*n),
        EventKind::SetColluder(n, _) => Some(*n),
        EventKind::SetPartition(_)
        | EventKind::SetDropProb(_)
        | EventKind::SetGray(..)
        | EventKind::SetLink { .. }
        | EventKind::SetDupProb(_)
        | EventKind::SetReorder { .. } => None,
    }
}

enum Callback<M> {
    Start,
    Message { from: NodeId, msg: M },
    Timer { timer: TimerId, tag: u64 },
    Recover(RestartMode),
}

/// The registry slot a [`DropCause`] tallies into (on the global set).
fn drop_cause_slot(cause: DropCause) -> obs::CtrId {
    match cause {
        DropCause::Partition => ctr::DROPS_PARTITION,
        DropCause::LinkCut => ctr::DROPS_LINK_CUT,
        DropCause::Loss => ctr::DROPS_LOSS,
        DropCause::GraySend => ctr::DROPS_GRAY_SEND,
        DropCause::GrayRecv => ctr::DROPS_GRAY_RECV,
    }
}

/// One execution shard: a contiguous range of nodes, their queue, and every
/// piece of state their events touch. In legacy mode there is exactly one.
struct Shard<N: Node> {
    index: usize,
    base: u32,
    nodes: Vec<N>,
    down: Vec<bool>,
    node_rngs: Vec<SmallRng>,
    disks: Vec<Disk>,
    crash_unsynced_loss: usize,
    /// Whether `BYTES_WIRE` (the compressed-wire accounting lane) is
    /// tallied alongside `BYTES_SENT`. Defaults to [`crate::delta_mode`];
    /// overridable per instance so one process can compare delta-on and
    /// delta-off arms.
    delta_accounting: bool,
    /// This shard's copy of the network model (control events are broadcast,
    /// so every copy applies the same mutations in the same key order).
    net: NetworkModel,
    /// Legacy-mode network stream (single, shared).
    net_rng: SmallRng,
    /// Sharded-mode per-sender network streams (indexed by local id).
    net_rngs: Vec<SmallRng>,
    /// Legacy-mode liar stream (single, shared).
    liar_rng: SmallRng,
    /// Sharded-mode per-node liar streams, created lazily on first draw.
    liar_rngs: HashMap<u32, SmallRng>,
    queue: EventQueue<EventKind<N::Msg>>,
    now: SimTime,
    /// Legacy-mode global sequence counter (shard 0 only).
    seq: u64,
    /// Sharded-mode per-source `b`-key counters (indexed by local id).
    src_seq: Vec<u64>,
    /// Timer-id allocator slots: one shared slot in legacy mode, one per
    /// node (pre-seeded to disjoint ranges) in sharded mode.
    next_timer: Vec<u64>,
    /// Fire times of timers still queued, so a cancellation can be bounded
    /// to the timer's lifetime (entries leave when the timer event pops).
    pending_timers: HashMap<TimerId, SimTime>,
    /// Cancelled-but-not-yet-popped timers, keyed to their fire time so
    /// stale entries can be purged once that time has passed.
    cancelled: HashMap<TimerId, SimTime>,
    liars: HashMap<u32, LiarBehavior>,
    colluders: HashSet<u32>,
    events_processed: u64,
    peak_queue: usize,
    seed: u64,
    invariant: bool,
    per: u32,
    nshards: usize,
    /// Sharded-mode scratch telemetry hub (owned, so the shard is `Send`);
    /// drained into the master hub at window boundaries. `None` in legacy
    /// mode — shard 0 writes straight into the master hub.
    scratch: Option<TelemetryHub>,
    /// Cross-shard sends parked until the window barrier, one box per
    /// destination shard.
    outboxes: Vec<Outbox<N::Msg>>,
}

/// A parked cross-shard event: `(arrival µs, a, b, event)`.
type Outbox<M> = Vec<(u64, u64, u64, EventKind<M>)>;

impl<N: Node> Shard<N> {
    fn shard_of(&self, id: NodeId) -> usize {
        ((id.0 / self.per) as usize).min(self.nshards - 1)
    }

    fn push_keyed(&mut self, at: SimTime, a: u64, b: u64, kind: EventKind<N::Msg>) {
        self.queue.push(at.as_micros(), a, b, kind);
        self.peak_queue = self.peak_queue.max(self.queue.len());
    }

    /// Allocates the ordering key for an event emitted by `src` toward
    /// `dest` (timers use `dest == src`).
    fn key_for_emit(&mut self, src: NodeId, dest: NodeId) -> (u64, u64) {
        if self.invariant {
            let li = (src.0 - self.base) as usize;
            self.src_seq[li] += 1;
            (key_local(dest.0, src.0), self.src_seq[li])
        } else {
            self.seq += 1;
            (0, self.seq)
        }
    }

    /// Queues a delivery locally or parks it in the outbox of the owner
    /// shard (cross-shard arrivals are always at or beyond the window
    /// barrier, because every latency is at least the lookahead).
    fn emit_deliver(&mut self, from: NodeId, to: NodeId, msg: N::Msg, size: usize, at: SimTime) {
        let (a, b) = self.key_for_emit(from, to);
        let dst = self.shard_of(to);
        let kind = EventKind::Deliver { from, to, msg, size };
        if dst == self.index {
            self.push_keyed(at, a, b, kind);
        } else {
            self.outboxes[dst].push((at.as_micros(), a, b, kind));
        }
    }

    /// Runs the node callback and then applies the effects it requested.
    fn dispatch_callback(
        &mut self,
        hub: &Rc<RefCell<TelemetryHub>>,
        id: NodeId,
        cb: Callback<N::Msg>,
    ) {
        let li = (id.0 - self.base) as usize;
        let mut effects: Vec<Effect<N::Msg>> = Vec::new();
        {
            // With tracing on, expose the hub to protocol code for the span
            // of the callback (callbacks are instantaneous in sim time, so
            // stamping the clock once here is exact).
            let _obs_guard = if obs::ENABLED {
                hub.borrow_mut().set_now_us(self.now.as_micros());
                // Usually a no-op pointer check: the run loops install the
                // hub once per window (see `run_window`).
                obs::collector::install_if_needed(hub)
            } else {
                None
            };
            let node = &mut self.nodes[li];
            let tslot =
                if self.invariant { &mut self.next_timer[li] } else { &mut self.next_timer[0] };
            let mut ctx = Context {
                id,
                now: self.now,
                rng: &mut self.node_rngs[li],
                effects: &mut effects,
                next_timer: tslot,
                disk: &mut self.disks[li],
            };
            match cb {
                Callback::Start => node.on_start(&mut ctx),
                Callback::Message { from, msg } => node.on_message(&mut ctx, from, msg),
                Callback::Timer { timer, tag } => node.on_timer(&mut ctx, timer, tag),
                Callback::Recover(mode) => node.on_restart(&mut ctx, mode),
            }
        }
        for eff in effects {
            match eff {
                Effect::Send { to, mut msg } => {
                    // Liar interception sits at the node boundary: the
                    // protocol built an honest message; an installed liar
                    // behavior may rewrite or swallow it on the way out.
                    if let Some(b) = self.liars.get(&id.0).copied() {
                        use rand::Rng;
                        let invariant = self.invariant;
                        let seed = self.seed;
                        let roll = {
                            let r: &mut SmallRng = if invariant {
                                self.liar_rngs.entry(id.0).or_insert_with(|| {
                                    fork(seed, LIAR_STREAM_BASE + u64::from(id.0))
                                })
                            } else {
                                &mut self.liar_rng
                            };
                            r.gen::<f64>() < b.prob
                        };
                        if roll {
                            let action = if invariant {
                                let r = self.liar_rngs.get_mut(&id.0).expect("liar rng installed");
                                self.nodes[li].tamper_outbound(to, &mut msg, b.mode, r)
                            } else {
                                self.nodes[li].tamper_outbound(
                                    to,
                                    &mut msg,
                                    b.mode,
                                    &mut self.liar_rng,
                                )
                            };
                            if action != LiarAction::Pass {
                                let mut hub = hub.borrow_mut();
                                // A coordinated lie is attributed to the
                                // collusion group, not the solo-liar tally.
                                let slot = if self.colluders.contains(&id.0) {
                                    ctr::COLLUSION_INTERCEPTS
                                } else {
                                    ctr::LIAR_MESSAGES_INTERCEPTED
                                };
                                hub.global_mut().ctr_add(slot, 1);
                                if obs::ENABLED {
                                    let what = if action == LiarAction::Tampered { 1 } else { 2 };
                                    hub.trace_at(
                                        self.now.as_micros(),
                                        id.0,
                                        Layer::Sim,
                                        kind::LIAR_INTERCEPT,
                                        u64::from(to.0),
                                        what,
                                    );
                                }
                            }
                            if action == LiarAction::Dropped {
                                continue;
                            }
                        }
                    }
                    let size = msg.wire_size();
                    {
                        let mut hub = hub.borrow_mut();
                        if let Some(c) = hub.node_mut(id.index()) {
                            c.ctr_add(ctr::MSGS_SENT, 1);
                            c.ctr_add(ctr::BYTES_SENT, size as u64);
                            // `bytes_sent` always prices full payloads;
                            // `bytes_wire` is what the delta accounting
                            // model says actually crossed the wire. Only
                            // tallied in delta mode so deltas-off telemetry
                            // stays byte-identical (zero counters are
                            // skipped by every exporter).
                            if self.delta_accounting {
                                c.ctr_add(ctr::BYTES_WIRE, msg.compressed_wire_size() as u64);
                            }
                        }
                    }
                    let route = {
                        let r =
                            if self.invariant { &mut self.net_rngs[li] } else { &mut self.net_rng };
                        self.net.route(id, to, r)
                    };
                    match route {
                        RouteOutcome::Deliver { copies, jittered } => {
                            if jittered || copies.len() > 1 {
                                let mut hub = hub.borrow_mut();
                                let g = hub.global_mut();
                                if jittered {
                                    g.ctr_add(ctr::MSGS_JITTERED, 1);
                                }
                                g.ctr_add(ctr::MSGS_DUPLICATED, copies.len() as u64 - 1);
                            }
                            for &lat in copies.iter().skip(1) {
                                let at = self.now + lat;
                                let copy = msg.clone();
                                self.emit_deliver(id, to, copy, size, at);
                            }
                            let at = self.now + copies[0];
                            self.emit_deliver(id, to, msg, size, at);
                        }
                        RouteOutcome::Drop(cause) => {
                            let mut hub = hub.borrow_mut();
                            hub.global_mut().ctr_add(drop_cause_slot(cause), 1);
                            if let Some(c) = hub.node_mut(to.index()) {
                                c.ctr_add(ctr::MSGS_LOST, 1);
                            }
                            if obs::ENABLED {
                                hub.trace_at(
                                    self.now.as_micros(),
                                    id.0,
                                    Layer::Sim,
                                    kind::MSG_DROP,
                                    u64::from(to.0),
                                    drop_cause_code(cause),
                                );
                            }
                        }
                    }
                }
                Effect::SetTimer { id: tid, delay, tag } => {
                    let at = self.now + delay;
                    self.pending_timers.insert(tid, at);
                    let (a, b) = self.key_for_emit(id, id);
                    self.push_keyed(at, a, b, EventKind::Timer { node: id, id: tid, tag });
                }
                Effect::CancelTimer { id: tid } => {
                    // Cancelling an already-fired (or never-set) timer must
                    // not grow the set forever: only timers still queued are
                    // recorded, keyed to the time their entry self-expires.
                    if let Some(&fire) = self.pending_timers.get(&tid) {
                        self.cancelled.insert(tid, fire);
                    }
                }
            }
        }
    }

    /// Applies one popped event to this shard's state.
    fn process_event(
        &mut self,
        hub: &Rc<RefCell<TelemetryHub>>,
        t: SimTime,
        kind_ev: EventKind<N::Msg>,
    ) {
        debug_assert!(t >= self.now, "event queue went backwards");
        self.now = t;
        // Network-global control events are broadcast to every shard's queue
        // in sharded mode; tally the logical event once (on shard 0) so
        // `events_processed` stays shard-count-invariant.
        if !self.invariant || self.index == 0 || event_target(&kind_ev).is_some() {
            self.events_processed += 1;
        }
        match kind_ev {
            EventKind::Deliver { from, to, msg, size } => {
                let li = (to.0 as usize).wrapping_sub(self.base as usize);
                if li >= self.nodes.len() || self.down[li] {
                    let mut hub = hub.borrow_mut();
                    if let Some(c) = hub.node_mut(to.index()) {
                        c.ctr_add(ctr::MSGS_LOST, 1);
                    }
                    return;
                }
                {
                    let mut hub = hub.borrow_mut();
                    if let Some(c) = hub.node_mut(to.index()) {
                        c.ctr_add(ctr::MSGS_RECV, 1);
                        c.ctr_add(ctr::BYTES_RECV, size as u64);
                    }
                    if obs::ENABLED {
                        hub.trace_at(
                            self.now.as_micros(),
                            to.0,
                            Layer::Sim,
                            kind::MSG_DELIVER,
                            u64::from(from.0),
                            size as u64,
                        );
                    }
                }
                self.dispatch_callback(hub, to, Callback::Message { from, msg });
            }
            EventKind::Timer { node, id, tag } => {
                self.pending_timers.remove(&id);
                if self.cancelled.remove(&id).is_some() {
                    return;
                }
                let li = (node.0 - self.base) as usize;
                if self.down[li] {
                    return; // timers expiring while down are lost
                }
                if let Some(c) = hub.borrow_mut().node_mut(node.index()) {
                    c.ctr_add(ctr::TIMERS_FIRED, 1);
                }
                self.dispatch_callback(hub, node, Callback::Timer { timer: id, tag });
            }
            EventKind::Crash(node) => {
                let li = (node.0 - self.base) as usize;
                if !self.down[li] {
                    self.down[li] = true;
                    {
                        let mut hub = hub.borrow_mut();
                        hub.global_mut().ctr_add(ctr::CRASHES, 1);
                        if obs::ENABLED {
                            hub.trace_at(
                                self.now.as_micros(),
                                node.0,
                                Layer::Sim,
                                kind::NODE_CRASH,
                                0,
                                0,
                            );
                        }
                    }
                    self.nodes[li].on_crash();
                    // The crash failure model for stable storage: the newest
                    // unsynced writes are destroyed, anything older is
                    // considered to have reached the platter in time.
                    let lost = self.disks[li].crash(self.crash_unsynced_loss);
                    if lost > 0 {
                        let mut hub = hub.borrow_mut();
                        if let Some(c) = hub.node_mut(node.index()) {
                            c.ctr_add(ctr::DISK_WRITES_LOST, lost as u64);
                        }
                    }
                }
            }
            EventKind::Recover(node, mode) => {
                let li = (node.0 - self.base) as usize;
                if self.down[li] {
                    self.down[li] = false;
                    {
                        let mut hub = hub.borrow_mut();
                        hub.global_mut().ctr_add(ctr::RECOVERIES, 1);
                        if obs::ENABLED {
                            hub.trace_at(
                                self.now.as_micros(),
                                node.0,
                                Layer::Sim,
                                kind::NODE_RECOVER,
                                0,
                                0,
                            );
                        }
                        if mode != RestartMode::Freeze {
                            let slot = if mode == RestartMode::ColdDurable {
                                ctr::COLD_RESTARTS_DURABLE
                            } else {
                                ctr::COLD_RESTARTS_AMNESIA
                            };
                            hub.global_mut().ctr_add(slot, 1);
                            if obs::ENABLED {
                                hub.trace_at(
                                    self.now.as_micros(),
                                    node.0,
                                    Layer::Sim,
                                    kind::NODE_RESTART,
                                    mode.discriminant(),
                                    self.disks[li].total_lost(),
                                );
                            }
                        }
                    }
                    if mode == RestartMode::ColdAmnesia {
                        self.disks[li].wipe();
                    }
                    self.dispatch_callback(hub, node, Callback::Recover(mode));
                }
            }
            EventKind::SetPartition(p) => {
                let healed = p.is_none() && self.net.partition.is_some();
                // Control events are broadcast to every shard; only shard 0
                // tallies, so the merged telemetry counts each change once.
                if self.index == 0 && (p.is_some() || healed) {
                    let mut hub = hub.borrow_mut();
                    let (slot, k) = if p.is_some() {
                        (ctr::PARTITIONS_STARTED, kind::PARTITION_START)
                    } else {
                        (ctr::PARTITIONS_HEALED, kind::PARTITION_HEAL)
                    };
                    hub.global_mut().ctr_add(slot, 1);
                    if obs::ENABLED {
                        hub.trace_at(
                            self.now.as_micros(),
                            obs::TraceEvent::GLOBAL,
                            Layer::Sim,
                            k,
                            0,
                            0,
                        );
                    }
                }
                self.net.partition = p;
            }
            EventKind::SetDropProb(p) => self.net.drop_prob = p,
            EventKind::SetGray(node, profile) => match profile {
                Some(g) => {
                    self.net.gray.insert(node, g);
                }
                None => {
                    self.net.gray.remove(&node);
                }
            },
            EventKind::SetLink { from, to, cut } => {
                if cut {
                    self.net.cut_links.insert((from, to));
                } else {
                    self.net.cut_links.remove(&(from, to));
                }
            }
            EventKind::SetDupProb(p) => self.net.dup_prob = p,
            EventKind::SetReorder { prob, jitter } => {
                self.net.reorder_prob = prob;
                self.net.reorder_jitter = jitter;
            }
            EventKind::Corrupt { node, op, seed } => {
                let li = (node.0 - self.base) as usize;
                if !self.down[li] {
                    // Each strike carries its own seed: the RNG handed to
                    // the node (or disk) is private to this event, so the
                    // strike schedule and the damage it does replay
                    // bit-for-bit regardless of what else the run contains.
                    let mut rng = fork(seed, u64::from(node.0));
                    let units = match op {
                        CorruptionOp::DiskBytes { flips } => {
                            self.disks[li].corrupt(&mut rng, flips)
                        }
                        _ => self.nodes[li].apply_corruption(&op, &mut rng),
                    };
                    let mut hub = hub.borrow_mut();
                    hub.global_mut().ctr_add(ctr::STATE_CORRUPTIONS, 1);
                    if matches!(op, CorruptionOp::ForgeItems { .. }) {
                        hub.global_mut().ctr_add(ctr::FORGED_ITEMS_INJECTED, units);
                    }
                    if let CorruptionOp::StolenKey { publisher, .. } = op {
                        hub.global_mut().ctr_add(ctr::KEY_COMPROMISE_STRIKES, 1);
                        if obs::ENABLED {
                            hub.trace_at(
                                self.now.as_micros(),
                                node.0,
                                Layer::Sim,
                                kind::KEY_COMPROMISE_STRIKE,
                                u64::from(publisher),
                                units,
                            );
                        }
                    }
                    if let CorruptionOp::SybilFlood { epoch, .. } = op {
                        hub.global_mut().ctr_add(ctr::SYBIL_JOINS_ATTEMPTED, units);
                        if obs::ENABLED {
                            hub.trace_at(
                                self.now.as_micros(),
                                node.0,
                                Layer::Sim,
                                kind::SYBIL_STRIKE,
                                units,
                                u64::from(epoch),
                            );
                        }
                    }
                    if obs::ENABLED {
                        hub.trace_at(
                            self.now.as_micros(),
                            node.0,
                            Layer::Sim,
                            kind::STATE_CORRUPT,
                            op.discriminant(),
                            units,
                        );
                    }
                    if self.colluders.contains(&node.0) {
                        hub.global_mut().ctr_add(ctr::COLLUSION_STRIKES, 1);
                        if obs::ENABLED {
                            hub.trace_at(
                                self.now.as_micros(),
                                node.0,
                                Layer::Sim,
                                kind::COLLUSION_STRIKE,
                                op.discriminant(),
                                units,
                            );
                        }
                    }
                }
            }
            EventKind::SetLiar(node, behavior) => match behavior {
                Some(b) => {
                    self.liars.insert(node.0, b);
                }
                None => {
                    self.liars.remove(&node.0);
                }
            },
            EventKind::SetColluder(node, on) => {
                if on {
                    self.colluders.insert(node.0);
                } else {
                    self.colluders.remove(&node.0);
                }
            }
        }
    }

    /// Pops and processes every queued event with `t < bound_us`.
    fn drain_window(&mut self, hub: &Rc<RefCell<TelemetryHub>>, bound_us: u64) {
        while let Some(t) = self.queue.peek_time() {
            if t >= bound_us {
                break;
            }
            let (t, a, b, kind_ev) = self.queue.pop().expect("peeked entry vanished");
            if self.invariant {
                hub.borrow_mut().set_event_key(a, b);
            }
            self.process_event(hub, SimTime::from_micros(t), kind_ev);
        }
    }

    /// Runs a closure against this shard's effective hub: the scratch hub
    /// (re-wrapped in a transient `Rc` so the thread-local collector can
    /// hold it) when sharded, the master hub in legacy mode.
    fn with_hub<R>(
        &mut self,
        master: &Rc<RefCell<TelemetryHub>>,
        f: impl FnOnce(&mut Self, &Rc<RefCell<TelemetryHub>>) -> R,
    ) -> R {
        if let Some(scr) = self.scratch.take() {
            let rc = Rc::new(RefCell::new(scr));
            let r = f(self, &rc);
            self.scratch = Some(
                Rc::try_unwrap(rc)
                    .map(RefCell::into_inner)
                    .unwrap_or_else(|_| panic!("scratch hub retained")),
            );
            r
        } else {
            f(self, master)
        }
    }

    /// Processes one window sequentially (hub installed once for the span).
    fn run_window(&mut self, master: &Rc<RefCell<TelemetryHub>>, bound_us: u64) {
        self.with_hub(master, |sh, hub| {
            let _g = if obs::ENABLED { obs::collector::install_if_needed(hub) } else { None };
            sh.drain_window(hub, bound_us);
        });
    }

    /// Processes one window on a worker thread (sharded mode only; never
    /// touches the master hub, so the closure is `Send`).
    fn run_window_owned(&mut self, bound_us: u64) {
        let scr = self.scratch.take().expect("parallel run requires scratch hubs");
        let rc = Rc::new(RefCell::new(scr));
        {
            let _g = if obs::ENABLED { obs::collector::install_if_needed(&rc) } else { None };
            self.drain_window(&rc, bound_us);
        }
        self.scratch = Some(
            Rc::try_unwrap(rc)
                .map(RefCell::into_inner)
                .unwrap_or_else(|_| panic!("scratch hub retained")),
        );
    }
}

/// Pre-start state: nodes and externally scheduled events accumulate here
/// until the first run call freezes the shard layout.
struct Staging<N: Node> {
    nodes: Vec<N>,
    node_rngs: Vec<SmallRng>,
    disks: Vec<Disk>,
    events: Vec<StagedEvent<N::Msg>>,
    peak: usize,
    seq: u64,
}

struct StagedEvent<M> {
    time: SimTime,
    legacy_seq: u64,
    kind: EventKind<M>,
}

/// A deterministic discrete-event simulation over nodes of type `N`.
///
/// # Examples
///
/// A two-node ping-pong (the single-byte payload carries a hop budget):
///
/// ```
/// use simnet::{Simulation, NetworkModel, Node, NodeId, Context, TimerId, SimDuration};
///
/// struct Ping { peer: NodeId, pings: u32 }
/// impl Node for Ping {
///     type Msg = Vec<u8>;
///     fn on_start(&mut self, ctx: &mut Context<'_, Vec<u8>>) {
///         if ctx.id() == NodeId(0) { ctx.send(self.peer, vec![3]); }
///     }
///     fn on_message(&mut self, ctx: &mut Context<'_, Vec<u8>>, from: NodeId, m: Vec<u8>) {
///         self.pings += 1;
///         if m[0] > 0 { ctx.send(from, vec![m[0] - 1]); }
///     }
///     fn on_timer(&mut self, _: &mut Context<'_, Vec<u8>>, _: TimerId, _: u64) {}
/// }
///
/// let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(10)), 42);
/// sim.add_node(Ping { peer: NodeId(1), pings: 0 });
/// sim.add_node(Ping { peer: NodeId(0), pings: 0 });
/// sim.run_until(simnet::SimTime::from_secs(1));
/// assert_eq!(sim.node(NodeId(0)).pings + sim.node(NodeId(1)).pings, 4);
/// ```
pub struct Simulation<N: Node> {
    /// All traffic/fault accounting and trace records live here; the legacy
    /// [`TrafficCounters`]/[`FaultCounters`] accessors are views over it.
    /// Shared (`Rc`) so the thread-local collector can reach it from inside
    /// node callbacks.
    hub: Rc<RefCell<TelemetryHub>>,
    shards: Vec<Shard<N>>,
    staging: Option<Staging<N>>,
    net: NetworkModel,
    now: SimTime,
    seed: u64,
    started: bool,
    /// Sharded (shard-count-invariant) mode flag; false = legacy keys.
    invariant: bool,
    shard_target: usize,
    /// How many of the newest unsynced disk writes a crash destroys
    /// (default: all of them).
    crash_unsynced_loss: usize,
    /// Whether sends also tally `BYTES_WIRE` (compressed-wire accounting).
    delta_accounting: bool,
    /// Sharded-mode `b`-key counter for externally scheduled events.
    ext_seq: u64,
    total: u32,
    per: u32,
    /// Conservative-synchronization lookahead: the network's minimum
    /// latency, in µs (frozen at start).
    lookahead_us: u64,
}

impl<N: Node> std::fmt::Debug for Simulation<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.len())
            .field("now", &self.now)
            .field("queued", &self.queued_len())
            .field("shards", &self.shards.len().max(1))
            .field("events_processed", &self.events_processed())
            .finish()
    }
}

impl<N: Node> Simulation<N> {
    /// Creates an empty simulation over the given network model, with all
    /// randomness derived from `seed`.
    ///
    /// If the `SIMNET_SHARDS` environment variable is set to an integer
    /// `k ≥ 1`, the simulation starts in sharded mode with that shard count,
    /// exactly as if [`Simulation::set_shards`]`(k)` had been called.
    pub fn new(net: NetworkModel, seed: u64) -> Self {
        let mut invariant = false;
        let mut shard_target = 1usize;
        if let Ok(v) = std::env::var("SIMNET_SHARDS") {
            if let Ok(k) = v.trim().parse::<usize>() {
                if k >= 1 {
                    invariant = true;
                    shard_target = k;
                }
            }
        }
        Simulation {
            hub: Rc::new(RefCell::new(TelemetryHub::new(seed))),
            shards: Vec::new(),
            staging: Some(Staging {
                nodes: Vec::new(),
                node_rngs: Vec::new(),
                disks: Vec::new(),
                events: Vec::new(),
                peak: 0,
                seq: 0,
            }),
            net,
            now: SimTime::ZERO,
            seed,
            started: false,
            invariant,
            shard_target,
            crash_unsynced_loss: usize::MAX,
            delta_accounting: crate::delta_mode(),
            ext_seq: 0,
            total: 0,
            per: 1,
            lookahead_us: 0,
        }
    }

    /// Switches the simulation into sharded mode with `k` execution shards
    /// (contiguous node-id ranges). In this mode event keys and RNG streams
    /// are *shard-count-invariant*: the same seed yields byte-identical
    /// telemetry for any `k`, including `k = 1` — but **not** identical to
    /// legacy (default) mode, which keeps the historical single-heap
    /// ordering. The effective count is clamped to the node count, and to 1
    /// when the network's minimum latency is zero (no lookahead, no safe
    /// window).
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation has started running.
    pub fn set_shards(&mut self, k: usize) {
        assert!(!self.started, "cannot reconfigure shards after the simulation started");
        self.shard_target = k.max(1);
        self.invariant = true;
    }

    /// The number of execution shards: the configured target before start,
    /// the effective (clamped) count after.
    pub fn shard_count(&self) -> usize {
        if self.started {
            self.shards.len()
        } else {
            self.shard_target
        }
    }

    /// The master seed this simulation was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// What the fault-injection machinery actually did to this run so far
    /// (a view over the telemetry registry's global metric set).
    pub fn fault_counters(&self) -> FaultCounters {
        let hub = self.hub.borrow();
        let g = hub.global();
        FaultCounters {
            drops_partition: g.ctr(ctr::DROPS_PARTITION),
            drops_link_cut: g.ctr(ctr::DROPS_LINK_CUT),
            drops_loss: g.ctr(ctr::DROPS_LOSS),
            drops_gray_send: g.ctr(ctr::DROPS_GRAY_SEND),
            drops_gray_recv: g.ctr(ctr::DROPS_GRAY_RECV),
            msgs_duplicated: g.ctr(ctr::MSGS_DUPLICATED),
            msgs_jittered: g.ctr(ctr::MSGS_JITTERED),
            crashes: g.ctr(ctr::CRASHES),
            recoveries: g.ctr(ctr::RECOVERIES),
            partitions_started: g.ctr(ctr::PARTITIONS_STARTED),
            partitions_healed: g.ctr(ctr::PARTITIONS_HEALED),
            state_corruptions: g.ctr(ctr::STATE_CORRUPTIONS),
            liar_intercepts: g.ctr(ctr::LIAR_MESSAGES_INTERCEPTED),
            collusion_strikes: g.ctr(ctr::COLLUSION_STRIKES),
            collusion_intercepts: g.ctr(ctr::COLLUSION_INTERCEPTS),
            forged_items_injected: g.ctr(ctr::FORGED_ITEMS_INJECTED),
            key_compromise_strikes: g.ctr(ctr::KEY_COMPROMISE_STRIKES),
            sybil_joins_attempted: g.ctr(ctr::SYBIL_JOINS_ATTEMPTED),
        }
    }

    /// Shared handle to this simulation's telemetry hub (the metrics
    /// registry plus the trace ring). Experiment harnesses read registry
    /// slots through this; protocol code inside callbacks reaches the same
    /// hub through the `obs` thread-local collector. In sharded mode the
    /// hub reflects merged shard state as of the last completed run call.
    pub fn telemetry(&self) -> Rc<RefCell<TelemetryHub>> {
        Rc::clone(&self.hub)
    }

    /// A non-destructive telemetry snapshot: every non-zero registry slot
    /// plus the retained trace records, stamped with the current simulated
    /// time. Deterministic — same seed, same schedule ⇒ same snapshot (and
    /// in sharded mode, the same bytes for any shard count).
    pub fn snapshot_telemetry(&self) -> Telemetry {
        let mut hub = self.hub.borrow_mut();
        hub.set_now_us(self.now.as_micros());
        hub.snapshot()
    }

    /// Drains the telemetry hub: returns the full timeline and **resets
    /// every registry slot and the trace ring**. Because the traffic and
    /// fault counters are views over the registry, they read zero after a
    /// drain — use [`Simulation::snapshot_telemetry`] for a non-destructive
    /// read, and drain only at window boundaries or end of run.
    pub fn drain_telemetry(&mut self) -> Telemetry {
        let mut hub = self.hub.borrow_mut();
        hub.set_now_us(self.now.as_micros());
        hub.drain()
    }

    /// Caps the trace ring at `capacity` records (drop-oldest beyond it).
    /// In sharded mode the cap applies to the *merged* ring, so retention is
    /// identical for every shard count.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.hub.borrow_mut().set_ring_capacity(capacity);
    }

    /// Adds a node, returning its id. Ids are assigned densely from 0 in
    /// insertion order.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation has started running.
    pub fn add_node(&mut self, node: N) -> NodeId {
        assert!(!self.started, "cannot add nodes after the simulation started");
        let st = self.staging.as_mut().expect("staging present before start");
        let id = NodeId(st.nodes.len() as u32);
        st.node_rngs.push(fork(self.seed, u64::from(id.0)));
        st.nodes.push(node);
        st.disks.push(Disk::new());
        self.hub.borrow_mut().ensure_nodes(st.nodes.len());
        id
    }

    /// Shard index owning a node id (valid post-start).
    fn shard_index_of(&self, id: NodeId) -> usize {
        ((id.0 / self.per) as usize).min(self.shards.len().saturating_sub(1))
    }

    /// A node's simulated stable storage (inspection between runs).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn disk(&self, id: NodeId) -> &Disk {
        if let Some(st) = &self.staging {
            &st.disks[id.index()]
        } else {
            let sh = &self.shards[self.shard_index_of(id)];
            &sh.disks[(id.0 - sh.base) as usize]
        }
    }

    /// Sets how many of the newest unsynced disk writes a crash destroys.
    /// `usize::MAX` (the default) loses every unsynced write; `0` models a
    /// write-through disk that never loses anything.
    pub fn set_crash_unsynced_loss(&mut self, k: usize) {
        self.crash_unsynced_loss = k;
        for sh in &mut self.shards {
            sh.crash_unsynced_loss = k;
        }
    }

    /// Enables or disables the compressed-wire accounting lane
    /// (`BYTES_WIRE`) independently of the `NEWSWIRE_DELTAS` environment
    /// switch, so one process can run a delta arm and a full arm
    /// back-to-back (E20). Defaults to [`crate::delta_mode`].
    pub fn set_delta_accounting(&mut self, on: bool) {
        self.delta_accounting = on;
        for sh in &mut self.shards {
            sh.delta_accounting = on;
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        if let Some(st) = &self.staging {
            st.nodes.len()
        } else {
            self.total as usize
        }
    }

    /// True when the simulation holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far (for throughput benchmarks).
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    fn queued_len(&self) -> usize {
        if let Some(st) = &self.staging {
            st.events.len()
        } else {
            self.shards.iter().map(|s| s.queue.len()).sum()
        }
    }

    /// High-water mark of the event queue length (for capacity benchmarks).
    /// In sharded mode this is the sum of per-shard high-water marks — an
    /// upper bound on the true global peak.
    pub fn peak_queue_depth(&self) -> usize {
        if let Some(st) = &self.staging {
            st.peak
        } else {
            self.shards.iter().map(|s| s.peak_queue).sum()
        }
    }

    /// Immutable access to a node's protocol state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &N {
        if let Some(st) = &self.staging {
            &st.nodes[id.index()]
        } else {
            let sh = &self.shards[self.shard_index_of(id)];
            &sh.nodes[(id.0 - sh.base) as usize]
        }
    }

    /// Mutable access to a node's protocol state (configuration between runs,
    /// or result extraction).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        if self.staging.is_none() {
            let si = self.shard_index_of(id);
            let sh = &mut self.shards[si];
            return &mut sh.nodes[(id.0 - sh.base) as usize];
        }
        let st = self.staging.as_mut().expect("staging present (checked above)");
        &mut st.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.staging
            .as_ref()
            .map(|st| st.nodes.iter())
            .into_iter()
            .flatten()
            .chain(self.shards.iter().flat_map(|sh| sh.nodes.iter()))
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Whether `id` is currently crashed.
    pub fn is_down(&self, id: NodeId) -> bool {
        if self.staging.is_some() {
            return false;
        }
        let sh = &self.shards[self.shard_index_of(id)];
        sh.down[(id.0 - sh.base) as usize]
    }

    /// Traffic counters for one node (a view over the telemetry registry).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn counters(&self, id: NodeId) -> TrafficCounters {
        let hub = self.hub.borrow();
        let m = hub.node(id.index()).expect("node id out of range");
        TrafficCounters {
            msgs_sent: m.ctr(ctr::MSGS_SENT),
            bytes_sent: m.ctr(ctr::BYTES_SENT),
            msgs_recv: m.ctr(ctr::MSGS_RECV),
            bytes_recv: m.ctr(ctr::BYTES_RECV),
            msgs_lost: m.ctr(ctr::MSGS_LOST),
            timers_fired: m.ctr(ctr::TIMERS_FIRED),
        }
    }

    /// Sum of all nodes' traffic counters.
    pub fn total_counters(&self) -> TrafficCounters {
        let hub = self.hub.borrow();
        TrafficCounters {
            msgs_sent: hub.counter_total(ctr::MSGS_SENT),
            bytes_sent: hub.counter_total(ctr::BYTES_SENT),
            msgs_recv: hub.counter_total(ctr::MSGS_RECV),
            bytes_recv: hub.counter_total(ctr::BYTES_RECV),
            msgs_lost: hub.counter_total(ctr::MSGS_LOST),
            timers_fired: hub.counter_total(ctr::TIMERS_FIRED),
        }
    }

    /// Queues an externally scheduled event (staged pre-start; routed to the
    /// owner shard or broadcast post-start).
    fn push(&mut self, time: SimTime, kind: EventKind<N::Msg>) {
        if let Some(st) = self.staging.as_mut() {
            st.seq += 1;
            st.events.push(StagedEvent { time, legacy_seq: st.seq, kind });
            st.peak = st.peak.max(st.events.len());
            return;
        }
        if !self.invariant {
            let sh = &mut self.shards[0];
            sh.seq += 1;
            let b = sh.seq;
            sh.push_keyed(time, 0, b, kind);
            return;
        }
        self.ext_seq += 1;
        let b = self.ext_seq;
        match event_target(&kind) {
            Some(nid) => {
                let si = self.shard_index_of(nid);
                self.shards[si].push_keyed(time, key_external(nid.0), b, kind);
            }
            None => {
                for sh in &mut self.shards {
                    sh.push_keyed(time, KEY_CONTROL, b, kind.clone());
                }
            }
        }
    }

    /// Delivers `msg` to `to` at exactly `at`, as if from
    /// [`NodeId::EXTERNAL`]. Used by experiment harnesses to inject inputs.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_external(&mut self, at: SimTime, to: NodeId, msg: N::Msg) {
        assert!(at >= self.now, "cannot schedule in the past");
        let size = msg.wire_size();
        self.push(at, EventKind::Deliver { from: NodeId::EXTERNAL, to, msg, size });
    }

    /// Schedules a crash of `node` at `at`.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        assert!(at >= self.now, "cannot schedule in the past");
        debug_assert!(
            node.index() < self.len(),
            "schedule_crash: node {node} out of range (have {})",
            self.len()
        );
        self.push(at, EventKind::Crash(node));
    }

    /// Schedules a recovery of `node` at `at` under the legacy
    /// "process freeze" model (equivalent to
    /// [`Simulation::schedule_restart`] with [`RestartMode::Freeze`]).
    pub fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        self.schedule_restart(at, node, RestartMode::Freeze);
    }

    /// Schedules a recovery of `node` at `at` under the given restart mode.
    /// `ColdAmnesia` wipes the node's disk before the
    /// [`Node::on_restart`] hook runs.
    pub fn schedule_restart(&mut self, at: SimTime, node: NodeId, mode: RestartMode) {
        assert!(at >= self.now, "cannot schedule in the past");
        debug_assert!(
            node.index() < self.len(),
            "schedule_restart: node {node} out of range (have {})",
            self.len()
        );
        self.push(at, EventKind::Recover(node, mode));
    }

    /// Schedules a gray-degradation change of `node` at `at` (`None` heals).
    pub fn schedule_gray(&mut self, at: SimTime, node: NodeId, profile: Option<GrayProfile>) {
        assert!(at >= self.now, "cannot schedule in the past");
        debug_assert!(
            node.index() < self.len(),
            "schedule_gray: node {node} out of range (have {})",
            self.len()
        );
        self.push(at, EventKind::SetGray(node, profile));
    }

    /// Schedules a directed link cut from `from` to `to` at `at`. The reverse
    /// direction is unaffected (asymmetric by design).
    pub fn schedule_link_cut(&mut self, at: SimTime, from: NodeId, to: NodeId) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push(at, EventKind::SetLink { from, to, cut: true });
    }

    /// Schedules the heal of a directed link cut at `at`.
    pub fn schedule_link_heal(&mut self, at: SimTime, from: NodeId, to: NodeId) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push(at, EventKind::SetLink { from, to, cut: false });
    }

    /// Schedules a change of the message duplication probability at `at`.
    pub fn schedule_dup_prob(&mut self, at: SimTime, p: f64) {
        assert!(at >= self.now, "cannot schedule in the past");
        assert!((0.0..1.0).contains(&p), "duplication probability out of range");
        self.push(at, EventKind::SetDupProb(p));
    }

    /// Schedules a change of the reordering-jitter knobs at `at`.
    pub fn schedule_reorder(&mut self, at: SimTime, prob: f64, jitter: SimDuration) {
        assert!(at >= self.now, "cannot schedule in the past");
        assert!((0.0..1.0).contains(&prob), "reorder probability out of range");
        self.push(at, EventKind::SetReorder { prob, jitter });
    }

    /// Schedules a partition change at `at` (`None` heals the network).
    pub fn schedule_partition(&mut self, at: SimTime, partition: Option<Partition>) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push(at, EventKind::SetPartition(partition));
    }

    /// Schedules a change of the per-message drop probability at `at`.
    pub fn schedule_drop_prob(&mut self, at: SimTime, p: f64) {
        assert!(at >= self.now, "cannot schedule in the past");
        assert!((0.0..1.0).contains(&p), "drop probability out of range");
        self.push(at, EventKind::SetDropProb(p));
    }

    /// Schedules an adversarial state-corruption strike against `node` at
    /// `at`. `seed` feeds the strike's private RNG stream (forked with the
    /// node id at dispatch), so a schedule of strikes replays bit-for-bit
    /// and never perturbs protocol randomness. Strikes against a crashed
    /// node are silently skipped — there is no state to corrupt.
    pub fn schedule_corruption(&mut self, at: SimTime, node: NodeId, op: CorruptionOp, seed: u64) {
        assert!(at >= self.now, "cannot schedule in the past");
        debug_assert!(
            node.index() < self.len(),
            "schedule_corruption: node {node} out of range (have {})",
            self.len()
        );
        self.push(at, EventKind::Corrupt { node, op, seed });
    }

    /// Schedules the installation (`Some`) or removal (`None`) of a liar
    /// behavior on `node` at `at`. While installed, the node's outbound
    /// messages are run through [`Node::tamper_outbound`] with the given
    /// per-message probability.
    pub fn schedule_liar(&mut self, at: SimTime, node: NodeId, behavior: Option<LiarBehavior>) {
        assert!(at >= self.now, "cannot schedule in the past");
        debug_assert!(
            node.index() < self.len(),
            "schedule_liar: node {node} out of range (have {})",
            self.len()
        );
        self.push(at, EventKind::SetLiar(node, behavior));
    }

    /// Schedules `node` joining (`true`) or leaving (`false`) the collusion
    /// set at `at`. Membership changes attribution only: corruption strikes
    /// and liar intercepts by a member tally into the `collusion_*` counters
    /// instead of (intercepts) or in addition to (strikes) the solo ones.
    pub fn schedule_colluder(&mut self, at: SimTime, node: NodeId, on: bool) {
        assert!(at >= self.now, "cannot schedule in the past");
        debug_assert!(
            node.index() < self.len(),
            "schedule_colluder: node {node} out of range (have {})",
            self.len()
        );
        self.push(at, EventKind::SetColluder(node, on));
    }

    /// Freezes the shard layout, distributes staged state and dispatches
    /// every node's `on_start` in global id order.
    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let st = self.staging.take().expect("staging present before start");
        let n = st.nodes.len();
        self.total = n as u32;
        self.lookahead_us = self.net.min_latency().as_micros();
        let mut k = if self.invariant { self.shard_target } else { 1 };
        if self.lookahead_us == 0 {
            // Zero lookahead admits no safe window: fall back to one shard
            // (the key scheme stays invariant, so telemetry is unchanged).
            k = 1;
        }
        k = k.clamp(1, n.max(1));
        let per = n.max(1).div_ceil(k);
        self.per = per as u32;

        let mut nodes = st.nodes.into_iter();
        let mut rngs = st.node_rngs.into_iter();
        let mut disks = st.disks.into_iter();
        for si in 0..k {
            let base = si * per;
            let count = per.min(n - base);
            let shard = Shard {
                index: si,
                base: base as u32,
                nodes: nodes.by_ref().take(count).collect(),
                down: vec![false; count],
                node_rngs: rngs.by_ref().take(count).collect(),
                disks: disks.by_ref().take(count).collect(),
                crash_unsynced_loss: self.crash_unsynced_loss,
                delta_accounting: self.delta_accounting,
                net: self.net.clone(),
                net_rng: fork(self.seed, u64::MAX),
                net_rngs: if self.invariant {
                    (base..base + count)
                        .map(|g| fork(self.seed, NET_STREAM_BASE + g as u64))
                        .collect()
                } else {
                    Vec::new()
                },
                liar_rng: fork(self.seed, LIAR_STREAM),
                liar_rngs: HashMap::new(),
                queue: EventQueue::new(),
                now: SimTime::ZERO,
                seq: 0,
                src_seq: vec![0; count],
                next_timer: if self.invariant {
                    (base..base + count).map(|g| ((g as u64) + 1) << 32).collect()
                } else {
                    vec![0]
                },
                pending_timers: HashMap::new(),
                cancelled: HashMap::new(),
                liars: HashMap::new(),
                colluders: HashSet::new(),
                events_processed: 0,
                peak_queue: 0,
                seed: self.seed,
                invariant: self.invariant,
                per: per as u32,
                nshards: k,
                scratch: if self.invariant {
                    let mut h = TelemetryHub::new(self.seed);
                    h.ensure_nodes(n);
                    h.configure_as_scratch();
                    Some(h)
                } else {
                    None
                },
                outboxes: (0..k).map(|_| Vec::new()).collect(),
            };
            self.shards.push(shard);
        }
        if !self.invariant {
            self.shards[0].seq = st.seq;
            self.shards[0].peak_queue = st.peak;
        }

        // Distribute the staged schedule. Legacy keys were assigned at
        // schedule time; invariant keys are assigned here, in schedule
        // order, from the external counter.
        for ev in st.events {
            if !self.invariant {
                self.shards[0].push_keyed(ev.time, 0, ev.legacy_seq, ev.kind);
                continue;
            }
            self.ext_seq += 1;
            let b = self.ext_seq;
            match event_target(&ev.kind) {
                Some(nid) => {
                    let si = self.shard_index_of(nid);
                    self.shards[si].push_keyed(ev.time, key_external(nid.0), b, ev.kind);
                }
                None => {
                    for sh in &mut self.shards {
                        sh.push_keyed(ev.time, KEY_CONTROL, b, ev.kind.clone());
                    }
                }
            }
        }

        // Start callbacks in global id order (shard ranges are contiguous,
        // so per-shard iteration preserves the global order).
        let master = Rc::clone(&self.hub);
        for si in 0..k {
            let count = self.shards[si].nodes.len();
            let base = self.shards[si].base;
            self.shards[si].with_hub(&master, |sh, hub| {
                let _g = if obs::ENABLED { obs::collector::install_if_needed(hub) } else { None };
                for li in 0..count {
                    let gid = base + li as u32;
                    if sh.invariant {
                        hub.borrow_mut().set_event_key(key_local(gid, gid), 0);
                    }
                    sh.dispatch_callback(hub, NodeId(gid), Callback::Start);
                }
            });
        }
        self.flush_outboxes();
        if self.invariant {
            self.merge_window_traces();
        }
    }

    /// Moves every parked cross-shard event into its owner shard's queue.
    fn flush_outboxes(&mut self) {
        let k = self.shards.len();
        if k <= 1 {
            return;
        }
        for src in 0..k {
            for dst in 0..k {
                if src == dst || self.shards[src].outboxes[dst].is_empty() {
                    continue;
                }
                let moved = std::mem::take(&mut self.shards[src].outboxes[dst]);
                for (t, a, b, kind_ev) in moved {
                    // Conservative-sync invariant: a cross-shard arrival is
                    // always at or beyond the window barrier, so it can
                    // never land in the owner's past.
                    debug_assert!(
                        t >= self.shards[dst].now.as_micros(),
                        "outbox flush into the past: shard {src} -> {dst}, \
                         event t={t} but dst now={} (key a={a:#x} b={b})",
                        self.shards[dst].now.as_micros()
                    );
                    self.shards[dst].push_keyed(SimTime::from_micros(t), a, b, kind_ev);
                }
            }
        }
    }

    /// Drains every shard's scratch trace ring and replays the records into
    /// the master ring in global `(time, key)` order. The sort is stable and
    /// keys are unique per event, so records emitted while processing one
    /// event stay in emission order — the merged stream is byte-identical
    /// for every shard count.
    fn merge_window_traces(&mut self) {
        let mut all: Vec<(TraceEvent, (u64, u64))> = Vec::new();
        for sh in &mut self.shards {
            if let Some(scr) = sh.scratch.as_mut() {
                all.extend(scr.drain_trace_keyed());
            }
        }
        if all.is_empty() {
            return;
        }
        all.sort_by_key(|(ev, key)| (ev.t_us, key.0, key.1));
        let mut hub = self.hub.borrow_mut();
        for (ev, _) in all {
            hub.push_record(ev);
        }
    }

    /// Folds every shard's scratch metric sets into the master hub
    /// (counters/histograms/series add, gauges take the max — all
    /// placement-insensitive, so the totals are shard-count-invariant).
    fn merge_shard_sets(&mut self) {
        let mut hub = self.hub.borrow_mut();
        for sh in &mut self.shards {
            if let Some(scr) = sh.scratch.as_mut() {
                hub.merge_sets_from(scr);
            }
        }
    }

    /// Earliest queued event time across all shards.
    fn earliest_time(&mut self) -> Option<u64> {
        let mut w: Option<u64> = None;
        for sh in &mut self.shards {
            if let Some(t) = sh.queue.peek_time() {
                w = Some(w.map_or(t, |x| x.min(t)));
            }
        }
        w
    }

    /// Purges dead cancelled-timer entries once the set outgrows the live
    /// queue (a cancelled timer whose fire time has passed can never pop
    /// again, so its entry is pure dead weight).
    fn compact_cancelled(&mut self) {
        let now = self.now;
        for sh in &mut self.shards {
            if sh.cancelled.len() > 64 || sh.cancelled.len() > sh.queue.len() {
                sh.cancelled.retain(|_, &mut fire| fire > now);
            }
        }
    }

    /// Runs windows sequentially until every queue is past `deadline_us`.
    fn run_windows(&mut self, deadline_us: u64) {
        let master = Rc::clone(&self.hub);
        while let Some(w) = self.earliest_time() {
            if w > deadline_us {
                break;
            }
            let bound =
                w.saturating_add(self.lookahead_us.max(1)).min(deadline_us.saturating_add(1));
            for sh in &mut self.shards {
                sh.run_window(&master, bound);
            }
            self.flush_outboxes();
            self.merge_window_traces();
        }
        let latest = self.shards.iter().map(|s| s.now).max().unwrap_or(SimTime::ZERO);
        self.now = self.now.max(latest);
    }

    /// Processes the single earliest event. Returns `false` when the queues
    /// are empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        if !self.invariant {
            let master = Rc::clone(&self.hub);
            let sh = &mut self.shards[0];
            let Some((t, _a, _b, kind_ev)) = sh.queue.pop() else { return false };
            sh.process_event(&master, SimTime::from_micros(t), kind_ev);
            self.now = self.now.max(sh.now);
            return true;
        }
        // Sharded mode: pick the globally earliest key across shard queues,
        // process just that event, then synchronize immediately (arrivals
        // are at least one lookahead ahead, so the flush is always safe).
        let mut best: Option<(usize, (u64, u64, u64))> = None;
        for (i, sh) in self.shards.iter_mut().enumerate() {
            if let Some(key) = sh.queue.peek_key() {
                if best.is_none_or(|(_, bk)| key < bk) {
                    best = Some((i, key));
                }
            }
        }
        let Some((si, _)) = best else { return false };
        let master = Rc::clone(&self.hub);
        self.shards[si].with_hub(&master, |sh, hub| {
            let _g = if obs::ENABLED { obs::collector::install_if_needed(hub) } else { None };
            let (t, a, b, kind_ev) = sh.queue.pop().expect("peeked entry vanished");
            hub.borrow_mut().set_event_key(a, b);
            sh.process_event(hub, SimTime::from_micros(t), kind_ev);
        });
        self.flush_outboxes();
        self.merge_window_traces();
        self.merge_shard_sets();
        let latest = self.shards.iter().map(|s| s.now).max().unwrap_or(SimTime::ZERO);
        self.now = self.now.max(latest);
        true
    }

    /// Runs until the simulated clock reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue drains. The clock is left at
    /// `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_if_needed();
        let deadline_us = deadline.as_micros();
        if !self.invariant {
            let master = Rc::clone(&self.hub);
            let sh = &mut self.shards[0];
            sh.run_window(&master, deadline_us.saturating_add(1));
            self.now = self.now.max(sh.now);
        } else {
            self.run_windows(deadline_us);
            self.merge_shard_sets();
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.compact_cancelled();
    }

    /// Runs for `d` of simulated time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Runs until the event queue is empty or at least `max_events` have
    /// been processed, returning the number of events processed. In sharded
    /// mode the budget is checked at synchronization-window granularity, so
    /// the count may overshoot `max_events` by up to one window.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.start_if_needed();
        let before = self.events_processed();
        if !self.invariant {
            let master = Rc::clone(&self.hub);
            let _obs_guard =
                if obs::ENABLED { obs::collector::install_if_needed(&master) } else { None };
            let sh = &mut self.shards[0];
            while sh.events_processed - before < max_events {
                let Some((t, _a, _b, kind_ev)) = sh.queue.pop() else { break };
                sh.process_event(&master, SimTime::from_micros(t), kind_ev);
            }
            self.now = self.now.max(sh.now);
        } else {
            loop {
                if self.events_processed() - before >= max_events {
                    break;
                }
                let Some(w) = self.earliest_time() else { break };
                let bound = w.saturating_add(self.lookahead_us.max(1));
                let master = Rc::clone(&self.hub);
                for sh in &mut self.shards {
                    sh.run_window(&master, bound);
                }
                self.flush_outboxes();
                self.merge_window_traces();
            }
            self.merge_shard_sets();
            let latest = self.shards.iter().map(|s| s.now).max().unwrap_or(SimTime::ZERO);
            self.now = self.now.max(latest);
        }
        self.events_processed() - before
    }
}

impl<N> Simulation<N>
where
    N: Node + Send,
    N::Msg: Send,
{
    /// Like [`Simulation::run_until`], but executes each synchronization
    /// window with one thread per shard. Byte-identical to the sequential
    /// path by construction: the window plan is the same, shards share no
    /// mutable state within a window, and the cross-shard merge orders
    /// records by their shard-count-invariant keys. Falls back to
    /// [`Simulation::run_until`] when there is only one shard.
    pub fn run_until_parallel(&mut self, deadline: SimTime) {
        self.start_if_needed();
        if self.shards.len() <= 1 {
            self.run_until(deadline);
            return;
        }
        let deadline_us = deadline.as_micros();
        while let Some(w) = self.earliest_time() {
            if w > deadline_us {
                break;
            }
            let bound =
                w.saturating_add(self.lookahead_us.max(1)).min(deadline_us.saturating_add(1));
            let shards = &mut self.shards;
            std::thread::scope(|scope| {
                for sh in shards.iter_mut() {
                    scope.spawn(move || sh.run_window_owned(bound));
                }
            });
            self.flush_outboxes();
            self.merge_window_traces();
        }
        self.merge_shard_sets();
        let latest = self.shards.iter().map(|s| s.now).max().unwrap_or(SimTime::ZERO);
        self.now = self.now.max(latest);
        if self.now < deadline {
            self.now = deadline;
        }
        self.compact_cancelled();
    }

    /// Like [`Simulation::run_for`], but parallel across shards.
    pub fn run_for_parallel(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until_parallel(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Payload;

    #[derive(Debug, Clone)]
    enum Msg {
        Ping(u32),
    }
    impl Payload for Msg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    /// Forwards externally injected pings to `peer`, then echoes with a
    /// decrementing TTL; counts deliveries and timers.
    #[derive(Default)]
    struct Echo {
        peer: Option<NodeId>,
        got: Vec<(NodeId, u32)>,
        timer_tags: Vec<u64>,
        start_timer: Option<SimDuration>,
        recovered: u32,
    }

    impl Node for Echo {
        type Msg = Msg;
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if let Some(d) = self.start_timer {
                ctx.set_timer(d, 7);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, Msg::Ping(n): Msg) {
            self.got.push((from, n));
            if from == NodeId::EXTERNAL {
                if let Some(peer) = self.peer {
                    ctx.send(peer, Msg::Ping(n));
                }
            } else if n > 0 {
                ctx.send(from, Msg::Ping(n - 1));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _t: TimerId, tag: u64) {
            self.timer_tags.push(tag);
        }
        fn on_recover(&mut self, _ctx: &mut Context<'_, Msg>) {
            self.recovered += 1;
        }
    }

    fn two_node_sim() -> Simulation<Echo> {
        let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(10)), 1);
        sim.add_node(Echo { peer: Some(NodeId(1)), ..Default::default() });
        sim.add_node(Echo { peer: Some(NodeId(0)), ..Default::default() });
        sim
    }

    #[test]
    fn external_injection_and_echo() {
        let mut sim = two_node_sim();
        sim.schedule_external(SimTime::from_secs(1), NodeId(0), Msg::Ping(0));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.node(NodeId(0)).got, vec![(NodeId::EXTERNAL, 0)]);
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn ping_pong_latency_accumulates() {
        let mut sim = two_node_sim();
        // n0 gets Ping(3) from outside, forwards to n1; it bounces back down
        // to TTL 0: n0 -> n1 (3), n1 -> n0 (2), n0 -> n1 (1), n1 -> n0 (0).
        sim.schedule_external(SimTime::ZERO, NodeId(0), Msg::Ping(3));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.node(NodeId(0)).got,
            vec![(NodeId::EXTERNAL, 3), (NodeId(1), 2), (NodeId(1), 0)]
        );
        assert_eq!(sim.node(NodeId(1)).got, vec![(NodeId(0), 3), (NodeId(0), 1)]);
        let c0 = sim.counters(NodeId(0));
        assert_eq!(c0.msgs_sent, 2);
        assert_eq!(c0.bytes_sent, 16);
        assert_eq!(c0.msgs_recv, 3);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct T {
            fired: Vec<u64>,
        }
        impl Node for T {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(5), 1);
                let cancel_me = ctx.set_timer(SimDuration::from_millis(6), 2);
                ctx.set_timer(SimDuration::from_millis(7), 3);
                ctx.cancel_timer(cancel_me);
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut Context<'_, ()>, _: TimerId, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut sim = Simulation::new(NetworkModel::default(), 3);
        let id = sim.add_node(T { fired: vec![] });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.node(id).fired, vec![1, 3]);
    }

    #[test]
    fn cancelled_timer_set_stays_bounded() {
        // A node that cancels every timer *after* it fired: the old
        // HashSet grew one entry per cancellation, forever.
        struct LateCancel {
            last: Option<TimerId>,
        }
        impl Node for LateCancel {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                self.last = Some(ctx.set_timer(SimDuration::from_millis(1), 0));
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, fired: TimerId, _: u64) {
                // `fired` has already popped: cancelling it must be a no-op
                // that leaves no residue.
                ctx.cancel_timer(fired);
                if let Some(prev) = self.last {
                    ctx.cancel_timer(prev);
                }
                self.last = Some(ctx.set_timer(SimDuration::from_millis(1), 0));
            }
        }
        let mut sim = Simulation::new(NetworkModel::default(), 5);
        sim.add_node(LateCancel { last: None });
        for t in 1..=200u64 {
            sim.run_until(SimTime::from_micros(t * 10_000));
        }
        let sh = &sim.shards[0];
        assert!(sh.cancelled.len() <= 1, "cancelled set leaked: {} entries", sh.cancelled.len());
        assert!(sh.pending_timers.len() <= 1, "pending map leaked");
    }

    #[test]
    fn cancelled_set_compacts_against_live_queue() {
        // Cancel a burst of still-pending far-future timers: each entry must
        // vanish when its timer event pops, and the set never outlives the
        // live queue.
        struct Burst {
            pending: Vec<TimerId>,
            fired: Vec<u64>,
        }
        impl Node for Burst {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                for i in 0..200u64 {
                    self.pending.push(ctx.set_timer(SimDuration::from_secs(10), i));
                }
                ctx.set_timer(SimDuration::from_millis(1), 999);
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, _t: TimerId, tag: u64) {
                self.fired.push(tag);
                if tag == 999 {
                    for id in self.pending.drain(..) {
                        ctx.cancel_timer(id);
                    }
                }
            }
        }
        let mut sim = Simulation::new(NetworkModel::default(), 11);
        let id = sim.add_node(Burst { pending: Vec::new(), fired: Vec::new() });
        sim.run_until(SimTime::from_secs(1));
        {
            let sh = &sim.shards[0];
            assert_eq!(sh.cancelled.len(), 200, "cancellations of pending timers are recorded");
            assert!(sh.cancelled.len() <= sh.queue.len(), "cancelled set outgrew the live queue");
        }
        sim.run_until(SimTime::from_secs(20));
        let sh = &sim.shards[0];
        assert_eq!(sh.cancelled.len(), 0, "popped timer events must clear their entries");
        assert_eq!(sim.node(id).fired, vec![999], "cancelled timers must not fire");
    }

    #[test]
    fn peak_queue_depth_tracks_high_water() {
        // Ten staged externals at distinct times, each forwarded once on
        // delivery: the queue refills to exactly 10 after each pop until the
        // injections drain, so the high-water mark is exactly 10 — staged
        // events and batch-scheduled deliveries both counted.
        let mut sim = two_node_sim();
        for i in 0..10u64 {
            sim.schedule_external(SimTime::from_micros(i * 1000 + 1), NodeId(0), Msg::Ping(0));
        }
        assert_eq!(sim.peak_queue_depth(), 10, "staged events count toward the peak");
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.peak_queue_depth(), 10);
        assert_eq!(sim.node(NodeId(1)).got.len(), 10);
    }

    #[test]
    fn crash_drops_messages_then_recover_delivers() {
        let mut sim = two_node_sim();
        sim.schedule_crash(SimTime::from_secs(1), NodeId(0));
        sim.schedule_external(SimTime::from_secs(2), NodeId(0), Msg::Ping(0));
        sim.schedule_recover(SimTime::from_secs(3), NodeId(0));
        sim.schedule_external(SimTime::from_secs(4), NodeId(0), Msg::Ping(0));
        sim.run_until(SimTime::from_secs(5));
        let n0 = sim.node(NodeId(0));
        assert_eq!(n0.got.len(), 1, "message during downtime must be lost");
        assert_eq!(n0.recovered, 1);
        assert_eq!(sim.counters(NodeId(0)).msgs_lost, 1);
    }

    #[test]
    fn timers_expiring_while_down_are_lost() {
        let mut sim = Simulation::new(NetworkModel::default(), 9);
        let id = sim
            .add_node(Echo { start_timer: Some(SimDuration::from_secs(2)), ..Default::default() });
        sim.schedule_crash(SimTime::from_secs(1), id);
        sim.schedule_recover(SimTime::from_secs(3), id);
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.node(id).timer_tags.is_empty());
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(
                NetworkModel {
                    latency: crate::topology::LatencyModel::Uniform {
                        min: SimDuration::from_millis(1),
                        max: SimDuration::from_millis(50),
                    },
                    drop_prob: 0.1,
                    ..NetworkModel::default()
                },
                seed,
            );
            for i in 0..4u32 {
                sim.add_node(Echo { peer: Some(NodeId((i + 1) % 4)), ..Default::default() });
            }
            for i in 0..20u32 {
                sim.schedule_external(
                    SimTime::from_micros(u64::from(i) * 1000),
                    NodeId(i % 4),
                    Msg::Ping(3),
                );
            }
            sim.run_until(SimTime::from_secs(10));
            (0..4).map(|i| sim.node(NodeId(i)).got.clone()).collect::<Vec<_>>()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    /// A fault-heavy scenario (chaos + partition + crash/recover + liar +
    /// colluder + corruption) whose telemetry must be byte-identical for
    /// every shard count in invariant mode.
    fn chaos_scenario(shards: usize, parallel: bool) -> (String, Vec<Vec<(NodeId, u32)>>) {
        let mut sim = Simulation::new(
            NetworkModel {
                latency: crate::topology::LatencyModel::Uniform {
                    min: SimDuration::from_millis(2),
                    max: SimDuration::from_millis(20),
                },
                drop_prob: 0.05,
                ..NetworkModel::default()
            },
            4242,
        );
        sim.set_shards(shards);
        let n = 8u32;
        for i in 0..n {
            sim.add_node(Echo { peer: Some(NodeId((i + 1) % n)), ..Default::default() });
        }
        for i in 0..48u32 {
            sim.schedule_external(
                SimTime::from_micros(u64::from(i) * 700),
                NodeId(i % n),
                Msg::Ping(4),
            );
        }
        sim.schedule_crash(SimTime::from_millis_t(30), NodeId(2));
        sim.schedule_restart(SimTime::from_millis_t(200), NodeId(2), RestartMode::ColdDurable);
        sim.schedule_partition(
            SimTime::from_millis_t(50),
            Some(Partition::split_at(n as usize, (n / 2) as usize)),
        );
        sim.schedule_partition(SimTime::from_millis_t(300), None);
        sim.schedule_liar(
            SimTime::from_millis_t(10),
            NodeId(5),
            Some(LiarBehavior { mode: crate::node::LiarMode::MisSummarize, prob: 0.5 }),
        );
        sim.schedule_colluder(SimTime::from_millis_t(10), NodeId(5), true);
        sim.schedule_corruption(
            SimTime::from_millis_t(120),
            NodeId(1),
            CorruptionOp::DiskBytes { flips: 4 },
            77,
        );
        sim.schedule_dup_prob(SimTime::from_millis_t(40), 0.1);
        sim.schedule_reorder(SimTime::from_millis_t(40), 0.2, SimDuration::from_millis(5));
        if parallel {
            sim.run_until_parallel(SimTime::from_secs(2));
        } else {
            sim.run_until(SimTime::from_secs(2));
        }
        let t = sim.drain_telemetry();
        let states = (0..n).map(|i| sim.node(NodeId(i)).got.clone()).collect();
        (t.to_json(), states)
    }

    #[test]
    fn sharded_invariant_mode_matches_across_shard_counts() {
        let one = chaos_scenario(1, false);
        let four = chaos_scenario(4, false);
        assert_eq!(one.1, four.1, "node states diverged between shard counts");
        assert_eq!(one.0, four.0, "telemetry diverged between shard counts");
    }

    #[test]
    fn parallel_execution_is_byte_identical_to_sequential() {
        let seq = chaos_scenario(4, false);
        let par = chaos_scenario(4, true);
        assert_eq!(seq.1, par.1, "node states diverged under parallel execution");
        assert_eq!(seq.0, par.0, "telemetry diverged under parallel execution");
    }

    #[test]
    fn run_to_quiescence_counts_events() {
        let mut sim = two_node_sim();
        sim.schedule_external(SimTime::ZERO, NodeId(0), Msg::Ping(3));
        let n = sim.run_to_quiescence(1000);
        assert_eq!(n, 5); // one injection + 4 inter-node deliveries
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    #[should_panic(expected = "after the simulation started")]
    fn adding_nodes_after_start_panics() {
        let mut sim = two_node_sim();
        sim.run_until(SimTime::from_secs(1));
        sim.add_node(Echo::default());
    }

    #[test]
    fn partition_schedule_applies() {
        let mut sim = two_node_sim();
        sim.schedule_partition(SimTime::ZERO, Some(Partition::split_at(2, 1)));
        sim.schedule_external(SimTime::from_millis_t(1), NodeId(0), Msg::Ping(3));
        sim.run_until(SimTime::from_secs(1));
        // n0 forwards the ping to n1, but the partition cuts the link.
        assert_eq!(sim.node(NodeId(1)).got.len(), 0);
        assert_eq!(sim.counters(NodeId(1)).msgs_lost, 1);
    }

    impl SimTime {
        fn from_millis_t(ms: u64) -> SimTime {
            SimTime::from_micros(ms * 1000)
        }
    }
}
