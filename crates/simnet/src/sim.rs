//! The discrete-event engine.
//!
//! [`Simulation`] owns the nodes, the event queue, the network model and all
//! randomness. Events are totally ordered by `(time, sequence-number)`, so a
//! run is a pure function of the master seed and the schedule of external
//! inputs — the determinism every experiment in this reproduction relies on.

use std::cell::RefCell;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::rc::Rc;

use obs::{ctr, kind, Layer, Telemetry, TelemetryHub};
use rand::rngs::SmallRng;

use crate::disk::{Disk, RestartMode};
use crate::node::{
    Context, CorruptionOp, Effect, LiarAction, LiarBehavior, Node, NodeId, Payload, TimerId,
};
use crate::rng::fork;
use crate::stats::{FaultCounters, TrafficCounters};
use crate::time::{SimDuration, SimTime};
use crate::topology::{DropCause, GrayProfile, NetworkModel, Partition, RouteOutcome};

/// Trace operand code for a [`DropCause`] (stable across runs; part of the
/// telemetry encoding).
fn drop_cause_code(cause: DropCause) -> u64 {
    match cause {
        DropCause::Partition => 0,
        DropCause::LinkCut => 1,
        DropCause::Loss => 2,
        DropCause::GraySend => 3,
        DropCause::GrayRecv => 4,
    }
}

/// Stream tag for the engine's dedicated liar RNG: interception draws must
/// never touch the node or network streams, so an inert liar layer leaves
/// every legacy run bit-identical.
const LIAR_STREAM: u64 = 0x11A2_11A2_11A2_11A2;

/// The registry slot a [`DropCause`] tallies into (on the global set).
fn drop_cause_slot(cause: DropCause) -> obs::CtrId {
    match cause {
        DropCause::Partition => ctr::DROPS_PARTITION,
        DropCause::LinkCut => ctr::DROPS_LINK_CUT,
        DropCause::Loss => ctr::DROPS_LOSS,
        DropCause::GraySend => ctr::DROPS_GRAY_SEND,
        DropCause::GrayRecv => ctr::DROPS_GRAY_RECV,
    }
}

enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M, size: usize },
    Timer { node: NodeId, id: TimerId, tag: u64 },
    Crash(NodeId),
    Recover(NodeId, RestartMode),
    SetPartition(Option<Partition>),
    SetDropProb(f64),
    SetGray(NodeId, Option<GrayProfile>),
    SetLink { from: NodeId, to: NodeId, cut: bool },
    SetDupProb(f64),
    SetReorder { prob: f64, jitter: SimDuration },
    Corrupt { node: NodeId, op: CorruptionOp, seed: u64 },
    SetLiar(NodeId, Option<LiarBehavior>),
    SetColluder(NodeId, bool),
}

struct QueuedEvent<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    // Reversed so the BinaryHeap (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic discrete-event simulation over nodes of type `N`.
///
/// # Examples
///
/// A two-node ping-pong (the single-byte payload carries a hop budget):
///
/// ```
/// use simnet::{Simulation, NetworkModel, Node, NodeId, Context, TimerId, SimDuration};
///
/// struct Ping { peer: NodeId, pings: u32 }
/// impl Node for Ping {
///     type Msg = Vec<u8>;
///     fn on_start(&mut self, ctx: &mut Context<'_, Vec<u8>>) {
///         if ctx.id() == NodeId(0) { ctx.send(self.peer, vec![3]); }
///     }
///     fn on_message(&mut self, ctx: &mut Context<'_, Vec<u8>>, from: NodeId, m: Vec<u8>) {
///         self.pings += 1;
///         if m[0] > 0 { ctx.send(from, vec![m[0] - 1]); }
///     }
///     fn on_timer(&mut self, _: &mut Context<'_, Vec<u8>>, _: TimerId, _: u64) {}
/// }
///
/// let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(10)), 42);
/// sim.add_node(Ping { peer: NodeId(1), pings: 0 });
/// sim.add_node(Ping { peer: NodeId(0), pings: 0 });
/// sim.run_until(simnet::SimTime::from_secs(1));
/// assert_eq!(sim.node(NodeId(0)).pings + sim.node(NodeId(1)).pings, 4);
/// ```
pub struct Simulation<N: Node> {
    nodes: Vec<N>,
    down: Vec<bool>,
    node_rngs: Vec<SmallRng>,
    /// Per-node simulated stable storage (see [`Disk`]).
    disks: Vec<Disk>,
    /// How many of the newest unsynced disk writes a crash destroys
    /// (default: all of them).
    crash_unsynced_loss: usize,
    /// All traffic/fault accounting and trace records live here; the legacy
    /// [`TrafficCounters`]/[`FaultCounters`] accessors are views over it.
    /// Shared (`Rc`) so the thread-local collector can reach it from inside
    /// node callbacks.
    hub: Rc<RefCell<TelemetryHub>>,
    net: NetworkModel,
    net_rng: SmallRng,
    queue: BinaryHeap<QueuedEvent<N::Msg>>,
    now: SimTime,
    seq: u64,
    next_timer: u64,
    /// Fire times of timers still queued, so a cancellation can be bounded
    /// to the timer's lifetime (entries leave when the timer event pops).
    pending_timers: HashMap<TimerId, SimTime>,
    /// Cancelled-but-not-yet-popped timers, keyed to their fire time so
    /// stale entries can be purged once that time has passed.
    cancelled: HashMap<TimerId, SimTime>,
    started: bool,
    seed: u64,
    events_processed: u64,
    peak_queue: usize,
    /// Liar behaviors currently installed, by node id (see `LiarSpec`).
    liars: HashMap<u32, LiarBehavior>,
    /// Nodes currently marked as members of a collusion group. Membership
    /// only changes *attribution* — strikes and intercepts by colluders
    /// tally into the collusion counters — never behavior, so an empty set
    /// leaves every legacy run bit-identical.
    colluders: HashSet<u32>,
    /// Dedicated RNG stream for liar interception decisions. Only drawn
    /// from while a liar behavior is installed, so configuring no liars
    /// leaves every other stream — and thus the whole run — untouched.
    liar_rng: SmallRng,
}

impl<N: Node> std::fmt::Debug for Simulation<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("queued", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<N: Node> Simulation<N> {
    /// Creates an empty simulation over the given network model, with all
    /// randomness derived from `seed`.
    pub fn new(net: NetworkModel, seed: u64) -> Self {
        Simulation {
            nodes: Vec::new(),
            down: Vec::new(),
            node_rngs: Vec::new(),
            disks: Vec::new(),
            crash_unsynced_loss: usize::MAX,
            hub: Rc::new(RefCell::new(TelemetryHub::new(seed))),
            net,
            net_rng: fork(seed, u64::MAX),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            next_timer: 0,
            pending_timers: HashMap::new(),
            cancelled: HashMap::new(),
            started: false,
            seed,
            events_processed: 0,
            peak_queue: 0,
            liars: HashMap::new(),
            colluders: HashSet::new(),
            liar_rng: fork(seed, LIAR_STREAM),
        }
    }

    /// The master seed this simulation was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// What the fault-injection machinery actually did to this run so far
    /// (a view over the telemetry registry's global metric set).
    pub fn fault_counters(&self) -> FaultCounters {
        let hub = self.hub.borrow();
        let g = hub.global();
        FaultCounters {
            drops_partition: g.ctr(ctr::DROPS_PARTITION),
            drops_link_cut: g.ctr(ctr::DROPS_LINK_CUT),
            drops_loss: g.ctr(ctr::DROPS_LOSS),
            drops_gray_send: g.ctr(ctr::DROPS_GRAY_SEND),
            drops_gray_recv: g.ctr(ctr::DROPS_GRAY_RECV),
            msgs_duplicated: g.ctr(ctr::MSGS_DUPLICATED),
            msgs_jittered: g.ctr(ctr::MSGS_JITTERED),
            crashes: g.ctr(ctr::CRASHES),
            recoveries: g.ctr(ctr::RECOVERIES),
            partitions_started: g.ctr(ctr::PARTITIONS_STARTED),
            partitions_healed: g.ctr(ctr::PARTITIONS_HEALED),
            state_corruptions: g.ctr(ctr::STATE_CORRUPTIONS),
            liar_intercepts: g.ctr(ctr::LIAR_MESSAGES_INTERCEPTED),
            collusion_strikes: g.ctr(ctr::COLLUSION_STRIKES),
            collusion_intercepts: g.ctr(ctr::COLLUSION_INTERCEPTS),
            forged_items_injected: g.ctr(ctr::FORGED_ITEMS_INJECTED),
        }
    }

    /// Shared handle to this simulation's telemetry hub (the metrics
    /// registry plus the trace ring). Experiment harnesses read registry
    /// slots through this; protocol code inside callbacks reaches the same
    /// hub through the `obs` thread-local collector.
    pub fn telemetry(&self) -> Rc<RefCell<TelemetryHub>> {
        Rc::clone(&self.hub)
    }

    /// A non-destructive telemetry snapshot: every non-zero registry slot
    /// plus the retained trace records, stamped with the current simulated
    /// time. Deterministic — same seed, same schedule ⇒ same snapshot.
    pub fn snapshot_telemetry(&self) -> Telemetry {
        let mut hub = self.hub.borrow_mut();
        hub.set_now_us(self.now.as_micros());
        hub.snapshot()
    }

    /// Drains the telemetry hub: returns the full timeline and **resets
    /// every registry slot and the trace ring**. Because the traffic and
    /// fault counters are views over the registry, they read zero after a
    /// drain — use [`Simulation::snapshot_telemetry`] for a non-destructive
    /// read, and drain only at window boundaries or end of run.
    pub fn drain_telemetry(&mut self) -> Telemetry {
        let mut hub = self.hub.borrow_mut();
        hub.set_now_us(self.now.as_micros());
        hub.drain()
    }

    /// Caps the trace ring at `capacity` records (drop-oldest beyond it).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.hub.borrow_mut().set_ring_capacity(capacity);
    }

    /// Adds a node, returning its id. Ids are assigned densely from 0 in
    /// insertion order.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation has started running.
    pub fn add_node(&mut self, node: N) -> NodeId {
        assert!(!self.started, "cannot add nodes after the simulation started");
        let id = NodeId(self.nodes.len() as u32);
        self.node_rngs.push(fork(self.seed, id.0 as u64));
        self.nodes.push(node);
        self.down.push(false);
        self.disks.push(Disk::new());
        self.hub.borrow_mut().ensure_nodes(self.nodes.len());
        id
    }

    /// A node's simulated stable storage (inspection between runs).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn disk(&self, id: NodeId) -> &Disk {
        &self.disks[id.index()]
    }

    /// Sets how many of the newest unsynced disk writes a crash destroys.
    /// `usize::MAX` (the default) loses every unsynced write; `0` models a
    /// write-through disk that never loses anything.
    pub fn set_crash_unsynced_loss(&mut self, k: usize) {
        self.crash_unsynced_loss = k;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the simulation holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far (for throughput benchmarks).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// High-water mark of the event queue length (for capacity benchmarks).
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_queue
    }

    /// Immutable access to a node's protocol state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node's protocol state (configuration between runs,
    /// or result extraction).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Whether `id` is currently crashed.
    pub fn is_down(&self, id: NodeId) -> bool {
        self.down[id.index()]
    }

    /// Traffic counters for one node (a view over the telemetry registry).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn counters(&self, id: NodeId) -> TrafficCounters {
        let hub = self.hub.borrow();
        let m = hub.node(id.index()).expect("node id out of range");
        TrafficCounters {
            msgs_sent: m.ctr(ctr::MSGS_SENT),
            bytes_sent: m.ctr(ctr::BYTES_SENT),
            msgs_recv: m.ctr(ctr::MSGS_RECV),
            bytes_recv: m.ctr(ctr::BYTES_RECV),
            msgs_lost: m.ctr(ctr::MSGS_LOST),
            timers_fired: m.ctr(ctr::TIMERS_FIRED),
        }
    }

    /// Sum of all nodes' traffic counters.
    pub fn total_counters(&self) -> TrafficCounters {
        let hub = self.hub.borrow();
        TrafficCounters {
            msgs_sent: hub.counter_total(ctr::MSGS_SENT),
            bytes_sent: hub.counter_total(ctr::BYTES_SENT),
            msgs_recv: hub.counter_total(ctr::MSGS_RECV),
            bytes_recv: hub.counter_total(ctr::BYTES_RECV),
            msgs_lost: hub.counter_total(ctr::MSGS_LOST),
            timers_fired: hub.counter_total(ctr::TIMERS_FIRED),
        }
    }

    fn push(&mut self, time: SimTime, kind: EventKind<N::Msg>) {
        self.seq += 1;
        self.queue.push(QueuedEvent { time, seq: self.seq, kind });
        self.peak_queue = self.peak_queue.max(self.queue.len());
    }

    /// Delivers `msg` to `to` at exactly `at`, as if from
    /// [`NodeId::EXTERNAL`]. Used by experiment harnesses to inject inputs.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_external(&mut self, at: SimTime, to: NodeId, msg: N::Msg) {
        assert!(at >= self.now, "cannot schedule in the past");
        let size = msg.wire_size();
        self.push(at, EventKind::Deliver { from: NodeId::EXTERNAL, to, msg, size });
    }

    /// Schedules a crash of `node` at `at`.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        assert!(at >= self.now, "cannot schedule in the past");
        debug_assert!(
            node.index() < self.nodes.len(),
            "schedule_crash: node {node} out of range (have {})",
            self.nodes.len()
        );
        self.push(at, EventKind::Crash(node));
    }

    /// Schedules a recovery of `node` at `at` under the legacy
    /// "process freeze" model (equivalent to
    /// [`Simulation::schedule_restart`] with [`RestartMode::Freeze`]).
    pub fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        self.schedule_restart(at, node, RestartMode::Freeze);
    }

    /// Schedules a recovery of `node` at `at` under the given restart mode.
    /// `ColdAmnesia` wipes the node's disk before the
    /// [`Node::on_restart`] hook runs.
    pub fn schedule_restart(&mut self, at: SimTime, node: NodeId, mode: RestartMode) {
        assert!(at >= self.now, "cannot schedule in the past");
        debug_assert!(
            node.index() < self.nodes.len(),
            "schedule_restart: node {node} out of range (have {})",
            self.nodes.len()
        );
        self.push(at, EventKind::Recover(node, mode));
    }

    /// Schedules a gray-degradation change of `node` at `at` (`None` heals).
    pub fn schedule_gray(&mut self, at: SimTime, node: NodeId, profile: Option<GrayProfile>) {
        assert!(at >= self.now, "cannot schedule in the past");
        debug_assert!(
            node.index() < self.nodes.len(),
            "schedule_gray: node {node} out of range (have {})",
            self.nodes.len()
        );
        self.push(at, EventKind::SetGray(node, profile));
    }

    /// Schedules a directed link cut from `from` to `to` at `at`. The reverse
    /// direction is unaffected (asymmetric by design).
    pub fn schedule_link_cut(&mut self, at: SimTime, from: NodeId, to: NodeId) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push(at, EventKind::SetLink { from, to, cut: true });
    }

    /// Schedules the heal of a directed link cut at `at`.
    pub fn schedule_link_heal(&mut self, at: SimTime, from: NodeId, to: NodeId) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push(at, EventKind::SetLink { from, to, cut: false });
    }

    /// Schedules a change of the message duplication probability at `at`.
    pub fn schedule_dup_prob(&mut self, at: SimTime, p: f64) {
        assert!(at >= self.now, "cannot schedule in the past");
        assert!((0.0..1.0).contains(&p), "duplication probability out of range");
        self.push(at, EventKind::SetDupProb(p));
    }

    /// Schedules a change of the reordering-jitter knobs at `at`.
    pub fn schedule_reorder(&mut self, at: SimTime, prob: f64, jitter: SimDuration) {
        assert!(at >= self.now, "cannot schedule in the past");
        assert!((0.0..1.0).contains(&prob), "reorder probability out of range");
        self.push(at, EventKind::SetReorder { prob, jitter });
    }

    /// Schedules a partition change at `at` (`None` heals the network).
    pub fn schedule_partition(&mut self, at: SimTime, partition: Option<Partition>) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push(at, EventKind::SetPartition(partition));
    }

    /// Schedules a change of the per-message drop probability at `at`.
    pub fn schedule_drop_prob(&mut self, at: SimTime, p: f64) {
        assert!(at >= self.now, "cannot schedule in the past");
        assert!((0.0..1.0).contains(&p), "drop probability out of range");
        self.push(at, EventKind::SetDropProb(p));
    }

    /// Schedules an adversarial state-corruption strike against `node` at
    /// `at`. `seed` feeds the strike's private RNG stream (forked with the
    /// node id at dispatch), so a schedule of strikes replays bit-for-bit
    /// and never perturbs protocol randomness. Strikes against a crashed
    /// node are silently skipped — there is no state to corrupt.
    pub fn schedule_corruption(&mut self, at: SimTime, node: NodeId, op: CorruptionOp, seed: u64) {
        assert!(at >= self.now, "cannot schedule in the past");
        debug_assert!(
            node.index() < self.nodes.len(),
            "schedule_corruption: node {node} out of range (have {})",
            self.nodes.len()
        );
        self.push(at, EventKind::Corrupt { node, op, seed });
    }

    /// Schedules the installation (`Some`) or removal (`None`) of a liar
    /// behavior on `node` at `at`. While installed, the node's outbound
    /// messages are run through [`Node::tamper_outbound`] with the given
    /// per-message probability.
    pub fn schedule_liar(&mut self, at: SimTime, node: NodeId, behavior: Option<LiarBehavior>) {
        assert!(at >= self.now, "cannot schedule in the past");
        debug_assert!(
            node.index() < self.nodes.len(),
            "schedule_liar: node {node} out of range (have {})",
            self.nodes.len()
        );
        self.push(at, EventKind::SetLiar(node, behavior));
    }

    /// Schedules `node` joining (`true`) or leaving (`false`) the collusion
    /// set at `at`. Membership changes attribution only: corruption strikes
    /// and liar intercepts by a member tally into the `collusion_*` counters
    /// instead of (intercepts) or in addition to (strikes) the solo ones.
    pub fn schedule_colluder(&mut self, at: SimTime, node: NodeId, on: bool) {
        assert!(at >= self.now, "cannot schedule in the past");
        debug_assert!(
            node.index() < self.nodes.len(),
            "schedule_colluder: node {node} out of range (have {})",
            self.nodes.len()
        );
        self.push(at, EventKind::SetColluder(node, on));
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.dispatch_callback(NodeId(i as u32), Callback::Start);
        }
    }

    /// Runs the node callback and then applies the effects it requested.
    fn dispatch_callback(&mut self, id: NodeId, cb: Callback<N::Msg>) {
        let mut effects: Vec<Effect<N::Msg>> = Vec::new();
        {
            // With tracing on, expose the hub to protocol code for the span
            // of the callback (callbacks are instantaneous in sim time, so
            // stamping the clock once here is exact).
            let _obs_guard = if obs::ENABLED {
                self.hub.borrow_mut().set_now_us(self.now.as_micros());
                // Usually a no-op pointer check: the run loops install the
                // hub once for their whole duration (see `run_until`).
                obs::collector::install_if_needed(&self.hub)
            } else {
                None
            };
            let node = &mut self.nodes[id.index()];
            let mut ctx = Context {
                id,
                now: self.now,
                rng: &mut self.node_rngs[id.index()],
                effects: &mut effects,
                next_timer: &mut self.next_timer,
                disk: &mut self.disks[id.index()],
            };
            match cb {
                Callback::Start => node.on_start(&mut ctx),
                Callback::Message { from, msg } => node.on_message(&mut ctx, from, msg),
                Callback::Timer { timer, tag } => node.on_timer(&mut ctx, timer, tag),
                Callback::Recover(mode) => node.on_restart(&mut ctx, mode),
            }
        }
        for eff in effects {
            match eff {
                Effect::Send { to, mut msg } => {
                    // Liar interception sits at the node boundary: the
                    // protocol built an honest message; an installed liar
                    // behavior may rewrite or swallow it on the way out.
                    if let Some(b) = self.liars.get(&id.0).copied() {
                        use rand::Rng;
                        if self.liar_rng.gen::<f64>() < b.prob {
                            let action = self.nodes[id.index()].tamper_outbound(
                                to,
                                &mut msg,
                                b.mode,
                                &mut self.liar_rng,
                            );
                            if action != LiarAction::Pass {
                                let mut hub = self.hub.borrow_mut();
                                // A coordinated lie is attributed to the
                                // collusion group, not the solo-liar tally.
                                let slot = if self.colluders.contains(&id.0) {
                                    ctr::COLLUSION_INTERCEPTS
                                } else {
                                    ctr::LIAR_MESSAGES_INTERCEPTED
                                };
                                hub.global_mut().ctr_add(slot, 1);
                                if obs::ENABLED {
                                    let what = if action == LiarAction::Tampered { 1 } else { 2 };
                                    hub.trace_at(
                                        self.now.as_micros(),
                                        id.0,
                                        Layer::Sim,
                                        kind::LIAR_INTERCEPT,
                                        u64::from(to.0),
                                        what,
                                    );
                                }
                            }
                            if action == LiarAction::Dropped {
                                continue;
                            }
                        }
                    }
                    let size = msg.wire_size();
                    {
                        let mut hub = self.hub.borrow_mut();
                        if let Some(c) = hub.node_mut(id.index()) {
                            c.ctr_add(ctr::MSGS_SENT, 1);
                            c.ctr_add(ctr::BYTES_SENT, size as u64);
                        }
                    }
                    match self.net.route(id, to, &mut self.net_rng) {
                        RouteOutcome::Deliver { copies, jittered } => {
                            if jittered || copies.len() > 1 {
                                let mut hub = self.hub.borrow_mut();
                                let g = hub.global_mut();
                                if jittered {
                                    g.ctr_add(ctr::MSGS_JITTERED, 1);
                                }
                                g.ctr_add(ctr::MSGS_DUPLICATED, copies.len() as u64 - 1);
                            }
                            for &lat in copies.iter().skip(1) {
                                let at = self.now + lat;
                                let copy = msg.clone();
                                self.push(at, EventKind::Deliver { from: id, to, msg: copy, size });
                            }
                            let at = self.now + copies[0];
                            self.push(at, EventKind::Deliver { from: id, to, msg, size });
                        }
                        RouteOutcome::Drop(cause) => {
                            let mut hub = self.hub.borrow_mut();
                            hub.global_mut().ctr_add(drop_cause_slot(cause), 1);
                            if let Some(c) = hub.node_mut(to.index()) {
                                c.ctr_add(ctr::MSGS_LOST, 1);
                            }
                            if obs::ENABLED {
                                hub.trace_at(
                                    self.now.as_micros(),
                                    id.0,
                                    Layer::Sim,
                                    kind::MSG_DROP,
                                    u64::from(to.0),
                                    drop_cause_code(cause),
                                );
                            }
                        }
                    }
                }
                Effect::SetTimer { id: tid, delay, tag } => {
                    let at = self.now + delay;
                    self.pending_timers.insert(tid, at);
                    self.push(at, EventKind::Timer { node: id, id: tid, tag });
                }
                Effect::CancelTimer { id: tid } => {
                    // Cancelling an already-fired (or never-set) timer must
                    // not grow the set forever: only timers still queued are
                    // recorded, keyed to the time their entry self-expires.
                    if let Some(&fire) = self.pending_timers.get(&tid) {
                        self.cancelled.insert(tid, fire);
                    }
                }
            }
        }
    }

    /// Processes the single earliest event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some(ev) = self.queue.pop() else { return false };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        self.events_processed += 1;
        match ev.kind {
            EventKind::Deliver { from, to, msg, size } => {
                let idx = to.index();
                if idx >= self.nodes.len() || self.down[idx] {
                    let mut hub = self.hub.borrow_mut();
                    if let Some(c) = hub.node_mut(idx) {
                        c.ctr_add(ctr::MSGS_LOST, 1);
                    }
                    return true;
                }
                {
                    let mut hub = self.hub.borrow_mut();
                    if let Some(c) = hub.node_mut(idx) {
                        c.ctr_add(ctr::MSGS_RECV, 1);
                        c.ctr_add(ctr::BYTES_RECV, size as u64);
                    }
                    if obs::ENABLED {
                        hub.trace_at(
                            self.now.as_micros(),
                            to.0,
                            Layer::Sim,
                            kind::MSG_DELIVER,
                            u64::from(from.0),
                            size as u64,
                        );
                    }
                }
                self.dispatch_callback(to, Callback::Message { from, msg });
            }
            EventKind::Timer { node, id, tag } => {
                self.pending_timers.remove(&id);
                if self.cancelled.remove(&id).is_some() {
                    return true;
                }
                let idx = node.index();
                if self.down[idx] {
                    return true; // timers expiring while down are lost
                }
                if let Some(c) = self.hub.borrow_mut().node_mut(idx) {
                    c.ctr_add(ctr::TIMERS_FIRED, 1);
                }
                self.dispatch_callback(node, Callback::Timer { timer: id, tag });
            }
            EventKind::Crash(node) => {
                let idx = node.index();
                if !self.down[idx] {
                    self.down[idx] = true;
                    {
                        let mut hub = self.hub.borrow_mut();
                        hub.global_mut().ctr_add(ctr::CRASHES, 1);
                        if obs::ENABLED {
                            hub.trace_at(
                                self.now.as_micros(),
                                node.0,
                                Layer::Sim,
                                kind::NODE_CRASH,
                                0,
                                0,
                            );
                        }
                    }
                    self.nodes[idx].on_crash();
                    // The crash failure model for stable storage: the newest
                    // unsynced writes are destroyed, anything older is
                    // considered to have reached the platter in time.
                    let lost = self.disks[idx].crash(self.crash_unsynced_loss);
                    if lost > 0 {
                        let mut hub = self.hub.borrow_mut();
                        if let Some(c) = hub.node_mut(idx) {
                            c.ctr_add(ctr::DISK_WRITES_LOST, lost as u64);
                        }
                    }
                }
            }
            EventKind::Recover(node, mode) => {
                let idx = node.index();
                if self.down[idx] {
                    self.down[idx] = false;
                    {
                        let mut hub = self.hub.borrow_mut();
                        hub.global_mut().ctr_add(ctr::RECOVERIES, 1);
                        if obs::ENABLED {
                            hub.trace_at(
                                self.now.as_micros(),
                                node.0,
                                Layer::Sim,
                                kind::NODE_RECOVER,
                                0,
                                0,
                            );
                        }
                        if mode != RestartMode::Freeze {
                            let slot = if mode == RestartMode::ColdDurable {
                                ctr::COLD_RESTARTS_DURABLE
                            } else {
                                ctr::COLD_RESTARTS_AMNESIA
                            };
                            hub.global_mut().ctr_add(slot, 1);
                            if obs::ENABLED {
                                hub.trace_at(
                                    self.now.as_micros(),
                                    node.0,
                                    Layer::Sim,
                                    kind::NODE_RESTART,
                                    mode.discriminant(),
                                    self.disks[idx].total_lost(),
                                );
                            }
                        }
                    }
                    if mode == RestartMode::ColdAmnesia {
                        self.disks[idx].wipe();
                    }
                    self.dispatch_callback(node, Callback::Recover(mode));
                }
            }
            EventKind::SetPartition(p) => {
                let healed = p.is_none() && self.net.partition.is_some();
                if p.is_some() || healed {
                    let mut hub = self.hub.borrow_mut();
                    let (slot, k) = if p.is_some() {
                        (ctr::PARTITIONS_STARTED, kind::PARTITION_START)
                    } else {
                        (ctr::PARTITIONS_HEALED, kind::PARTITION_HEAL)
                    };
                    hub.global_mut().ctr_add(slot, 1);
                    if obs::ENABLED {
                        hub.trace_at(
                            self.now.as_micros(),
                            obs::TraceEvent::GLOBAL,
                            Layer::Sim,
                            k,
                            0,
                            0,
                        );
                    }
                }
                self.net.partition = p;
            }
            EventKind::SetDropProb(p) => self.net.drop_prob = p,
            EventKind::SetGray(node, profile) => match profile {
                Some(g) => {
                    self.net.gray.insert(node, g);
                }
                None => {
                    self.net.gray.remove(&node);
                }
            },
            EventKind::SetLink { from, to, cut } => {
                if cut {
                    self.net.cut_links.insert((from, to));
                } else {
                    self.net.cut_links.remove(&(from, to));
                }
            }
            EventKind::SetDupProb(p) => self.net.dup_prob = p,
            EventKind::SetReorder { prob, jitter } => {
                self.net.reorder_prob = prob;
                self.net.reorder_jitter = jitter;
            }
            EventKind::Corrupt { node, op, seed } => {
                let idx = node.index();
                if !self.down[idx] {
                    // Each strike carries its own seed: the RNG handed to
                    // the node (or disk) is private to this event, so the
                    // strike schedule and the damage it does replay
                    // bit-for-bit regardless of what else the run contains.
                    let mut rng = fork(seed, u64::from(node.0));
                    let units = match op {
                        CorruptionOp::DiskBytes { flips } => {
                            self.disks[idx].corrupt(&mut rng, flips)
                        }
                        _ => self.nodes[idx].apply_corruption(&op, &mut rng),
                    };
                    let mut hub = self.hub.borrow_mut();
                    hub.global_mut().ctr_add(ctr::STATE_CORRUPTIONS, 1);
                    if matches!(op, CorruptionOp::ForgeItems { .. }) {
                        hub.global_mut().ctr_add(ctr::FORGED_ITEMS_INJECTED, units);
                    }
                    if obs::ENABLED {
                        hub.trace_at(
                            self.now.as_micros(),
                            node.0,
                            Layer::Sim,
                            kind::STATE_CORRUPT,
                            op.discriminant(),
                            units,
                        );
                    }
                    if self.colluders.contains(&node.0) {
                        hub.global_mut().ctr_add(ctr::COLLUSION_STRIKES, 1);
                        if obs::ENABLED {
                            hub.trace_at(
                                self.now.as_micros(),
                                node.0,
                                Layer::Sim,
                                kind::COLLUSION_STRIKE,
                                op.discriminant(),
                                units,
                            );
                        }
                    }
                }
            }
            EventKind::SetLiar(node, behavior) => match behavior {
                Some(b) => {
                    self.liars.insert(node.0, b);
                }
                None => {
                    self.liars.remove(&node.0);
                }
            },
            EventKind::SetColluder(node, on) => {
                if on {
                    self.colluders.insert(node.0);
                } else {
                    self.colluders.remove(&node.0);
                }
            }
        }
        true
    }

    /// Runs until the simulated clock reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue drains. The clock is left at
    /// `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        // Install the hub once for the whole loop so per-event dispatch
        // skips the thread-local swap (it still restamps the clock).
        let _obs_guard =
            if obs::ENABLED { obs::collector::install_if_needed(&self.hub) } else { None };
        self.start_if_needed();
        while let Some(ev) = self.queue.peek() {
            if ev.time > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
        // Defensive bound for long chaos runs: a cancelled timer whose fire
        // time has passed can never pop again, so its entry is dead weight.
        if self.cancelled.len() > 64 {
            let now = self.now;
            self.cancelled.retain(|_, &mut fire| fire > now);
        }
    }

    /// Runs for `d` of simulated time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Runs until the event queue is empty or `max_events` have been
    /// processed, returning the number of events processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let _obs_guard =
            if obs::ENABLED { obs::collector::install_if_needed(&self.hub) } else { None };
        let before = self.events_processed;
        while self.events_processed - before < max_events && self.step() {}
        self.events_processed - before
    }
}

enum Callback<M> {
    Start,
    Message { from: NodeId, msg: M },
    Timer { timer: TimerId, tag: u64 },
    Recover(RestartMode),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Payload;

    #[derive(Debug, Clone)]
    enum Msg {
        Ping(u32),
    }
    impl Payload for Msg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    /// Forwards externally injected pings to `peer`, then echoes with a
    /// decrementing TTL; counts deliveries and timers.
    #[derive(Default)]
    struct Echo {
        peer: Option<NodeId>,
        got: Vec<(NodeId, u32)>,
        timer_tags: Vec<u64>,
        start_timer: Option<SimDuration>,
        recovered: u32,
    }

    impl Node for Echo {
        type Msg = Msg;
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if let Some(d) = self.start_timer {
                ctx.set_timer(d, 7);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, Msg::Ping(n): Msg) {
            self.got.push((from, n));
            if from == NodeId::EXTERNAL {
                if let Some(peer) = self.peer {
                    ctx.send(peer, Msg::Ping(n));
                }
            } else if n > 0 {
                ctx.send(from, Msg::Ping(n - 1));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _t: TimerId, tag: u64) {
            self.timer_tags.push(tag);
        }
        fn on_recover(&mut self, _ctx: &mut Context<'_, Msg>) {
            self.recovered += 1;
        }
    }

    fn two_node_sim() -> Simulation<Echo> {
        let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(10)), 1);
        sim.add_node(Echo { peer: Some(NodeId(1)), ..Default::default() });
        sim.add_node(Echo { peer: Some(NodeId(0)), ..Default::default() });
        sim
    }

    #[test]
    fn external_injection_and_echo() {
        let mut sim = two_node_sim();
        sim.schedule_external(SimTime::from_secs(1), NodeId(0), Msg::Ping(0));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.node(NodeId(0)).got, vec![(NodeId::EXTERNAL, 0)]);
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn ping_pong_latency_accumulates() {
        let mut sim = two_node_sim();
        // n0 gets Ping(3) from outside, forwards to n1; it bounces back down
        // to TTL 0: n0 -> n1 (3), n1 -> n0 (2), n0 -> n1 (1), n1 -> n0 (0).
        sim.schedule_external(SimTime::ZERO, NodeId(0), Msg::Ping(3));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sim.node(NodeId(0)).got,
            vec![(NodeId::EXTERNAL, 3), (NodeId(1), 2), (NodeId(1), 0)]
        );
        assert_eq!(sim.node(NodeId(1)).got, vec![(NodeId(0), 3), (NodeId(0), 1)]);
        let c0 = sim.counters(NodeId(0));
        assert_eq!(c0.msgs_sent, 2);
        assert_eq!(c0.bytes_sent, 16);
        assert_eq!(c0.msgs_recv, 3);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct T {
            fired: Vec<u64>,
        }
        impl Node for T {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(5), 1);
                let cancel_me = ctx.set_timer(SimDuration::from_millis(6), 2);
                ctx.set_timer(SimDuration::from_millis(7), 3);
                ctx.cancel_timer(cancel_me);
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut Context<'_, ()>, _: TimerId, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut sim = Simulation::new(NetworkModel::default(), 3);
        let id = sim.add_node(T { fired: vec![] });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.node(id).fired, vec![1, 3]);
    }

    #[test]
    fn cancelled_timer_set_stays_bounded() {
        // A node that cancels every timer *after* it fired: the old
        // HashSet grew one entry per cancellation, forever.
        struct LateCancel {
            last: Option<TimerId>,
        }
        impl Node for LateCancel {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                self.last = Some(ctx.set_timer(SimDuration::from_millis(1), 0));
            }
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, ()>, fired: TimerId, _: u64) {
                // `fired` has already popped: cancelling it must be a no-op
                // that leaves no residue.
                ctx.cancel_timer(fired);
                if let Some(prev) = self.last {
                    ctx.cancel_timer(prev);
                }
                self.last = Some(ctx.set_timer(SimDuration::from_millis(1), 0));
            }
        }
        let mut sim = Simulation::new(NetworkModel::default(), 5);
        sim.add_node(LateCancel { last: None });
        for t in 1..=200u64 {
            sim.run_until(SimTime::from_micros(t * 10_000));
        }
        assert!(sim.cancelled.len() <= 1, "cancelled set leaked: {} entries", sim.cancelled.len());
        assert!(sim.pending_timers.len() <= 1, "pending map leaked");
    }

    #[test]
    fn crash_drops_messages_then_recover_delivers() {
        let mut sim = two_node_sim();
        sim.schedule_crash(SimTime::from_secs(1), NodeId(0));
        sim.schedule_external(SimTime::from_secs(2), NodeId(0), Msg::Ping(0));
        sim.schedule_recover(SimTime::from_secs(3), NodeId(0));
        sim.schedule_external(SimTime::from_secs(4), NodeId(0), Msg::Ping(0));
        sim.run_until(SimTime::from_secs(5));
        let n0 = sim.node(NodeId(0));
        assert_eq!(n0.got.len(), 1, "message during downtime must be lost");
        assert_eq!(n0.recovered, 1);
        assert_eq!(sim.counters(NodeId(0)).msgs_lost, 1);
    }

    #[test]
    fn timers_expiring_while_down_are_lost() {
        let mut sim = Simulation::new(NetworkModel::default(), 9);
        let id = sim
            .add_node(Echo { start_timer: Some(SimDuration::from_secs(2)), ..Default::default() });
        sim.schedule_crash(SimTime::from_secs(1), id);
        sim.schedule_recover(SimTime::from_secs(3), id);
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.node(id).timer_tags.is_empty());
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(
                NetworkModel {
                    latency: crate::topology::LatencyModel::Uniform {
                        min: SimDuration::from_millis(1),
                        max: SimDuration::from_millis(50),
                    },
                    drop_prob: 0.1,
                    ..NetworkModel::default()
                },
                seed,
            );
            for i in 0..4u32 {
                sim.add_node(Echo { peer: Some(NodeId((i + 1) % 4)), ..Default::default() });
            }
            for i in 0..20u32 {
                sim.schedule_external(
                    SimTime::from_micros(u64::from(i) * 1000),
                    NodeId(i % 4),
                    Msg::Ping(3),
                );
            }
            sim.run_until(SimTime::from_secs(10));
            (0..4).map(|i| sim.node(NodeId(i)).got.clone()).collect::<Vec<_>>()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn run_to_quiescence_counts_events() {
        let mut sim = two_node_sim();
        sim.schedule_external(SimTime::ZERO, NodeId(0), Msg::Ping(3));
        let n = sim.run_to_quiescence(1000);
        assert_eq!(n, 5); // one injection + 4 inter-node deliveries
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    #[should_panic(expected = "after the simulation started")]
    fn adding_nodes_after_start_panics() {
        let mut sim = two_node_sim();
        sim.run_until(SimTime::from_secs(1));
        sim.add_node(Echo::default());
    }

    #[test]
    fn partition_schedule_applies() {
        let mut sim = two_node_sim();
        sim.schedule_partition(SimTime::ZERO, Some(Partition::split_at(2, 1)));
        sim.schedule_external(SimTime::from_millis_t(1), NodeId(0), Msg::Ping(3));
        sim.run_until(SimTime::from_secs(1));
        // n0 forwards the ping to n1, but the partition cuts the link.
        assert_eq!(sim.node(NodeId(1)).got.len(), 0);
        assert_eq!(sim.counters(NodeId(1)).msgs_lost, 1);
    }

    impl SimTime {
        fn from_millis_t(ms: u64) -> SimTime {
            SimTime::from_micros(ms * 1000)
        }
    }
}
