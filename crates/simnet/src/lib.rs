//! # simnet — deterministic discrete-event network simulation
//!
//! `simnet` is the substrate on which the whole NewsWire reproduction runs.
//! The paper targets Internet-scale deployments; reproducing its claims on a
//! laptop requires a simulator that can model a wide-area network — latency
//! structure, message loss, partitions, node crashes — while running
//! hundreds of thousands of nodes deterministically on virtual time.
//!
//! The design is a classic event-driven simulation:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond virtual time.
//! * [`Node`] — the callback interface protocols implement
//!   (`on_start`/`on_message`/`on_timer`, plus crash/restart hooks).
//! * [`Disk`] / [`RestartMode`] — per-node simulated stable storage
//!   (write/fsync/read, newest unsynced writes lost on crash) and the three
//!   recovery regimes: `Freeze` (volatile state survives), `ColdDurable`
//!   (rebuild from disk), `ColdAmnesia` (rejoin from nothing).
//! * [`Simulation`] — the engine: a priority queue of events ordered by
//!   `(time, seq)`, per-node deterministic RNGs, traffic accounting.
//! * [`NetworkModel`] — pluggable latency ([`LatencyModel`]), loss,
//!   [`Partition`]s, per-node [`GrayProfile`] degradation, directed link
//!   cuts, and duplication/reordering knobs.
//! * [`FaultPlan`] — the chaos engine: declarative, seeded schedules of
//!   Poisson churn, gray brownouts, link cuts, and message-chaos windows,
//!   expanded deterministically by [`Simulation::apply_fault_plan`].
//! * [`PhiAccrualDetector`] — adaptive phi-accrual failure detection
//!   (Hayashibara et al.), shared by protocols that must distinguish
//!   "slow" from "gone" without a fixed timeout cliff.
//! * [`Summary`] / [`Histogram`] / [`TrafficCounters`] /
//!   [`FaultCounters`] — the measurement toolkit experiments use. Since the
//!   observability PR these are views over the per-simulation telemetry
//!   hub ([`Simulation::telemetry`]); the full registry plus the structured
//!   trace ring drain via [`Simulation::drain_telemetry`] into a
//!   deterministic JSON/CSV [`Telemetry`] timeline.
//!
//! # Example
//!
//! ```
//! use simnet::*;
//!
//! struct Counter { seen: u32 }
//! impl Node for Counter {
//!     type Msg = Vec<u8>;
//!     fn on_start(&mut self, _ctx: &mut Context<'_, Vec<u8>>) {}
//!     fn on_message(&mut self, _ctx: &mut Context<'_, Vec<u8>>, _from: NodeId, _m: Vec<u8>) {
//!         self.seen += 1;
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, Vec<u8>>, _t: TimerId, _tag: u64) {}
//! }
//!
//! let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(5)), 7);
//! let a = sim.add_node(Counter { seen: 0 });
//! sim.schedule_external(SimTime::from_secs(1), a, b"hello".to_vec());
//! sim.run_until(SimTime::from_secs(2));
//! assert_eq!(sim.node(a).seen, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk;
mod faults;
mod node;
mod phi;
mod rng;
mod sched;
mod sim;
mod stats;
mod time;
mod topology;

pub use disk::{Disk, RestartMode};
pub use faults::{
    ChurnSpec, CollusionScript, CollusionSpec, CorruptionSpec, FaultPlan, ForgeSpec, GraySpec,
    KeyCompromiseSpec, LiarSpec, LinkCutSpec, MessageChaosSpec, PartitionSpec, SybilSpec,
};
pub use node::{
    Context, CorruptionOp, LiarAction, LiarBehavior, LiarMode, Node, NodeId, Payload, TimerId,
};
pub use obs::{Telemetry, TelemetryHub};
pub use phi::{PhiAccrualDetector, PhiConfig};
pub use rng::{exp_sample, fork, splitmix64};
pub use sched::EventQueue;
pub use sim::Simulation;
pub use stats::{FaultCounters, Histogram, Summary, TrafficCounters};
pub use time::{SimDuration, SimTime};
pub use topology::{DropCause, GrayProfile, LatencyModel, NetworkModel, Partition, RouteOutcome};

/// True when the delta wire protocol is enabled for this process
/// (`NEWSWIRE_DELTAS=1`).
///
/// Read once and cached: the flag selects a *deterministic arm* of the
/// simulation (delta-encoded gossip, item chunk deltas, compressed-wire
/// accounting), so flipping it mid-run is not supported. With the flag
/// off, every delta code path is skipped and runs are byte-identical to
/// builds that predate the delta protocol.
pub fn delta_mode() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| std::env::var("NEWSWIRE_DELTAS").is_ok_and(|v| v == "1"))
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Quantiles are monotone in q and bounded by min/max.
        #[test]
        fn summary_quantiles_monotone(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s: Summary = samples.iter().copied().collect();
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let vals: Vec<f64> = qs.iter().map(|&q| s.quantile(q)).collect();
            prop_assert!(vals.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{vals:?}");
            let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(vals[0] >= lo - 1e-9 && vals[qs.len() - 1] <= hi + 1e-9);
        }

        /// A histogram never loses a sample: buckets + under + over = total.
        #[test]
        fn histogram_conserves_samples(
            samples in proptest::collection::vec(-10f64..10.0, 0..200),
            lo in -5f64..0.0,
            width in 0.5f64..10.0,
            n in 1usize..16,
        ) {
            let mut h = Histogram::new(lo, lo + width, n);
            for &v in &samples { h.record(v); }
            prop_assert_eq!(h.total() as usize, samples.len());
            let bucket_sum: u64 = h.buckets().iter().sum();
            prop_assert_eq!(bucket_sum + h.underflow + h.overflow, samples.len() as u64);
        }

        /// SimTime/SimDuration arithmetic is consistent: (t + d) - t == d.
        #[test]
        fn time_add_sub_roundtrip(t_us in 0u64..1u64 << 50, d_us in 0u64..1u64 << 40) {
            let t = SimTime::from_micros(t_us);
            let d = SimDuration::from_micros(d_us);
            prop_assert_eq!((t + d) - t, d);
            prop_assert_eq!((t + d).saturating_since(t + d), SimDuration::ZERO);
        }

        /// fork() is a pure function of (seed, stream).
        #[test]
        fn fork_pure(seed in any::<u64>(), stream in any::<u64>()) {
            use rand::Rng;
            let a: [u64; 4] = {
                let mut r = fork(seed, stream);
                [r.gen(), r.gen(), r.gen(), r.gen()]
            };
            let b: [u64; 4] = {
                let mut r = fork(seed, stream);
                [r.gen(), r.gen(), r.gen(), r.gen()]
            };
            prop_assert_eq!(a, b);
        }

        /// The latency model never produces out-of-range samples.
        #[test]
        fn uniform_latency_in_bounds(lo_ms in 0u64..50, span_ms in 0u64..100, seed in any::<u64>()) {
            let min = SimDuration::from_millis(lo_ms);
            let max = SimDuration::from_millis(lo_ms + span_ms);
            let m = LatencyModel::Uniform { min, max };
            let mut rng = fork(seed, 0);
            for _ in 0..32 {
                let d = m.sample(NodeId(0), NodeId(1), &mut rng);
                prop_assert!(d >= min && d <= max);
            }
        }
    }
}
