//! Simulated per-node stable storage and the restart-mode taxonomy.
//!
//! The crash model used to be a pure "process freeze": a down node kept all
//! volatile state and resumed where it left off. Real deployments recover
//! from *disk* — or from nothing — so the engine now gives every node a
//! [`Disk`]: a key→bytes store with an explicit write buffer. `write` is
//! cheap and volatile; only [`Disk::fsync`] moves buffered writes to the
//! durable area. A crash loses the last *k* unsynced writes (configurable on
//! the simulation, defaulting to all of them) — the standard failure model
//! for write-behind storage.
//!
//! [`RestartMode`] names what a recovering node gets back:
//!
//! - [`RestartMode::Freeze`] — today's legacy behavior: volatile state
//!   survives the outage untouched. The disk is untouched too.
//! - [`RestartMode::ColdDurable`] — volatile state is gone; whatever was
//!   fsynced to the disk survives.
//! - [`RestartMode::ColdAmnesia`] — everything is gone, disk included. The
//!   node rejoins as if newly installed.

use std::collections::BTreeMap;

/// What a node gets back when it recovers from a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RestartMode {
    /// Process freeze: all volatile state survives (legacy default).
    #[default]
    Freeze,
    /// Cold restart from stable storage: volatile state wiped, disk intact.
    ColdDurable,
    /// Cold restart from nothing: volatile state and disk both wiped.
    ColdAmnesia,
}

impl RestartMode {
    /// Stable numeric discriminant for trace records (0/1/2).
    pub fn discriminant(self) -> u64 {
        match self {
            RestartMode::Freeze => 0,
            RestartMode::ColdDurable => 1,
            RestartMode::ColdAmnesia => 2,
        }
    }

    /// Stable lowercase name (used in tables and exports).
    pub fn name(self) -> &'static str {
        match self {
            RestartMode::Freeze => "freeze",
            RestartMode::ColdDurable => "cold_durable",
            RestartMode::ColdAmnesia => "cold_amnesia",
        }
    }
}

impl std::fmt::Display for RestartMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Simulated stable storage: a key→bytes store with write-behind semantics.
///
/// Writes land in an ordered buffer; [`Disk::fsync`] makes them durable.
/// Reads see buffered writes (read-your-writes), mirroring an OS page
/// cache. [`Disk::crash`] applies the crash failure model: the most recent
/// `lose_last` unsynced writes vanish, anything older is considered to have
/// reached the platter by the time the machine died.
#[derive(Debug, Clone, Default)]
pub struct Disk {
    durable: BTreeMap<String, Vec<u8>>,
    /// Unsynced writes, oldest first. Same-key rewrites are kept in order so
    /// losing the tail exposes the previous (older) buffered value.
    pending: Vec<(String, Vec<u8>)>,
    writes: u64,
    fsyncs: u64,
    lost: u64,
}

impl Disk {
    /// An empty disk.
    pub fn new() -> Self {
        Disk::default()
    }

    /// Buffers a write of `bytes` under `key`. Not durable until
    /// [`Disk::fsync`].
    pub fn write(&mut self, key: impl Into<String>, bytes: Vec<u8>) {
        self.pending.push((key.into(), bytes));
        self.writes += 1;
    }

    /// Flushes all buffered writes to the durable area, in write order.
    pub fn fsync(&mut self) {
        for (key, bytes) in self.pending.drain(..) {
            self.durable.insert(key, bytes);
        }
        self.fsyncs += 1;
    }

    /// The current value of `key`, seeing buffered writes first
    /// (read-your-writes).
    pub fn read(&self, key: &str) -> Option<&[u8]> {
        self.pending
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_slice())
            .or_else(|| self.durable.get(key).map(Vec::as_slice))
    }

    /// Applies the crash failure model: the newest `lose_last` buffered
    /// writes are lost, the remainder is treated as having reached the
    /// durable area. Returns how many writes were lost.
    pub fn crash(&mut self, lose_last: usize) -> usize {
        let lost = lose_last.min(self.pending.len());
        self.pending.truncate(self.pending.len() - lost);
        for (key, bytes) in self.pending.drain(..) {
            self.durable.insert(key, bytes);
        }
        self.lost += lost as u64;
        lost
    }

    /// Flips `flips` random bits across the stored values — torn state, the
    /// adversarial complement of [`Disk::crash`]'s *lost* state. Buffered
    /// writes are torn too (the page cache is memory like any other).
    /// Deterministic for a given `rng` state: targets are drawn over the
    /// `BTreeMap`'s stable iteration order. Returns how many bits were
    /// actually flipped (zero on an empty disk).
    pub fn corrupt(&mut self, rng: &mut rand::rngs::SmallRng, flips: u32) -> u64 {
        use rand::Rng;
        let mut targets: Vec<&mut Vec<u8>> = self
            .durable
            .values_mut()
            .chain(self.pending.iter_mut().map(|(_, v)| v))
            .filter(|v| !v.is_empty())
            .collect();
        if targets.is_empty() {
            return 0;
        }
        let mut flipped = 0u64;
        for _ in 0..flips {
            let t = rng.gen_range(0..targets.len());
            let buf = &mut targets[t];
            let byte = rng.gen_range(0..buf.len());
            let bit = rng.gen_range(0..8u8);
            buf[byte] ^= 1 << bit;
            flipped += 1;
        }
        flipped
    }

    /// Erases everything — durable area, buffer, and counters stay; the
    /// data is gone (the `ColdAmnesia` model).
    pub fn wipe(&mut self) {
        self.durable.clear();
        self.pending.clear();
    }

    /// Number of durable keys (buffered-only keys not counted).
    pub fn len(&self) -> usize {
        self.durable.len()
    }

    /// True when the disk holds nothing, buffered or durable.
    pub fn is_empty(&self) -> bool {
        self.durable.is_empty() && self.pending.is_empty()
    }

    /// Unsynced writes currently buffered.
    pub fn pending_writes(&self) -> usize {
        self.pending.len()
    }

    /// Total writes buffered over the disk's lifetime.
    pub fn total_writes(&self) -> u64 {
        self.writes
    }

    /// Total fsyncs over the disk's lifetime.
    pub fn total_fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Total writes lost to crashes over the disk's lifetime.
    pub fn total_lost(&self) -> u64 {
        self.lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_writes_before_fsync() {
        let mut d = Disk::new();
        d.write("a", b"one".to_vec());
        assert_eq!(d.read("a"), Some(&b"one"[..]), "buffered write visible");
        assert_eq!(d.len(), 0, "not durable yet");
        d.write("a", b"two".to_vec());
        assert_eq!(d.read("a"), Some(&b"two"[..]), "newest buffered wins");
        d.fsync();
        assert_eq!(d.read("a"), Some(&b"two"[..]));
        assert_eq!(d.len(), 1);
        assert_eq!(d.pending_writes(), 0);
    }

    #[test]
    fn crash_loses_newest_unsynced_writes() {
        let mut d = Disk::new();
        d.write("a", b"v1".to_vec());
        d.fsync();
        d.write("a", b"v2".to_vec());
        d.write("b", b"w1".to_vec());
        d.write("a", b"v3".to_vec());
        // Lose the last two: a=v3 and b=w1 vanish, a=v2 reached the platter.
        assert_eq!(d.crash(2), 2);
        assert_eq!(d.read("a"), Some(&b"v2"[..]));
        assert_eq!(d.read("b"), None);
        assert_eq!(d.total_lost(), 2);
    }

    #[test]
    fn crash_losing_everything_keeps_last_fsync() {
        let mut d = Disk::new();
        d.write("k", b"durable".to_vec());
        d.fsync();
        d.write("k", b"volatile".to_vec());
        assert_eq!(d.crash(usize::MAX), 1);
        assert_eq!(d.read("k"), Some(&b"durable"[..]));
    }

    #[test]
    fn crash_losing_nothing_syncs_the_buffer() {
        let mut d = Disk::new();
        d.write("k", b"v".to_vec());
        assert_eq!(d.crash(0), 0);
        assert_eq!(d.read("k"), Some(&b"v"[..]), "k=0: every write survived");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn wipe_erases_all_state() {
        let mut d = Disk::new();
        d.write("k", b"v".to_vec());
        d.fsync();
        d.write("l", b"w".to_vec());
        d.wipe();
        assert!(d.is_empty());
        assert_eq!(d.read("k"), None);
        assert_eq!(d.read("l"), None);
    }

    #[test]
    fn corrupt_flips_bits_deterministically() {
        let build = || {
            let mut d = Disk::new();
            d.write("a", vec![0u8; 16]);
            d.fsync();
            d.write("b", vec![0u8; 16]);
            d
        };
        let (mut d1, mut d2) = (build(), build());
        let mut r1 = crate::rng::fork(7, 3);
        let mut r2 = crate::rng::fork(7, 3);
        assert_eq!(d1.corrupt(&mut r1, 5), 5);
        assert_eq!(d2.corrupt(&mut r2, 5), 5);
        assert_eq!(d1.read("a"), d2.read("a"), "same rng, same torn bytes");
        assert_eq!(d1.read("b"), d2.read("b"));
        let torn = d1.read("a") != Some(&[0u8; 16][..]) || d1.read("b") != Some(&[0u8; 16][..]);
        assert!(torn, "five flips must tear something");
        // An empty disk has nothing to tear.
        assert_eq!(Disk::new().corrupt(&mut r1, 3), 0);
    }

    #[test]
    fn restart_mode_names_and_discriminants() {
        assert_eq!(RestartMode::default(), RestartMode::Freeze);
        for (m, d, n) in [
            (RestartMode::Freeze, 0, "freeze"),
            (RestartMode::ColdDurable, 1, "cold_durable"),
            (RestartMode::ColdAmnesia, 2, "cold_amnesia"),
        ] {
            assert_eq!(m.discriminant(), d);
            assert_eq!(m.name(), n);
            assert_eq!(m.to_string(), n);
        }
    }
}
