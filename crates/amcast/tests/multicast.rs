//! Integration tests: SendToZone dissemination on full simulated networks.

use amcast::{
    FilterSpec, McastConfig, McastData, McastMsg, McastNode, PbcastConfig, PbcastMsg, PbcastNode,
};
use astrolabe::{Agent, AttrValue, Config, ZoneId, ZoneLayout};
use bytes::Bytes;
use filters::BitArray;
use simnet::{fork, NetworkModel, NodeId, SimDuration, SimTime, Simulation};

fn build(
    n: u32,
    branching: u16,
    cfg: McastConfig,
    net: NetworkModel,
    seed: u64,
) -> Simulation<McastNode> {
    let layout = ZoneLayout::new(n, branching);
    let mut aconfig = Config::standard();
    aconfig.branching = branching;
    let mut contact_rng = fork(seed, 999);
    let mut sim = Simulation::new(net, seed);
    for i in 0..n {
        let contacts: Vec<u32> =
            (0..3).map(|_| rand::Rng::gen_range(&mut contact_rng, 0..n)).collect();
        let agent = Agent::new(i, &layout, aconfig.clone(), contacts);
        sim.add_node(McastNode::new(agent, cfg.clone()));
    }
    sim
}

fn publish_all(sim: &mut Simulation<McastNode>, at: SimTime, origin: u32, id: u64) {
    let data = McastData {
        id,
        origin,
        priority: 3,
        payload: Bytes::from_static(b"item"),
        filter: FilterSpec::All,
    };
    sim.schedule_external(at, NodeId(origin), McastMsg::Publish { data, scope: ZoneId::root() });
}

fn delivered(sim: &Simulation<McastNode>, id: u64) -> usize {
    sim.iter().filter(|(_, n)| n.has_delivered(id)).count()
}

#[test]
fn full_dissemination_three_levels() {
    let mut sim = build(120, 5, McastConfig::default(), NetworkModel::default(), 1);
    sim.run_until(SimTime::from_secs(45));
    publish_all(&mut sim, SimTime::from_secs(45), 17, 1000);
    sim.run_until(SimTime::from_secs(55));
    assert_eq!(delivered(&sim, 1000), 120);
}

#[test]
fn delivery_latency_is_seconds_not_minutes() {
    let mut sim = build(64, 4, McastConfig::default(), NetworkModel::default(), 2);
    sim.run_until(SimTime::from_secs(45));
    let t0 = SimTime::from_secs(45);
    publish_all(&mut sim, t0, 0, 2000);
    sim.run_until(SimTime::from_secs(60));
    let mut worst = SimDuration::ZERO;
    for (_, node) in sim.iter() {
        let (_, at) = node.deliveries.iter().find(|&&(id, _)| id == 2000).expect("delivered");
        worst = worst.max(at.saturating_since(t0));
    }
    assert!(worst < SimDuration::from_secs(5), "worst latency {worst}");
}

#[test]
fn bloom_filtering_prunes_uninterested_subtrees() {
    // Leaf nodes publish a subscription bit array as `subs`; the deployment
    // installs an ORBITS aggregation; only matching members deliver.
    let n = 48;
    let layout = ZoneLayout::new(n, 4);
    let mut aconfig = Config::standard();
    aconfig.branching = 4;
    aconfig.aggregations.push(astrolabe::AggSpec::new("subs", "SELECT ORBITS(subs) AS subs"));
    let mut sim = Simulation::new(NetworkModel::default(), 7);
    let mut contact_rng = fork(7, 999);
    for i in 0..n {
        let contacts: Vec<u32> =
            (0..3).map(|_| rand::Rng::gen_range(&mut contact_rng, 0..n)).collect();
        let mut agent = Agent::new(i, &layout, aconfig.clone(), contacts);
        let mut bits = BitArray::new(64);
        if i % 5 == 0 {
            bits.set(9); // every 5th node subscribes to "bit 9"
        }
        bits.set(10 + usize::from(i as u16 % 54)); // noise bits, disjoint from bit 9
        agent.set_local_attr("subs", AttrValue::Bits(bits));
        sim.add_node(McastNode::new(agent, McastConfig::default()));
    }
    sim.run_until(SimTime::from_secs(60));
    let data = McastData {
        id: 3000,
        origin: 0,
        priority: 3,
        payload: Bytes::from_static(b"tech"),
        filter: FilterSpec::BloomPositions { attr: "subs".into(), positions: vec![9] },
    };
    sim.schedule_external(
        SimTime::from_secs(60),
        NodeId(0),
        McastMsg::Publish { data, scope: ZoneId::root() },
    );
    sim.run_until(SimTime::from_secs(70));
    for (id, node) in sim.iter() {
        let should = id.0 % 5 == 0;
        assert_eq!(node.has_delivered(3000), should, "node {id} subscription mismatch");
    }
}

#[test]
fn scoped_publish_stays_inside_zone() {
    // E9's property: publishing into a sub-zone must not leak outside it.
    let n = 64u32;
    let mut sim = build(n, 4, McastConfig::default(), NetworkModel::default(), 11);
    sim.run_until(SimTime::from_secs(45));
    let layout = ZoneLayout::new(n, 4);
    // Publish into the top-level zone containing node 20 ("Asia").
    let scope = layout.leaf_zone(20).ancestor_at(1);
    let inside = layout.agents_under(&scope);
    let data = McastData {
        id: 4000,
        origin: 20,
        priority: 3,
        payload: Bytes::from_static(b"regional"),
        filter: FilterSpec::All,
    };
    sim.schedule_external(
        SimTime::from_secs(45),
        NodeId(20),
        McastMsg::Publish { data, scope: scope.clone() },
    );
    sim.run_until(SimTime::from_secs(55));
    for (id, node) in sim.iter() {
        let should = inside.contains(&id.0);
        assert_eq!(node.has_delivered(4000), should, "containment violated at {id}");
    }
    assert_eq!(delivered(&sim, 4000), inside.len());
}

#[test]
fn redundant_reps_survive_forwarder_failures() {
    // Kill a slice of nodes right at publish time; with k=2 redundancy the
    // remaining forwarders still cover (almost) every live subscriber.
    let n = 96u32;
    let cfg = McastConfig { redundancy: 2, ..Default::default() };
    let mut sim = build(n, 4, cfg, NetworkModel::default(), 13);
    sim.run_until(SimTime::from_secs(45));
    // Crash 10 random-ish non-origin nodes (spread deterministically).
    let victims: Vec<u32> = (0..n).filter(|i| i % 9 == 3).collect();
    for &v in &victims {
        sim.schedule_crash(SimTime::from_secs(45), NodeId(v));
    }
    publish_all(&mut sim, SimTime::from_secs(45), 0, 5000);
    sim.run_until(SimTime::from_secs(55));
    let live: Vec<u32> = (0..n).filter(|i| !victims.contains(i)).collect();
    let got = live.iter().filter(|&&i| sim.node(NodeId(i)).has_delivered(5000)).count();
    let ratio = got as f64 / live.len() as f64;
    assert!(ratio >= 0.9, "only {got}/{} live nodes delivered", live.len());
}

#[test]
fn duplicates_are_suppressed_not_delivered_twice() {
    let cfg = McastConfig { redundancy: 3, ..Default::default() };
    let mut sim = build(32, 4, cfg, NetworkModel::default(), 17);
    sim.run_until(SimTime::from_secs(45));
    publish_all(&mut sim, SimTime::from_secs(45), 0, 6000);
    sim.run_until(SimTime::from_secs(55));
    let mut dup_drops = 0u64;
    for (_, node) in sim.iter() {
        let copies = node.deliveries.iter().filter(|&&(id, _)| id == 6000).count();
        assert!(copies <= 1, "double delivery");
        dup_drops += node.stats.duplicates_dropped;
    }
    assert_eq!(delivered(&sim, 6000), 32);
    assert!(dup_drops > 0, "k=3 must actually produce suppressed duplicates");
}

#[test]
fn pbcast_is_bimodal_under_heavy_loss_astrolabe_mcast_hits_interior() {
    // Sanity version of E8's headline comparison: under heavy loss and NO
    // repair rounds (buffer flushed instantly), pbcast per-multicast
    // delivery fractions spread; with repair they concentrate near 1.
    let n = 40u32;
    let mut net = NetworkModel::ideal(SimDuration::from_millis(15));
    net.drop_prob = 0.3;
    let membership: Vec<u32> = (0..n).collect();
    let mut sim = Simulation::new(net, 23);
    for _ in 0..n {
        sim.add_node(PbcastNode::new(membership.clone(), PbcastConfig::default()));
    }
    for m in 0..20u64 {
        sim.schedule_external(
            SimTime::from_secs(1 + m),
            NodeId((m % u64::from(n)) as u32),
            PbcastMsg::Publish { id: m, len: 64 },
        );
    }
    sim.run_until(SimTime::from_secs(60));
    for m in 0..20u64 {
        let frac = sim.iter().filter(|(_, node)| node.has_delivered(m)).count() as f64 / n as f64;
        assert!(frac > 0.95, "msg {m} delivered to {frac}");
    }
}
