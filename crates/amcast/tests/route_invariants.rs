//! Structural invariants of the `route` computation, checked against a
//! converged agent population (synchronous rounds, no network effects).

use std::collections::HashMap;

use amcast::{route, Action, FilterSpec};
use astrolabe::{Agent, Config, ZoneId, ZoneLayout};
use simnet::{fork, SimTime};

fn converged_agents(n: u32, branching: u16, seed: u64) -> (Vec<Agent>, ZoneLayout) {
    let layout = ZoneLayout::new(n, branching);
    let mut config = Config::standard();
    config.branching = branching;
    let mut agents: Vec<Agent> =
        (0..n).map(|i| Agent::new(i, &layout, config.clone(), vec![0, n / 2])).collect();
    let mut rng = fork(seed, 0);
    for round in 1..=25u64 {
        let now = SimTime::from_secs(round);
        let mut inflight = Vec::new();
        for a in agents.iter_mut() {
            for (to, m) in a.on_tick(now, &mut rng) {
                inflight.push((a.id(), to, m));
            }
        }
        while let Some((from, to, msg)) = inflight.pop() {
            if let Some(b) = agents.iter_mut().find(|a| a.id() == to) {
                for (to2, m2) in b.on_message(now, from, msg, &mut rng) {
                    inflight.push((to, to2, m2));
                }
            }
        }
    }
    (agents, layout)
}

#[test]
fn route_actions_satisfy_structural_invariants() {
    let (agents, layout) = converged_agents(48, 4, 11);
    let filter = FilterSpec::All;
    for agent in &agents {
        for k in [1usize, 2] {
            let mut rng = fork(99, u64::from(agent.id()));
            let actions = route(agent, &filter, &ZoneId::root(), k, &mut rng);
            assert!(!actions.is_empty(), "agent {} produced no actions", agent.id());

            let mut forwards_per_zone: HashMap<ZoneId, Vec<u32>> = HashMap::new();
            let mut local = 0;
            for a in &actions {
                match a {
                    Action::DeliverLocal => local += 1,
                    Action::Deliver { member } => {
                        // Final-hop targets are members of this agent's own
                        // leaf zone.
                        assert_eq!(
                            layout.leaf_zone(*member),
                            layout.leaf_zone(agent.id()),
                            "agent {} delivers outside its leaf zone",
                            agent.id()
                        );
                        assert_ne!(*member, agent.id(), "self handled by DeliverLocal");
                    }
                    Action::Forward { rep, zone } => {
                        assert_ne!(*rep, agent.id(), "never forwards to itself");
                        assert!(
                            zone.is_ancestor_of(&layout.leaf_zone(*rep)),
                            "agent {}: rep {} is not under the zone {} it must cover",
                            agent.id(),
                            rep,
                            zone
                        );
                        forwards_per_zone.entry(zone.clone()).or_default().push(*rep);
                    }
                }
            }
            assert_eq!(local, 1, "FilterSpec::All delivers locally exactly once");
            for (zone, reps) in &forwards_per_zone {
                assert!(reps.len() <= k, "zone {zone} got {} reps for k={k}", reps.len());
                let mut dedup = reps.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(dedup.len(), reps.len(), "duplicate reps for {zone}");
            }
        }
    }
}

#[test]
fn route_is_deterministic_given_rng() {
    let (agents, _) = converged_agents(48, 4, 12);
    let agent = &agents[7];
    let a1 = route(agent, &FilterSpec::All, &ZoneId::root(), 2, &mut fork(5, 5));
    let a2 = route(agent, &FilterSpec::All, &ZoneId::root(), 2, &mut fork(5, 5));
    assert_eq!(a1, a2);
}

#[test]
fn relay_toward_foreign_zone_goes_through_its_subtree() {
    let (agents, layout) = converged_agents(48, 4, 13);
    // Pick an agent and a top-level zone it is NOT under.
    let agent = &agents[0];
    let own_top = layout.leaf_zone(0).path()[0];
    let foreign_top = if own_top == 0 { 1 } else { 0 };
    let target = ZoneId::root().child(foreign_top).child(0);
    let actions = route(agent, &FilterSpec::All, &target, 1, &mut fork(7, 7));
    assert!(!actions.is_empty(), "relay must find a representative");
    for a in &actions {
        match a {
            Action::Forward { rep, zone } => {
                assert_eq!(zone, &target, "relay preserves the original target zone");
                assert!(
                    ZoneId::root().child(foreign_top).is_ancestor_of(&layout.leaf_zone(*rep)),
                    "relay rep must live under the target's top-level zone"
                );
            }
            other => panic!("relay produced a non-forward action {other:?}"),
        }
    }
}
