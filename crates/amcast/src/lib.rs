//! # amcast — application-level multicast over Astrolabe
//!
//! The dissemination layer of the NewsWire reproduction (paper §5–§6, §9):
//!
//! * [`route`] — the recursive `SendToZone(zone, data)` computation over a
//!   node's replicated zone tables, with conditional forwarding gated by
//!   [`FilterSpec`] (Bloom positions or category masks).
//! * [`ForwardingQueues`] — per-child forwarding queues under pluggable
//!   disciplines ([`Strategy::Fifo`] / [`Strategy::WeightedRoundRobin`] /
//!   [`Strategy::Priority`]).
//! * [`DedupWindow`] / [`CoverageWindow`] — duplicate suppression for
//!   `k`-redundant representative forwarding.
//! * [`ForwardLog`] — the forwarding component's bounded operational log
//!   (§9: "each forwarding component maintains a log file").
//! * [`SeqLog`] — epoch/sequence-numbered per-source article logs whose
//!   fixed-size [`RangeSummary`] digests piggyback on gossip to drive
//!   anti-entropy hole detection after partitions.
//! * [`McastNode`] — the composed simulated node (Astrolabe agent +
//!   forwarding component).
//! * [`PbcastNode`] — Bimodal Multicast, the yardstick protocol of §5.
//!
//! # Example
//!
//! ```
//! use amcast::{FilterSpec, McastConfig, McastData, McastMsg, McastNode};
//! use astrolabe::{Agent, Config, ZoneId, ZoneLayout};
//! use simnet::{NetworkModel, NodeId, SimDuration, SimTime, Simulation};
//!
//! let n = 16;
//! let layout = ZoneLayout::new(n, 4);
//! let mut config = Config::standard();
//! config.branching = 4;
//! let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(10)), 3);
//! for i in 0..n {
//!     let agent = Agent::new(i, &layout, config.clone(), vec![0]);
//!     sim.add_node(McastNode::new(agent, McastConfig::default()));
//! }
//! // Let membership and representative election converge…
//! sim.run_until(SimTime::from_secs(40));
//! // …then multicast from node 0 to the whole system.
//! let data = McastData {
//!     id: 424242,
//!     origin: 0,
//!     priority: 3,
//!     payload: bytes::Bytes::from_static(b"breaking"),
//!     filter: FilterSpec::All,
//! };
//! sim.schedule_external(
//!     SimTime::from_secs(40),
//!     NodeId(0),
//!     McastMsg::Publish { data, scope: ZoneId::root() },
//! );
//! sim.run_until(SimTime::from_secs(50));
//! let delivered = sim.iter().filter(|(_, node)| node.has_delivered(424242)).count();
//! assert_eq!(delivered, n as usize);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bimodal;
mod dedup;
mod log;
mod mcast;
mod node;
mod queues;
mod seqlog;

pub use bimodal::{PbcastConfig, PbcastMsg, PbcastNode};
pub use dedup::{CoverageWindow, DedupWindow};
pub use log::{ForwardEvent, ForwardLog, LogRecord};
pub use mcast::{route, zone_reps, Action, FilterSpec, McastData};
pub use node::{McastConfig, McastMsg, McastNode, McastStats};
pub use queues::{ForwardingQueues, Queued, Strategy};
pub use seqlog::{BaselineHint, RangeSummary, SeqLog};

#[cfg(test)]
mod proptests {
    use super::Strategy as QStrategy;
    use super::{CoverageWindow, DedupWindow, ForwardingQueues, SeqLog};
    use proptest::prelude::*;

    proptest! {
        /// The dedup window admits each distinct id at most once while it
        /// remains within capacity.
        #[test]
        fn dedup_single_admission(ids in proptest::collection::vec(0u64..50, 1..100)) {
            let mut w = DedupWindow::new(1000);
            let mut first = std::collections::HashSet::new();
            for id in ids {
                prop_assert_eq!(w.insert(id), first.insert(id));
            }
        }

        /// Every queue discipline conserves items: n pushes then n pops,
        /// and never more.
        #[test]
        fn queues_conserve_items(
            entries in proptest::collection::vec((0u16..6, 0u64..1000, 1u8..9), 0..60),
            strat in prop_oneof![
                Just(QStrategy::Fifo),
                Just(QStrategy::WeightedRoundRobin),
                Just(QStrategy::Priority)
            ],
        ) {
            let mut q = ForwardingQueues::new(strat);
            for (i, (child, t, p)) in entries.iter().enumerate() {
                q.push(*child, *t, *p, i);
            }
            let mut popped: Vec<usize> =
                std::iter::from_fn(|| q.pop().map(|e| e.item)).collect();
            prop_assert_eq!(popped.len(), entries.len());
            popped.sort_unstable();
            prop_assert!(popped.iter().enumerate().all(|(i, &v)| i == v));
            prop_assert!(q.pop().is_none());
        }

        /// Priority discipline yields a non-decreasing priority sequence.
        #[test]
        fn priority_orders_by_urgency(
            entries in proptest::collection::vec((0u16..4, 1u8..9), 1..40),
        ) {
            let mut q = ForwardingQueues::new(QStrategy::Priority);
            for (i, (child, p)) in entries.iter().enumerate() {
                q.push(*child, i as u64, *p, ());
            }
            let ps: Vec<u8> = std::iter::from_fn(|| q.pop().map(|e| e.priority)).collect();
            prop_assert!(ps.windows(2).all(|w| w[0] <= w[1]), "{ps:?}");
        }

        /// SeqLog summaries stay arithmetically consistent under arbitrary
        /// insertion orders and capacities: the retained count plus the gap
        /// mass always equals the knowledge window, and gaps are sorted,
        /// disjoint, in-window ranges.
        #[test]
        fn seqlog_summary_accounts_for_window(
            seqs in proptest::collection::vec(0u64..200, 0..80),
            cap in 1usize..32,
        ) {
            let mut log = SeqLog::new(cap);
            for s in seqs {
                log.insert(s, ());
            }
            let summary = log.summary();
            prop_assert_eq!(summary.present, log.len() as u64);
            let gap_mass: u64 = log.gaps().iter().map(|(lo, hi)| hi - lo + 1).sum();
            prop_assert_eq!(summary.present + gap_mass, summary.next - summary.floor);
            let gaps = log.gaps();
            prop_assert!(gaps.iter().all(|(lo, hi)| lo <= hi && *lo >= summary.floor
                && *hi < summary.next));
            prop_assert!(gaps.windows(2).all(|w| w[0].1 + 1 < w[1].0));
            // A peer with our own summary offers exactly our gaps.
            prop_assert_eq!(log.missing_given(&summary), gaps);
        }

        /// Coverage admission is monotone: once admitted at depth d, all
        /// depths >= d are refused until a strictly wider duty arrives.
        #[test]
        fn coverage_monotone(depths in proptest::collection::vec(0usize..6, 1..40)) {
            let mut w = CoverageWindow::new(64);
            let mut best: Option<usize> = None;
            for d in depths {
                let expect = best.is_none_or(|b| d < b);
                prop_assert_eq!(w.admit(7, d), expect);
                if expect {
                    best = Some(d);
                }
            }
        }
    }
}
