//! The multicast forwarding component, composed with an Astrolabe agent
//! into one simulated node.

use astrolabe::{Agent, GossipMsg, ZoneId};
use obs::{ctr, gauge, kind, Layer};
use rand::Rng;
use simnet::{Context, Node, NodeId, Payload, SimDuration, SimTime, TimerId};

use crate::dedup::{CoverageWindow, DedupWindow};
use crate::log::{ForwardEvent, ForwardLog, LogRecord};
use crate::mcast::{route, Action, McastData};
use crate::queues::{ForwardingQueues, Strategy};

/// Messages exchanged by multicast nodes.
#[derive(Debug, Clone)]
pub enum McastMsg {
    /// Astrolabe gossip piggybacking on the same node.
    Gossip(GossipMsg),
    /// Injected at the origin: start disseminating within `scope`.
    Publish {
        /// The item.
        data: McastData,
        /// The zone to disseminate in (root for global delivery).
        scope: ZoneId,
    },
    /// Cover `zone` with `data` (representative-to-representative hop).
    Forward {
        /// The item.
        data: McastData,
        /// The zone the receiver must cover.
        zone: ZoneId,
    },
    /// Final hop to a leaf-zone member.
    Deliver {
        /// The item.
        data: McastData,
    },
}

impl Payload for McastMsg {
    fn wire_size(&self) -> usize {
        match self {
            McastMsg::Gossip(g) => g.wire_size(),
            McastMsg::Publish { data, scope } | McastMsg::Forward { data, zone: scope } => {
                data.wire_size() + 2 + scope.depth() * 2
            }
            McastMsg::Deliver { data } => data.wire_size(),
        }
    }
}

/// Multicast-layer configuration.
#[derive(Debug, Clone)]
pub struct McastConfig {
    /// Representatives used per interested child (`k` of paper §9).
    pub redundancy: usize,
    /// Service time per forwarded message (models forwarding bandwidth;
    /// queues build up when the offered load exceeds it).
    pub service_interval: SimDuration,
    /// Queue discipline.
    pub strategy: Strategy,
    /// Duplicate-suppression window size.
    pub dedup_capacity: usize,
}

impl Default for McastConfig {
    fn default() -> Self {
        McastConfig {
            redundancy: 1,
            service_interval: SimDuration::from_micros(500),
            strategy: Strategy::WeightedRoundRobin,
            dedup_capacity: 4096,
        }
    }
}

/// Counters exposed for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McastStats {
    /// Forward/Deliver messages this node transmitted.
    pub forwards_sent: u64,
    /// Duplicate forwards/deliveries suppressed.
    pub duplicates_dropped: u64,
    /// Items that could not be routed (zone off this node's path).
    pub route_failures: u64,
    /// Peak queue length observed.
    pub peak_queue: usize,
}

const GOSSIP_TIMER: u64 = 1;
const DRAIN_TIMER: u64 = 2;

/// One simulated node: Astrolabe agent + forwarding component.
#[derive(Debug)]
pub struct McastNode {
    /// The embedded Astrolabe agent.
    pub agent: Agent,
    cfg: McastConfig,
    coverage: CoverageWindow,
    seen: DedupWindow,
    /// Local deliveries: `(message id, delivery time)`.
    pub deliveries: Vec<(u64, SimTime)>,
    /// Forwarding counters.
    pub stats: McastStats,
    /// The §9 forwarding log.
    pub log: ForwardLog,
    queues: ForwardingQueues<(NodeId, McastMsg)>,
    draining: bool,
}

impl McastNode {
    /// Builds the node around an agent.
    pub fn new(agent: Agent, cfg: McastConfig) -> Self {
        let strategy = cfg.strategy;
        let cap = cfg.dedup_capacity;
        McastNode {
            agent,
            cfg,
            coverage: CoverageWindow::new(cap),
            seen: DedupWindow::new(cap),
            deliveries: Vec::new(),
            stats: McastStats::default(),
            log: ForwardLog::default(),
            queues: ForwardingQueues::new(strategy),
            draining: false,
        }
    }

    /// The multicast configuration.
    pub fn mcast_config(&self) -> &McastConfig {
        &self.cfg
    }

    /// Declares a child queue weight (used by the queue-strategy
    /// experiment; by default children weight equally).
    pub fn set_child_weight(&mut self, child: u16, weight: u32) {
        self.queues.declare_child(child, weight);
    }

    /// True when this node has delivered message `id` locally.
    pub fn has_delivered(&self, id: u64) -> bool {
        self.deliveries.iter().any(|&(d, _)| d == id)
    }

    fn flush_gossip(&self, ctx: &mut Context<'_, McastMsg>, out: Vec<(u32, GossipMsg)>) {
        for (to, g) in out {
            ctx.send(NodeId(to), McastMsg::Gossip(g));
        }
    }

    fn deliver_local(&mut self, now: SimTime, data: &McastData) {
        let event = if self.seen.insert(data.id) {
            self.deliveries.push((data.id, now));
            obs::metric_add!(self.agent.id(), ctr::MCAST_LOCAL_DELIVERIES, 1);
            obs::trace_event!(self.agent.id(), Layer::Amcast, kind::MCAST_DELIVER_LOCAL, data.id);
            ForwardEvent::Delivered
        } else {
            self.stats.duplicates_dropped += 1;
            obs::metric_add!(self.agent.id(), ctr::MCAST_DUPES_DROPPED, 1);
            ForwardEvent::Duplicate
        };
        self.log.record(LogRecord {
            at_us: now.as_micros(),
            msg_id: data.id,
            zone: ZoneId::root(),
            peer: None,
            event,
        });
    }

    fn enqueue(&mut self, ctx: &mut Context<'_, McastMsg>, dst: NodeId, msg: McastMsg) {
        let (child, priority) = match &msg {
            McastMsg::Forward { zone, data } => (zone.label().unwrap_or(0), data.priority),
            McastMsg::Deliver { data } => ((dst.0 % 64) as u16, data.priority),
            _ => (0, 5),
        };
        self.queues.push(child, ctx.now().as_micros(), priority, (dst, msg));
        self.stats.peak_queue = self.stats.peak_queue.max(self.queues.len());
        obs::gauge_max!(self.agent.id(), gauge::MCAST_PEAK_QUEUE, self.queues.len());
        if !self.draining {
            self.draining = true;
            ctx.set_timer(self.cfg.service_interval, DRAIN_TIMER);
        }
    }

    /// Executes forwarding duty for `zone`.
    fn process_duty(&mut self, ctx: &mut Context<'_, McastMsg>, data: McastData, zone: ZoneId) {
        let actions = route(&self.agent, &data.filter, &zone, self.cfg.redundancy, ctx.rng());
        let now = ctx.now();
        if actions.is_empty() && self.agent.level_of(&zone).is_none() {
            self.stats.route_failures += 1;
            obs::metric_add!(self.agent.id(), ctr::MCAST_ROUTE_FAILURES, 1);
            self.log.record(LogRecord {
                at_us: now.as_micros(),
                msg_id: data.id,
                zone,
                peer: None,
                event: ForwardEvent::Unroutable,
            });
            return;
        }
        self.log.record(LogRecord {
            at_us: now.as_micros(),
            msg_id: data.id,
            zone: zone.clone(),
            peer: None,
            event: ForwardEvent::AcceptedDuty,
        });
        for action in actions {
            match action {
                Action::DeliverLocal => self.deliver_local(now, &data),
                Action::Deliver { member } => {
                    self.enqueue(ctx, NodeId(member), McastMsg::Deliver { data: data.clone() });
                }
                Action::Forward { rep, zone } => {
                    obs::trace_event!(
                        self.agent.id(),
                        Layer::Amcast,
                        kind::MCAST_HOP,
                        data.id,
                        rep
                    );
                    self.log.record(LogRecord {
                        at_us: now.as_micros(),
                        msg_id: data.id,
                        zone: zone.clone(),
                        peer: Some(rep),
                        event: ForwardEvent::Forwarded,
                    });
                    self.enqueue(ctx, NodeId(rep), McastMsg::Forward { data: data.clone(), zone });
                }
            }
        }
    }
}

impl Node for McastNode {
    type Msg = McastMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, McastMsg>) {
        let interval = self.agent.config().gossip_interval;
        let first = SimDuration::from_micros(ctx.rng().gen_range(0..interval.as_micros().max(1)));
        ctx.set_timer(first, GOSSIP_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, McastMsg>, from: NodeId, msg: McastMsg) {
        match msg {
            McastMsg::Gossip(g) => {
                let now = ctx.now();
                let out = self.agent.on_message(now, from.0, g, ctx.rng());
                self.flush_gossip(ctx, out);
            }
            McastMsg::Publish { data, scope } => {
                // The origin always processes its duty, fresh or not.
                self.coverage.admit(data.id, scope.depth());
                self.process_duty(ctx, data, scope);
            }
            McastMsg::Forward { data, zone } => {
                if self.coverage.admit(data.id, zone.depth()) {
                    self.process_duty(ctx, data, zone);
                } else {
                    self.stats.duplicates_dropped += 1;
                    obs::metric_add!(self.agent.id(), ctr::MCAST_DUPES_DROPPED, 1);
                }
            }
            McastMsg::Deliver { data } => {
                let now = ctx.now();
                self.deliver_local(now, &data);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, McastMsg>, _timer: TimerId, tag: u64) {
        match tag {
            GOSSIP_TIMER => {
                let now = ctx.now();
                let out = self.agent.on_tick(now, ctx.rng());
                self.flush_gossip(ctx, out);
                let interval = self.agent.config().gossip_interval;
                ctx.set_timer(interval, GOSSIP_TIMER);
            }
            DRAIN_TIMER => {
                if let Some(q) = self.queues.pop() {
                    let (dst, msg) = q.item;
                    ctx.send(dst, msg);
                    self.stats.forwards_sent += 1;
                    obs::metric_add!(self.agent.id(), ctr::MCAST_FORWARDS, 1);
                }
                if self.queues.is_empty() {
                    self.draining = false;
                } else {
                    ctx.set_timer(self.cfg.service_interval, DRAIN_TIMER);
                }
            }
            _ => {}
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, McastMsg>) {
        self.agent.reset();
        self.draining = false;
        ctx.set_timer(self.agent.config().gossip_interval, GOSSIP_TIMER);
    }
}
