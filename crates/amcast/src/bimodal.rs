//! Bimodal Multicast (pbcast) — the comparison protocol of paper §5: "the
//! protocol thus obtained should have many of the properties of Bimodal
//! Multicast, a peer-to-peer reliable multicast protocol developed by our
//! group several years ago."
//!
//! The implementation follows the classic two-phase structure: an
//! unreliable best-effort multicast from the sender to the full membership,
//! followed by rounds of anti-entropy gossip in which nodes exchange
//! digests of recently delivered message ids and solicit retransmissions of
//! what they missed. Its signature property — either almost every node
//! delivers a message or almost none does (hence *bimodal*) — is reproduced
//! by experiment E8.

use std::collections::VecDeque;

use rand::seq::SliceRandom;
use rand::Rng;
use simnet::{Context, Node, NodeId, Payload, SimDuration, SimTime, TimerId};

use crate::dedup::DedupWindow;

/// pbcast wire messages.
#[derive(Debug, Clone)]
pub enum PbcastMsg {
    /// Injected at the origin: multicast a new message.
    Publish {
        /// Message id.
        id: u64,
        /// Payload size in bytes (contents are irrelevant to the protocol).
        len: u32,
    },
    /// Phase 1: the unreliable direct multicast.
    Multicast {
        /// Message id.
        id: u64,
        /// Payload size.
        len: u32,
    },
    /// Phase 2: digest of recently delivered ids.
    Digest {
        /// Recently delivered message ids.
        ids: Vec<u64>,
    },
    /// Solicitation for missed messages.
    Request {
        /// Ids the requester lacks.
        ids: Vec<u64>,
    },
    /// Retransmission of solicited messages.
    Retransmit {
        /// `(id, len)` pairs.
        items: Vec<(u64, u32)>,
    },
}

impl Payload for PbcastMsg {
    fn wire_size(&self) -> usize {
        4 + match self {
            PbcastMsg::Publish { len, .. } | PbcastMsg::Multicast { len, .. } => 8 + *len as usize,
            PbcastMsg::Digest { ids } | PbcastMsg::Request { ids } => ids.len() * 8,
            PbcastMsg::Retransmit { items } => {
                items.iter().map(|&(_, l)| 8 + l as usize).sum::<usize>()
            }
        }
    }
}

/// pbcast configuration.
#[derive(Debug, Clone)]
pub struct PbcastConfig {
    /// Gossip round period.
    pub gossip_interval: SimDuration,
    /// Peers gossiped to per round.
    pub fanout: usize,
    /// Retransmission buffer size (messages age out of repair after this
    /// many more-recent messages — the bounded-buffer property that makes
    /// pbcast bimodal rather than reliable).
    pub buffer: usize,
}

impl Default for PbcastConfig {
    fn default() -> Self {
        PbcastConfig { gossip_interval: SimDuration::from_millis(500), fanout: 2, buffer: 64 }
    }
}

const GOSSIP_TIMER: u64 = 1;

/// One pbcast group member. Membership is static and globally known
/// (pbcast's model), unlike the Astrolabe stack which discovers it.
#[derive(Debug)]
pub struct PbcastNode {
    membership: Vec<u32>,
    cfg: PbcastConfig,
    seen: DedupWindow,
    /// Local deliveries `(id, time)`.
    pub deliveries: Vec<(u64, SimTime)>,
    buffer: VecDeque<(u64, u32)>,
}

impl PbcastNode {
    /// Creates a member that knows the full group.
    pub fn new(membership: Vec<u32>, cfg: PbcastConfig) -> Self {
        PbcastNode {
            membership,
            seen: DedupWindow::new(cfg.buffer * 16),
            cfg,
            deliveries: Vec::new(),
            buffer: VecDeque::new(),
        }
    }

    /// True when this node has delivered `id`.
    pub fn has_delivered(&self, id: u64) -> bool {
        self.seen.contains(id)
    }

    fn deliver(&mut self, now: SimTime, id: u64, len: u32) {
        if self.seen.insert(id) {
            self.deliveries.push((id, now));
            self.buffer.push_back((id, len));
            if self.buffer.len() > self.cfg.buffer {
                self.buffer.pop_front();
            }
        }
    }
}

impl Node for PbcastNode {
    type Msg = PbcastMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, PbcastMsg>) {
        let first = SimDuration::from_micros(
            ctx.rng().gen_range(0..self.cfg.gossip_interval.as_micros().max(1)),
        );
        ctx.set_timer(first, GOSSIP_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, PbcastMsg>, from: NodeId, msg: PbcastMsg) {
        let now = ctx.now();
        match msg {
            PbcastMsg::Publish { id, len } => {
                self.deliver(now, id, len);
                let me = ctx.id();
                for &m in &self.membership {
                    if NodeId(m) != me {
                        ctx.send(NodeId(m), PbcastMsg::Multicast { id, len });
                    }
                }
            }
            PbcastMsg::Multicast { id, len } => self.deliver(now, id, len),
            PbcastMsg::Digest { ids } => {
                let missing: Vec<u64> =
                    ids.into_iter().filter(|&id| !self.seen.contains(id)).collect();
                if !missing.is_empty() {
                    ctx.send(from, PbcastMsg::Request { ids: missing });
                }
            }
            PbcastMsg::Request { ids } => {
                let items: Vec<(u64, u32)> =
                    self.buffer.iter().filter(|(id, _)| ids.contains(id)).copied().collect();
                if !items.is_empty() {
                    ctx.send(from, PbcastMsg::Retransmit { items });
                }
            }
            PbcastMsg::Retransmit { items } => {
                for (id, len) in items {
                    self.deliver(now, id, len);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, PbcastMsg>, _t: TimerId, tag: u64) {
        if tag != GOSSIP_TIMER {
            return;
        }
        if !self.buffer.is_empty() {
            let ids: Vec<u64> = self.buffer.iter().map(|&(id, _)| id).collect();
            let me = ctx.id();
            let mut peers: Vec<u32> =
                self.membership.iter().copied().filter(|&m| NodeId(m) != me).collect();
            peers.shuffle(ctx.rng());
            for &p in peers.iter().take(self.cfg.fanout) {
                ctx.send(NodeId(p), PbcastMsg::Digest { ids: ids.clone() });
            }
        }
        ctx.set_timer(self.cfg.gossip_interval, GOSSIP_TIMER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NetworkModel, Simulation};

    fn group(n: u32, drop: f64, seed: u64) -> Simulation<PbcastNode> {
        let mut net = NetworkModel::ideal(SimDuration::from_millis(15));
        net.drop_prob = drop;
        let mut sim = Simulation::new(net, seed);
        let membership: Vec<u32> = (0..n).collect();
        for _ in 0..n {
            sim.add_node(PbcastNode::new(membership.clone(), PbcastConfig::default()));
        }
        sim
    }

    fn delivered_count(sim: &Simulation<PbcastNode>, id: u64) -> usize {
        sim.iter().filter(|(_, n)| n.has_delivered(id)).count()
    }

    #[test]
    fn lossless_multicast_reaches_everyone_in_one_hop() {
        let mut sim = group(20, 0.0, 1);
        sim.schedule_external(
            SimTime::from_secs(1),
            NodeId(0),
            PbcastMsg::Publish { id: 7, len: 100 },
        );
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(delivered_count(&sim, 7), 20);
    }

    #[test]
    fn gossip_repairs_lossy_multicast() {
        let mut sim = group(30, 0.25, 2);
        sim.schedule_external(
            SimTime::from_secs(1),
            NodeId(0),
            PbcastMsg::Publish { id: 9, len: 50 },
        );
        // Shortly after the multicast some nodes are missing it…
        sim.run_until(SimTime::from_micros(1_200_000));
        let early = delivered_count(&sim, 9);
        // …but gossip rounds repair the gaps.
        sim.run_until(SimTime::from_secs(30));
        let late = delivered_count(&sim, 9);
        assert!(late >= early);
        assert_eq!(late, 30, "anti-entropy must complete delivery");
    }

    #[test]
    fn buffered_repair_window_is_bounded() {
        let mut sim = group(4, 0.0, 3);
        // Publish far more than the buffer holds.
        for i in 0..200u64 {
            sim.schedule_external(
                SimTime::from_micros(1_000_000 + i * 1000),
                NodeId(0),
                PbcastMsg::Publish { id: i, len: 10 },
            );
        }
        sim.run_until(SimTime::from_secs(10));
        let n0 = sim.node(NodeId(0));
        assert!(n0.buffer.len() <= PbcastConfig::default().buffer);
        assert_eq!(n0.deliveries.len(), 200);
    }
}
