//! Duplicate suppression.
//!
//! Paper §9: "News items are uniquely identified by the publisher as part
//! of the news item meta-data; this can be used to remove duplicates, when
//! … we use multiple representatives to forward a new item, to increase the
//! robustness of the delivery." A bounded window keeps memory constant on
//! long-running forwarders.

use std::collections::{HashSet, VecDeque};

/// A sliding window of recently seen message ids.
///
/// ```
/// let mut w = amcast::DedupWindow::new(2);
/// assert!(w.insert(1), "first sighting");
/// assert!(!w.insert(1), "duplicate");
/// w.insert(2);
/// w.insert(3); // evicts 1
/// assert!(w.insert(1), "forgotten after eviction");
/// ```
#[derive(Debug, Clone)]
pub struct DedupWindow {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl DedupWindow {
    /// Creates a window remembering up to `capacity` ids.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "dedup window needs capacity");
        DedupWindow { seen: HashSet::with_capacity(capacity), order: VecDeque::new(), capacity }
    }

    /// Records `id`; returns `true` when it was not already in the window
    /// (i.e. the caller should process the message).
    pub fn insert(&mut self, id: u64) -> bool {
        if !self.seen.insert(id) {
            return false;
        }
        self.order.push_back(id);
        if self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        true
    }

    /// Membership test without recording.
    pub fn contains(&self, id: u64) -> bool {
        self.seen.contains(&id)
    }

    /// Number of ids currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Depth-aware duplicate suppression for forwarding duty.
///
/// With `k`-redundant representatives a forwarder can legitimately receive
/// the same item twice: once for a narrow zone and once for a wider
/// (ancestor) zone whose other children it must still cover. Suppressing by
/// id alone would leave those children unserved, so the window remembers
/// the *shallowest* zone depth already processed per id and only admits
/// strictly wider duty.
#[derive(Debug, Clone)]
pub struct CoverageWindow {
    seen: std::collections::HashMap<u64, usize>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl CoverageWindow {
    /// Creates a window remembering up to `capacity` ids.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "coverage window needs capacity");
        CoverageWindow {
            seen: std::collections::HashMap::with_capacity(capacity),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Records forwarding duty for `id` at `zone_depth`; returns `true`
    /// when the caller should process it (first sighting, or a strictly
    /// wider zone than anything processed before).
    pub fn admit(&mut self, id: u64, zone_depth: usize) -> bool {
        match self.seen.get_mut(&id) {
            Some(depth) if *depth <= zone_depth => false,
            Some(depth) => {
                *depth = zone_depth;
                true
            }
            None => {
                self.seen.insert(id, zone_depth);
                self.order.push_back(id);
                if self.order.len() > self.capacity {
                    if let Some(old) = self.order.pop_front() {
                        self.seen.remove(&old);
                    }
                }
                true
            }
        }
    }

    /// Number of ids currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_admits_wider_zone_only() {
        let mut w = CoverageWindow::new(8);
        assert!(w.admit(1, 2), "first duty at depth 2");
        assert!(!w.admit(1, 2), "same depth is duplicate");
        assert!(!w.admit(1, 3), "narrower duty already covered");
        assert!(w.admit(1, 1), "wider duty must be served");
        assert!(!w.admit(1, 2), "now covered at depth 1");
    }

    #[test]
    fn coverage_evicts_oldest() {
        let mut w = CoverageWindow::new(2);
        w.admit(1, 0);
        w.admit(2, 0);
        w.admit(3, 0);
        assert!(w.admit(1, 0), "evicted id admitted again");
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn suppresses_duplicates() {
        let mut w = DedupWindow::new(8);
        assert!(w.insert(7));
        assert!(!w.insert(7));
        assert!(w.contains(7));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let mut w = DedupWindow::new(3);
        for id in 1..=5 {
            assert!(w.insert(id));
        }
        assert!(!w.contains(1) && !w.contains(2));
        assert!(w.contains(3) && w.contains(5));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn duplicate_does_not_refresh_position() {
        let mut w = DedupWindow::new(2);
        w.insert(1);
        w.insert(2);
        w.insert(1); // duplicate, must not move 1 to the back
        w.insert(3); // evicts 1
        assert!(!w.contains(1));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        DedupWindow::new(0);
    }
}
