//! Forwarding queues.
//!
//! Paper §9: "Each forwarding component maintains a log file and a set of
//! forwarding queues, one for each of the representatives at a child zone.
//! The best strategy to fill queues is still under research. We are
//! experimenting with weighted round-robin strategies, as well as some more
//! aggressive techniques." Experiment E10 compares the strategies
//! implemented here under heterogeneous load.

use std::collections::VecDeque;

/// One queued forward, generic in the payload `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Queued<T> {
    /// Which child-zone queue this entry belongs to.
    pub child: u16,
    /// Enqueue time (simulated microseconds), for delay accounting.
    pub enqueued_us: u64,
    /// Priority class; smaller is more urgent (NITF urgency scale).
    pub priority: u8,
    /// The payload to forward.
    pub item: T,
}

/// Queue service disciplines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Global FIFO over all children.
    Fifo,
    /// Weighted round-robin across child queues (weight = configured per
    /// child, typically the subtree size, so bigger subtrees get
    /// proportionally more service).
    WeightedRoundRobin,
    /// Strict priority by item urgency, FIFO within a class — one of the
    /// paper's "more aggressive techniques".
    Priority,
}

/// The forwarding queue set of one forwarding component.
#[derive(Debug)]
pub struct ForwardingQueues<T> {
    strategy: Strategy,
    queues: Vec<(u16, u32, VecDeque<Queued<T>>)>, // (child, weight, queue)
    rr_cursor: usize,
    rr_credit: i64,
    len: usize,
    seq: u64,
    /// Global arrival order as `(seq, child)` pairs, consulted by FIFO.
    seqs: VecDeque<(u64, u16)>,
}

impl<T> ForwardingQueues<T> {
    /// Creates an empty queue set with the given discipline.
    pub fn new(strategy: Strategy) -> Self {
        ForwardingQueues {
            strategy,
            queues: Vec::new(),
            rr_cursor: 0,
            rr_credit: 0,
            len: 0,
            seq: 0,
            seqs: VecDeque::new(),
        }
    }

    /// The configured discipline.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Declares a child queue and its scheduling weight. Re-declaring a
    /// child updates its weight.
    pub fn declare_child(&mut self, child: u16, weight: u32) {
        let weight = weight.max(1);
        match self.queues.binary_search_by_key(&child, |(c, _, _)| *c) {
            Ok(i) => self.queues[i].1 = weight,
            Err(i) => self.queues.insert(i, (child, weight, VecDeque::new())),
        }
    }

    /// Total queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues an item for `child` (declared implicitly with weight 1 if
    /// unknown).
    pub fn push(&mut self, child: u16, enqueued_us: u64, priority: u8, item: T) {
        if self.queues.binary_search_by_key(&child, |(c, _, _)| *c).is_err() {
            self.declare_child(child, 1);
        }
        let i = self.queues.binary_search_by_key(&child, |(c, _, _)| *c).expect("just declared");
        self.seq += 1;
        self.queues[i].2.push_back(Queued { child, enqueued_us, priority, item });
        self.seqs.push_back((self.seq, child));
        self.len += 1;
    }

    /// Dequeues the next item under the configured discipline.
    pub fn pop(&mut self) -> Option<Queued<T>> {
        if self.len == 0 {
            return None;
        }
        let out = match self.strategy {
            Strategy::Fifo => self.pop_fifo(),
            Strategy::WeightedRoundRobin => self.pop_wrr(),
            Strategy::Priority => self.pop_priority(),
        };
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    fn pop_fifo(&mut self) -> Option<Queued<T>> {
        // Oldest arrival across all queues.
        while let Some((_, child)) = self.seqs.pop_front() {
            let i = self.queues.binary_search_by_key(&child, |(c, _, _)| *c).ok()?;
            if let Some(q) = self.queues[i].2.pop_front() {
                return Some(q);
            }
        }
        None
    }

    fn pop_wrr(&mut self) -> Option<Queued<T>> {
        let n = self.queues.len();
        for _ in 0..2 * n {
            if self.rr_cursor >= n {
                self.rr_cursor = 0;
            }
            let (_, weight, queue) = &mut self.queues[self.rr_cursor];
            if self.rr_credit <= 0 {
                self.rr_credit = i64::from(*weight);
            }
            if let Some(item) = queue.pop_front() {
                self.rr_credit -= 1;
                if self.rr_credit <= 0 {
                    self.rr_cursor += 1;
                }
                self.drop_seq_of(item.child);
                return Some(item);
            }
            self.rr_cursor += 1;
            self.rr_credit = 0;
        }
        None
    }

    fn pop_priority(&mut self) -> Option<Queued<T>> {
        // Global scan: the most urgent item anywhere, ties broken by
        // enqueue time. Queues here are short (bounded by service rate), so
        // the linear scan is cheaper than maintaining a heap per strategy.
        let mut best: Option<(usize, usize, u8, u64)> = None;
        for (qi, (_, _, q)) in self.queues.iter().enumerate() {
            for (pi, item) in q.iter().enumerate() {
                let key = (item.priority, item.enqueued_us);
                if best.is_none_or(|(_, _, p, t)| key < (p, t)) {
                    best = Some((qi, pi, item.priority, item.enqueued_us));
                }
            }
        }
        let (qi, pi, _, _) = best?;
        let item = self.queues[qi].2.remove(pi)?;
        self.drop_seq_of(item.child);
        Some(item)
    }

    fn drop_seq_of(&mut self, child: u16) {
        if let Some(pos) = self.seqs.iter().position(|&(_, c)| c == child) {
            self.seqs.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut ForwardingQueues<&'static str>) -> Vec<&'static str> {
        std::iter::from_fn(|| q.pop().map(|i| i.item)).collect()
    }

    #[test]
    fn fifo_preserves_global_arrival_order() {
        let mut q = ForwardingQueues::new(Strategy::Fifo);
        q.push(2, 10, 5, "a");
        q.push(0, 20, 1, "b");
        q.push(2, 30, 8, "c");
        assert_eq!(drain(&mut q), vec!["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn wrr_respects_weights() {
        let mut q = ForwardingQueues::new(Strategy::WeightedRoundRobin);
        q.declare_child(0, 3);
        q.declare_child(1, 1);
        for i in 0..12 {
            q.push(0, i, 5, "big");
        }
        for i in 0..4 {
            q.push(1, i, 5, "small");
        }
        // First 8 pops: child 0 should get ~3x the service of child 1.
        let first8: Vec<_> = (0..8).filter_map(|_| q.pop()).map(|i| i.child).collect();
        let big = first8.iter().filter(|&&c| c == 0).count();
        let small = first8.iter().filter(|&&c| c == 1).count();
        assert_eq!(big + small, 8);
        assert!(big == 6 && small == 2, "split {big}/{small}");
        // Everything eventually drains.
        assert_eq!((0..16).filter_map(|_| q.pop()).count(), 8);
    }

    #[test]
    fn wrr_skips_empty_queues() {
        let mut q = ForwardingQueues::new(Strategy::WeightedRoundRobin);
        q.declare_child(0, 5);
        q.declare_child(1, 5);
        q.push(1, 0, 5, "only");
        assert_eq!(q.pop().unwrap().item, "only");
        assert!(q.pop().is_none());
    }

    #[test]
    fn priority_takes_urgent_first_then_fifo() {
        let mut q = ForwardingQueues::new(Strategy::Priority);
        q.push(0, 10, 5, "routine-early");
        q.push(1, 20, 1, "flash");
        q.push(2, 30, 5, "routine-late");
        q.push(3, 5, 1, "flash-earlier");
        let order = drain(&mut q);
        assert_eq!(order, vec!["flash-earlier", "flash", "routine-early", "routine-late"]);
    }

    #[test]
    fn pop_on_empty_is_none() {
        let mut q: ForwardingQueues<()> = ForwardingQueues::new(Strategy::Fifo);
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut q = ForwardingQueues::new(Strategy::WeightedRoundRobin);
        for i in 0..5 {
            q.push(i % 2, u64::from(i), 5, i);
        }
        assert_eq!(q.len(), 5);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn redeclaring_child_updates_weight() {
        let mut q = ForwardingQueues::new(Strategy::WeightedRoundRobin);
        q.declare_child(0, 1);
        q.declare_child(0, 4);
        q.declare_child(1, 1);
        for i in 0..8 {
            q.push(0, i, 5, "h");
            q.push(1, i, 5, "l");
        }
        let first5: Vec<_> = (0..5).filter_map(|_| q.pop()).map(|i| i.child).collect();
        let heavy = first5.iter().filter(|&&c| c == 0).count();
        assert_eq!(heavy, 4, "order {first5:?}");
    }
}
