//! `SendToZone` routing — the recursive dissemination of paper §5, with the
//! selective forwarding of §6.
//!
//! "When a SendToZone is executed the system will visit each of the entries
//! in [the] zone table, each representing a child of this zone. For each of
//! the entries the attribute with the set of multicast representatives will
//! be retrieved and the data will be forwarded to one of the
//! representatives… At the arrival of the data at the representative, the
//! process is repeated recursively for all the children in the zone it
//! represents, until the data arrives at the leaf nodes."
//!
//! Publish/subscribe (§6) makes the per-child forwarding *conditional*: the
//! child's aggregated subscription summary (Bloom bit positions or category
//! mask) is tested first; uninterested subtrees are pruned.

use astrolabe::{eval_predicate, Agent, AttrValue, Expr, Mib, ZoneId};
use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

/// The interest test applied at each forwarding hop.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterSpec {
    /// Unconditional dissemination (plain `SendToZone`).
    All,
    /// Forward iff every listed bit is set in the child's `attr` bit array
    /// (the §6 Bloom design: publishers ship positions, not keys).
    BloomPositions {
        /// Attribute holding the aggregated subscription bit array.
        attr: String,
        /// Bit positions of the publication's subscription key(s).
        positions: Vec<usize>,
    },
    /// Forward iff the child's integer `attr` shares a bit with `mask`
    /// (the §7 per-publisher category-mask prototype).
    MaskBits {
        /// Attribute holding the aggregated category mask.
        attr: String,
        /// The publication's category bits.
        mask: u64,
    },
    /// Forward iff *any* of the position groups is fully present in the
    /// child's `attr` bit array. NewsWire items match several subscription
    /// keys (one per category, one per subject prefix); a zone is
    /// interested when any of them hits.
    BloomAny {
        /// Attribute holding the aggregated subscription bit array.
        attr: String,
        /// One position group per subscription key of the publication.
        groups: Vec<Vec<usize>>,
    },
    /// Forward iff the publisher-supplied SQL predicate holds on the child
    /// zone's summary row — the §8 extension: "allow the publisher more
    /// control over the dissemination by adding a predicate to the metadata
    /// that needs to be evaluated using the attribute values of a child
    /// zone before it can be forwarded to that zone" (e.g. `premium > 0`).
    /// Evaluation errors and NULLs reject the zone (fail-closed).
    Predicate {
        /// The compiled predicate.
        expr: Expr,
    },
    /// Both parts must admit — used to combine a subscription summary test
    /// with a publisher predicate.
    Both(Box<FilterSpec>, Box<FilterSpec>),
}

impl FilterSpec {
    /// Does the summary row `row` admit this publication?
    ///
    /// A row *lacking* the attribute is treated as not subscribed — an
    /// unsummarized zone cannot be shown interested; the end-to-end repair
    /// path (message cache) covers the transient.
    pub fn admits(&self, row: &Mib) -> bool {
        match self {
            FilterSpec::All => true,
            FilterSpec::BloomPositions { attr, positions } => match row.get(attr) {
                Some(AttrValue::Bits(bits)) => {
                    positions.iter().all(|&p| p < bits.len() && bits.get(p))
                }
                _ => false,
            },
            FilterSpec::MaskBits { attr, mask } => match row.get(attr) {
                Some(AttrValue::Int(m)) => (*m as u64) & mask != 0,
                _ => false,
            },
            FilterSpec::BloomAny { attr, groups } => match row.get(attr) {
                Some(AttrValue::Bits(bits)) => groups
                    .iter()
                    .any(|g| !g.is_empty() && g.iter().all(|&p| p < bits.len() && bits.get(p))),
                _ => false,
            },
            FilterSpec::Predicate { expr } => eval_predicate(expr, &row).unwrap_or(false),
            FilterSpec::Both(a, b) => a.admits(row) && b.admits(row),
        }
    }

    /// Approximate serialized size.
    pub fn wire_size(&self) -> usize {
        match self {
            FilterSpec::All => 1,
            FilterSpec::BloomPositions { attr, positions } => 1 + attr.len() + positions.len() * 2,
            FilterSpec::MaskBits { attr, .. } => 9 + attr.len(),
            FilterSpec::BloomAny { attr, groups } => {
                1 + attr.len() + groups.iter().map(|g| 1 + g.len() * 2).sum::<usize>()
            }
            FilterSpec::Predicate { expr } => 1 + expr.to_string().len(),
            FilterSpec::Both(a, b) => 1 + a.wire_size() + b.wire_size(),
        }
    }

    /// Combines two filters conjunctively.
    #[must_use]
    pub fn and(self, other: FilterSpec) -> FilterSpec {
        FilterSpec::Both(Box::new(self), Box::new(other))
    }
}

/// One multicast payload travelling through the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct McastData {
    /// Globally unique message id (publisher-assigned; drives duplicate
    /// suppression).
    pub id: u64,
    /// Originating node.
    pub origin: u32,
    /// Priority class (NITF urgency; smaller = more urgent).
    pub priority: u8,
    /// Opaque payload.
    pub payload: Bytes,
    /// Per-hop interest test.
    pub filter: FilterSpec,
}

impl McastData {
    /// Approximate serialized size.
    pub fn wire_size(&self) -> usize {
        8 + 4 + 1 + self.payload.len() + self.filter.wire_size()
    }
}

/// One step of the recursive dissemination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Hand the item to a representative of `zone`, which will cover it.
    Forward {
        /// The chosen representative.
        rep: u32,
        /// The (sub)zone it must cover.
        zone: ZoneId,
    },
    /// The item matches this node's own subscription row — deliver locally.
    DeliverLocal,
    /// Final hop: deliver to a member of this node's leaf zone.
    Deliver {
        /// The member node.
        member: u32,
    },
}

/// Computes the forwarding actions for covering `zone` with `data`, using
/// this node's replicated tables.
///
/// At interior zones, every interested child gets `k` distinct
/// representatives (paper §9 redundancy); the child on this node's own root
/// path is recursed into *locally* (returned as deeper actions) rather than
/// re-sent over the network. At leaf zones the item is delivered to every
/// member whose own row matches the filter.
///
/// A zone *not* on this node's root path is relayed toward: the item is
/// handed to representatives of the child (of the deepest shared ancestor)
/// lying on the path to `zone`, unconditionally — scope placement must
/// succeed even through disinterested regions (paper §8: a publisher "is
/// able to restrict the scope of the dissemination by selecting another
/// zone than the root zone"). Filtering applies once inside `zone`.
pub fn route(
    agent: &Agent,
    filter: &FilterSpec,
    zone: &ZoneId,
    k: usize,
    rng: &mut SmallRng,
) -> Vec<Action> {
    let mut actions = Vec::new();
    let mut pending = vec![zone.clone()];
    while let Some(z) = pending.pop() {
        let Some(level) = agent.level_of(&z) else {
            relay_toward(agent, &z, k, rng, &mut actions);
            continue;
        };
        if level == 0 {
            // Leaf zone: rows are members; deliver to matching ones.
            for (label, row) in agent.table(0).iter() {
                if !filter.admits(row) {
                    continue;
                }
                if label == agent.own_label(0) {
                    actions.push(Action::DeliverLocal);
                } else if let Some(AttrValue::Int(id)) = row.get("id") {
                    if let Ok(member) = u32::try_from(*id) {
                        actions.push(Action::Deliver { member });
                    }
                }
            }
            continue;
        }
        let own_child = agent.own_label(level);
        for (label, row) in agent.table(level).iter() {
            if !filter.admits(row) {
                continue;
            }
            let child_zone = z.child(label);
            if label == own_child {
                // Our own branch: keep recursing locally.
                pending.push(child_zone);
                continue;
            }
            let Some(AttrValue::Set(reps)) = row.get("reps") else { continue };
            let mut candidates: Vec<u32> =
                reps.iter().filter_map(|&r| u32::try_from(r).ok()).collect();
            candidates.shuffle(rng);
            for rep in candidates.into_iter().take(k.max(1)) {
                actions.push(Action::Forward { rep, zone: child_zone.clone() });
            }
        }
    }
    actions
}

/// All representatives this node's tables list for covering `zone`,
/// excluding the node itself — the failover candidate set for acknowledged
/// hand-offs: when a chosen representative times out, the forwarder retries
/// the next entry instead of waiting for anti-entropy repair.
///
/// `zone` may be a direct child of a zone on this node's root path (the
/// common hand-off case) or an arbitrary off-path zone (the relay case); in
/// both, the candidates are the representatives of the child of the deepest
/// shared ancestor lying on the path to `zone`. Returns an empty vector for
/// zones on this node's own chain (no external hand-off applies) or when no
/// table row is known yet. Order is the table's deterministic set order.
pub fn zone_reps(agent: &Agent, zone: &ZoneId) -> Vec<u32> {
    let leaf = &agent.chain()[0];
    let shared = leaf.path().iter().zip(zone.path()).take_while(|(a, b)| a == b).count();
    let Some(&child_label) = zone.path().get(shared) else { return Vec::new() };
    if shared >= leaf.depth() {
        return Vec::new();
    }
    let table_level = leaf.depth() - shared;
    let Some(row) = agent.table(table_level).get(child_label) else { return Vec::new() };
    let Some(AttrValue::Set(reps)) = row.get("reps") else { return Vec::new() };
    reps.iter().filter_map(|&r| u32::try_from(r).ok()).filter(|&r| r != agent.id()).collect()
}

/// Relays an item toward a zone off this node's root path: pick `k`
/// representatives of the child (under the deepest shared ancestor) that
/// lies on the path to `target`, and hand them the *original* target. Each
/// relay hop strictly lengthens the shared prefix, so the walk terminates.
fn relay_toward(
    agent: &Agent,
    target: &ZoneId,
    k: usize,
    rng: &mut SmallRng,
    actions: &mut Vec<Action>,
) {
    let leaf = &agent.chain()[0];
    let shared = leaf.path().iter().zip(target.path()).take_while(|(a, b)| a == b).count();
    // The shared ancestor is at depth `shared` on our chain; its table is
    // level `leaf.depth() - shared`. `target` is deeper than the ancestor
    // (otherwise level_of would have succeeded), so indexing is in range.
    let Some(&child_label) = target.path().get(shared) else { return };
    let table_level = leaf.depth() - shared;
    let Some(row) = agent.table(table_level).get(child_label) else { return };
    let Some(AttrValue::Set(reps)) = row.get("reps") else { return };
    let mut candidates: Vec<u32> = reps.iter().filter_map(|&r| u32::try_from(r).ok()).collect();
    candidates.retain(|&c| c != agent.id());
    candidates.shuffle(rng);
    for rep in candidates.into_iter().take(k.max(1)) {
        actions.push(Action::Forward { rep, zone: target.clone() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astrolabe::{AttrValue, MibBuilder, Stamp};
    use filters::BitArray;

    fn bits_row(ones: &[usize]) -> Mib {
        let mut b = BitArray::new(32);
        for &o in ones {
            b.set(o);
        }
        MibBuilder::new().attr("subs", AttrValue::Bits(b)).build(Stamp::default())
    }

    #[test]
    fn filter_all_admits_everything() {
        assert!(FilterSpec::All.admits(&MibBuilder::new().build(Stamp::default())));
    }

    #[test]
    fn bloom_filter_requires_all_positions() {
        let f = FilterSpec::BloomPositions { attr: "subs".into(), positions: vec![1, 5] };
        assert!(f.admits(&bits_row(&[1, 5, 9])));
        assert!(!f.admits(&bits_row(&[1])));
        assert!(
            !f.admits(&MibBuilder::new().build(Stamp::default())),
            "missing attr = no interest"
        );
    }

    #[test]
    fn bloom_filter_out_of_range_position_rejects() {
        let f = FilterSpec::BloomPositions { attr: "subs".into(), positions: vec![99] };
        assert!(!f.admits(&bits_row(&[1])));
    }

    #[test]
    fn mask_filter_intersects() {
        let row = MibBuilder::new().attr("cats", AttrValue::Int(0b0110)).build(Stamp::default());
        assert!(FilterSpec::MaskBits { attr: "cats".into(), mask: 0b0100 }.admits(&row));
        assert!(!FilterSpec::MaskBits { attr: "cats".into(), mask: 0b1000 }.admits(&row));
    }

    #[test]
    fn predicate_filter_evaluates_on_row() {
        let expr = astrolabe::parse_predicate("premium > 0").unwrap();
        let f = FilterSpec::Predicate { expr };
        let premium = MibBuilder::new().attr("premium", 2i64).build(Stamp::default());
        let free = MibBuilder::new().attr("premium", 0i64).build(Stamp::default());
        let missing = MibBuilder::new().build(Stamp::default());
        assert!(f.admits(&premium));
        assert!(!f.admits(&free));
        assert!(!f.admits(&missing), "NULL predicate must fail closed");
    }

    #[test]
    fn both_requires_both() {
        let expr = astrolabe::parse_predicate("premium > 0").unwrap();
        let combined = FilterSpec::All.and(FilterSpec::Predicate { expr });
        let premium = MibBuilder::new().attr("premium", 1i64).build(Stamp::default());
        let free = MibBuilder::new().build(Stamp::default());
        assert!(combined.admits(&premium));
        assert!(!combined.admits(&free));
        assert!(combined.wire_size() > 2);
    }

    #[test]
    fn wire_sizes_reflect_contents() {
        let d = McastData {
            id: 1,
            origin: 0,
            priority: 5,
            payload: Bytes::from_static(b"0123456789"),
            filter: FilterSpec::All,
        };
        assert_eq!(d.wire_size(), 8 + 4 + 1 + 10 + 1);
    }
}
