//! The forwarding component's log (paper §9: "Each forwarding component
//! maintains a log file and a set of forwarding queues").
//!
//! A bounded ring buffer of forwarding decisions, queryable by message id —
//! the operational record an administrator (or a test) uses to trace where
//! an item travelled and why.

use std::collections::VecDeque;

use astrolabe::ZoneId;

/// What a forwarding component did with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardEvent {
    /// Accepted forwarding duty for a zone.
    AcceptedDuty,
    /// Relayed/forwarded to a representative.
    Forwarded,
    /// Delivered to a leaf member (or locally).
    Delivered,
    /// Suppressed as a duplicate.
    Duplicate,
    /// Dropped: failed verification.
    AuthRejected,
    /// Dropped: no route toward the zone.
    Unroutable,
    /// An acknowledged hand-off timed out; the same representative will be
    /// retried with backoff.
    AckTimeout,
    /// A hand-off exhausted its retries and moved to another representative.
    FailedOver,
    /// A hand-off exhausted retries and failovers; left to anti-entropy.
    Abandoned,
}

/// One log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Simulated time of the event, microseconds.
    pub at_us: u64,
    /// The message involved.
    pub msg_id: u64,
    /// The zone of the duty (empty/root when not applicable).
    pub zone: ZoneId,
    /// Peer involved (representative or member), if any.
    pub peer: Option<u32>,
    /// What happened.
    pub event: ForwardEvent,
}

/// A bounded in-memory forwarding log.
#[derive(Debug, Clone)]
pub struct ForwardLog {
    records: VecDeque<LogRecord>,
    capacity: usize,
    total: u64,
}

impl ForwardLog {
    /// Creates a log retaining up to `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "log needs capacity");
        ForwardLog { records: VecDeque::with_capacity(capacity.min(1024)), capacity, total: 0 }
    }

    /// Appends a record, evicting the oldest beyond capacity.
    pub fn record(&mut self, rec: LogRecord) {
        self.total += 1;
        self.records.push_back(rec);
        if self.records.len() > self.capacity {
            self.records.pop_front();
        }
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever written (including evicted ones).
    pub fn total_written(&self) -> u64 {
        self.total
    }

    /// Iterates over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &LogRecord> {
        self.records.iter()
    }

    /// The retained trace of one message, oldest first.
    pub fn trace(&self, msg_id: u64) -> Vec<&LogRecord> {
        self.records.iter().filter(|r| r.msg_id == msg_id).collect()
    }

    /// Count of retained records with the given event type.
    pub fn count(&self, event: ForwardEvent) -> usize {
        self.records.iter().filter(|r| r.event == event).count()
    }
}

impl Default for ForwardLog {
    fn default() -> Self {
        ForwardLog::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, id: u64, event: ForwardEvent) -> LogRecord {
        LogRecord { at_us: at, msg_id: id, zone: ZoneId::root(), peer: None, event }
    }

    #[test]
    fn records_and_traces() {
        let mut log = ForwardLog::new(16);
        log.record(rec(1, 7, ForwardEvent::AcceptedDuty));
        log.record(rec(2, 7, ForwardEvent::Forwarded));
        log.record(rec(3, 8, ForwardEvent::Duplicate));
        log.record(rec(4, 7, ForwardEvent::Delivered));
        let trace: Vec<_> = log.trace(7).iter().map(|r| r.event).collect();
        assert_eq!(
            trace,
            vec![ForwardEvent::AcceptedDuty, ForwardEvent::Forwarded, ForwardEvent::Delivered]
        );
        assert_eq!(log.count(ForwardEvent::Duplicate), 1);
        assert_eq!(log.total_written(), 4);
    }

    #[test]
    fn bounded_eviction_keeps_newest() {
        let mut log = ForwardLog::new(3);
        for i in 0..10 {
            log.record(rec(i, i, ForwardEvent::Forwarded));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.iter().next().unwrap().at_us, 7);
        assert_eq!(log.total_written(), 10);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        ForwardLog::new(0);
    }
}
