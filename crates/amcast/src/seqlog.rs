//! Epoch/sequence-numbered article logs with compact range summaries.
//!
//! [`ForwardLog`](crate::ForwardLog) records *decisions*; [`SeqLog`] records
//! *possession*: which sequence numbers of some totally-ordered per-source
//! stream (articles from one publisher, say) a node currently holds. Its
//! [`RangeSummary`] is a fixed-size digest — four integers, regardless of
//! log size — cheap enough to piggyback on every gossip round, yet precise
//! enough that two nodes can detect holes in each other's coverage without
//! exchanging per-item state.
//!
//! Epochs order incomparable histories: a source that restarts with fresh
//! sequence numbering bumps its epoch, and a summary from a newer epoch
//! supersedes anything known about an older one.

use std::collections::BTreeMap;

/// A compact, fixed-size summary of a [`SeqLog`]'s coverage.
///
/// `floor..next` is the *window of knowledge*: sequence numbers below
/// `floor` have been evicted or truncated (the log can no longer vouch for
/// them), `next` is one past the highest sequence number ever observed, and
/// `present` counts the retained entries inside the window. The window is
/// contiguous (hole-free) exactly when `present == next - floor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RangeSummary {
    /// History epoch; summaries from different epochs are incomparable.
    pub epoch: u32,
    /// Lowest sequence number the log can still vouch for.
    pub floor: u64,
    /// One past the highest sequence number ever observed.
    pub next: u64,
    /// Retained entries in `floor..next`.
    pub present: u64,
}

impl RangeSummary {
    /// True when the window is hole-free (every seq in `floor..next` held).
    pub fn contiguous(&self) -> bool {
        self.present == self.next.saturating_sub(self.floor)
    }

    /// True when nothing has ever been observed.
    pub fn is_empty(&self) -> bool {
        self.next <= self.floor
    }

    /// Encodes as a compact `epoch:floor:next:present` string, suitable for
    /// a gossip row attribute.
    pub fn encode(&self) -> String {
        format!("{}:{}:{}:{}", self.epoch, self.floor, self.next, self.present)
    }

    /// Decodes [`RangeSummary::encode`] output; `None` on malformed input
    /// (gossip payloads are untrusted).
    pub fn decode(s: &str) -> Option<RangeSummary> {
        let mut parts = s.split(':');
        let epoch = parts.next()?.parse().ok()?;
        let floor = parts.next()?.parse().ok()?;
        let next = parts.next()?.parse().ok()?;
        let present = parts.next()?.parse().ok()?;
        if parts.next().is_some() || next < floor || present > next - floor {
            return None;
        }
        Some(RangeSummary { epoch, floor, next, present })
    }
}

/// A requester-held baseline for one story line, piggybacked on repair and
/// reconcile requests next to the [`RangeSummary`].
///
/// The summary tells a responder *which sequence numbers* the requester
/// lacks; a baseline hint additionally tells it *which revision of the
/// story* the requester already holds, so the reply can ship a chunk delta
/// against that revision instead of the full body. `key` is a stable
/// 64-bit hash of `(publisher, slug)` (see `newsml::cdc::slug_key`);
/// `body_len` rides along because the synthetic body derivation — shared
/// by both endpoints — is a function of revision *and* length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineHint {
    /// Stable hash of the story line `(publisher, slug)`.
    pub key: u64,
    /// Highest revision of the story the requester holds.
    pub revision: u32,
    /// Body length of that held revision, in bytes.
    pub body_len: u32,
}

impl BaselineHint {
    /// Serialized size: key + revision + length.
    pub const WIRE_SIZE: usize = 16;

    /// Encodes as a compact `key:revision:body_len` string (hex key), the
    /// same attribute-friendly shape as [`RangeSummary::encode`].
    pub fn encode(&self) -> String {
        format!("{:x}:{}:{}", self.key, self.revision, self.body_len)
    }

    /// Decodes [`BaselineHint::encode`] output; `None` on malformed input.
    pub fn decode(s: &str) -> Option<BaselineHint> {
        let mut parts = s.split(':');
        let key = u64::from_str_radix(parts.next()?, 16).ok()?;
        let revision = parts.next()?.parse().ok()?;
        let body_len = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(BaselineHint { key, revision, body_len })
    }
}

/// A bounded, epoch-aware log of sequence-numbered entries from one source.
///
/// Entries are keyed by sequence number; capacity eviction removes the
/// lowest numbers first and raises [`SeqLog::floor`] so the summary never
/// claims knowledge the log no longer has.
#[derive(Debug, Clone)]
pub struct SeqLog<T> {
    epoch: u32,
    floor: u64,
    next: u64,
    entries: BTreeMap<u64, T>,
    capacity: usize,
    total: u64,
}

impl<T> SeqLog<T> {
    /// Creates a log retaining up to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "log needs capacity");
        SeqLog { epoch: 0, floor: 0, next: 0, entries: BTreeMap::new(), capacity, total: 0 }
    }

    /// Current history epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Lowest sequence number the log can still vouch for.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// One past the highest sequence number ever observed.
    pub fn next_seq(&self) -> u64 {
        self.next
    }

    /// Retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entries ever inserted (including evicted ones).
    pub fn total_written(&self) -> u64 {
        self.total
    }

    /// Inserts `value` at `seq`. Returns `false` (and keeps the existing
    /// entry) for duplicates and for sequence numbers below the floor —
    /// those were already evicted, and readmitting them would make the
    /// summary lie.
    pub fn insert(&mut self, seq: u64, value: T) -> bool {
        if seq < self.floor || self.entries.contains_key(&seq) {
            return false;
        }
        self.entries.insert(seq, value);
        self.next = self.next.max(seq + 1);
        self.total += 1;
        while self.entries.len() > self.capacity {
            let (&lowest, _) = self.entries.iter().next().expect("non-empty over capacity");
            self.entries.remove(&lowest);
            self.floor = lowest + 1;
        }
        true
    }

    /// True when `seq` is retained.
    pub fn contains(&self, seq: u64) -> bool {
        self.entries.contains_key(&seq)
    }

    /// The retained entry at `seq`, if any.
    pub fn get(&self, seq: u64) -> Option<&T> {
        self.entries.get(&seq)
    }

    /// Iterates retained `(seq, entry)` pairs in the inclusive range, in
    /// sequence order.
    pub fn range(&self, lo: u64, hi: u64) -> impl Iterator<Item = (u64, &T)> {
        self.entries.range(lo..=hi).map(|(s, v)| (*s, v))
    }

    /// Drops all entries below `seq` and raises the floor to at least `seq`.
    pub fn prune_below(&mut self, seq: u64) {
        self.entries = self.entries.split_off(&seq);
        self.floor = self.floor.max(seq);
        self.next = self.next.max(self.floor);
    }

    /// Starts a new history epoch, forgetting all prior coverage. Used when
    /// a source restarts with fresh sequence numbering.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.floor = 0;
        self.next = 0;
        self.entries.clear();
    }

    /// Adopts `epoch` (forgetting prior coverage) if it is newer than ours.
    pub fn adopt_epoch(&mut self, epoch: u32) {
        if epoch > self.epoch {
            self.epoch = epoch;
            self.floor = 0;
            self.next = 0;
            self.entries.clear();
        }
    }

    /// The fixed-size digest of current coverage.
    pub fn summary(&self) -> RangeSummary {
        RangeSummary {
            epoch: self.epoch,
            floor: self.floor,
            next: self.next,
            present: self.entries.len() as u64,
        }
    }

    /// The holes inside our own window, as inclusive `(lo, hi)` ranges.
    pub fn gaps(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = self.floor;
        for &seq in self.entries.keys() {
            if seq > cursor {
                out.push((cursor, seq - 1));
            }
            cursor = seq + 1;
        }
        if cursor < self.next {
            out.push((cursor, self.next - 1));
        }
        out
    }

    /// Encodes the structural coverage state — `epoch:floor:next:total` —
    /// for stable-storage snapshots. Entry *values* are persisted by the
    /// owning layer (they may be arbitrarily large); after re-inserting
    /// them, [`SeqLog::restore_coverage`] re-imposes this structure so the
    /// restored log reports the same summary, floor and gaps as the
    /// snapshotted one.
    pub fn encode_coverage(&self) -> String {
        format!("{}:{}:{}:{}", self.epoch, self.floor, self.next, self.total)
    }

    /// Re-imposes snapshotted coverage on a log whose surviving entries have
    /// been re-inserted: adopts the epoch, floor and highwater, prunes any
    /// entry below the snapshot floor, and restores the lifetime insert
    /// count. Entries the snapshot claimed but the caller could not restore
    /// simply become gaps — exactly what anti-entropy repairs. Returns
    /// `false` (leaving the log untouched) on malformed input.
    pub fn restore_coverage(&mut self, s: &str) -> bool {
        let mut parts = s.split(':');
        let Some(epoch) = parts.next().and_then(|p| p.parse().ok()) else { return false };
        let Some(floor) = parts.next().and_then(|p| p.parse::<u64>().ok()) else { return false };
        let Some(next) = parts.next().and_then(|p| p.parse::<u64>().ok()) else { return false };
        let Some(total) = parts.next().and_then(|p| p.parse::<u64>().ok()) else { return false };
        if parts.next().is_some() || next < floor {
            return false;
        }
        self.epoch = epoch;
        self.prune_below(floor);
        self.next = self.next.max(next);
        self.total = self.total.max(total);
        true
    }

    /// The sequence numbers we should pull from a peer advertising `peer`,
    /// as inclusive `(lo, hi)` ranges: our internal holes that fall inside
    /// the peer's window, plus the tail the peer has seen beyond our
    /// highwater. Nothing below our own floor is requested — that history
    /// was deliberately evicted.
    ///
    /// Epochs order histories: a peer on an older epoch has nothing for us;
    /// a peer on a newer epoch supersedes everything we hold, so its whole
    /// window is requested (the caller should [`SeqLog::adopt_epoch`] when
    /// the items arrive).
    pub fn missing_given(&self, peer: &RangeSummary) -> Vec<(u64, u64)> {
        if peer.epoch < self.epoch || peer.is_empty() {
            return Vec::new();
        }
        if peer.epoch > self.epoch {
            return vec![(peer.floor, peer.next - 1)];
        }
        let lo_bound = peer.floor.max(self.floor);
        let hi_bound = peer.next; // exclusive
        let mut out = Vec::new();
        for (lo, hi) in self.gaps() {
            let lo = lo.max(lo_bound);
            if hi_bound > 0 && lo <= hi.min(hi_bound - 1) {
                out.push((lo, hi.min(hi_bound - 1)));
            }
        }
        if hi_bound > self.next {
            let lo = self.next.max(lo_bound);
            if lo < hi_bound {
                out.push((lo, hi_bound - 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(seqs: &[u64]) -> SeqLog<u64> {
        let mut log = SeqLog::new(1024);
        for &s in seqs {
            log.insert(s, s * 10);
        }
        log
    }

    #[test]
    fn baseline_hint_roundtrip_and_rejection() {
        let h = BaselineHint { key: 0xDEAD_BEEF_1234_5678, revision: 7, body_len: 4_096 };
        assert_eq!(BaselineHint::decode(&h.encode()), Some(h));
        assert_eq!(BaselineHint::decode(""), None);
        assert_eq!(BaselineHint::decode("zz:1:2"), None);
        assert_eq!(BaselineHint::decode("ff:1"), None);
        assert_eq!(BaselineHint::decode("ff:1:2:3"), None);
        assert_eq!(BaselineHint::WIRE_SIZE, 16);
    }

    #[test]
    fn empty_log_summary_and_gaps() {
        let log: SeqLog<()> = SeqLog::new(8);
        let s = log.summary();
        assert!(s.is_empty());
        assert!(s.contiguous());
        assert_eq!(s, RangeSummary { epoch: 0, floor: 0, next: 0, present: 0 });
        assert!(log.gaps().is_empty());
        // An empty log wants everything a non-empty peer advertises.
        let peer = RangeSummary { epoch: 0, floor: 2, next: 7, present: 5 };
        assert_eq!(log.missing_given(&peer), vec![(2, 6)]);
        // And nothing from an empty peer.
        assert!(log.missing_given(&RangeSummary::default()).is_empty());
    }

    #[test]
    fn single_gap_detected_and_requested() {
        let log = filled(&[0, 1, 2, 5, 6]);
        assert_eq!(log.gaps(), vec![(3, 4)]);
        let s = log.summary();
        assert_eq!(s, RangeSummary { epoch: 0, floor: 0, next: 7, present: 5 });
        assert!(!s.contiguous());
        // A contiguous peer covering the window fills the hole and the tail.
        let peer = RangeSummary { epoch: 0, floor: 0, next: 9, present: 9 };
        assert_eq!(log.missing_given(&peer), vec![(3, 4), (7, 8)]);
        // A peer whose window misses the hole only supplies the tail.
        let late = RangeSummary { epoch: 0, floor: 5, next: 9, present: 4 };
        assert_eq!(log.missing_given(&late), vec![(7, 8)]);
    }

    #[test]
    fn capacity_eviction_raises_floor() {
        let mut log = SeqLog::new(4);
        for seq in 0..10 {
            assert!(log.insert(seq, ()));
        }
        // Wrapped 6 entries past capacity: floor chased the evictions.
        assert_eq!(log.len(), 4);
        assert_eq!(log.floor(), 6);
        assert_eq!(log.summary(), RangeSummary { epoch: 0, floor: 6, next: 10, present: 4 });
        assert!(log.summary().contiguous());
        assert_eq!(log.total_written(), 10);
        // Evicted history is not readmitted and not re-requested.
        assert!(!log.insert(3, ()));
        let peer = RangeSummary { epoch: 0, floor: 0, next: 10, present: 10 };
        assert!(log.missing_given(&peer).is_empty());
    }

    #[test]
    fn eviction_with_gaps_skips_stranded_holes() {
        let mut log = SeqLog::new(3);
        for seq in [0, 1, 4, 6, 7] {
            log.insert(seq, ());
        }
        // 0 and 1 evicted; floor lands past the evicted entry, leaving the
        // still-reachable hole at 5.
        assert_eq!(log.floor(), 2);
        assert_eq!(log.gaps(), vec![(2, 3), (5, 5)]);
        let peer = RangeSummary { epoch: 0, floor: 0, next: 8, present: 8 };
        assert_eq!(log.missing_given(&peer), vec![(2, 3), (5, 5)]);
    }

    #[test]
    fn duplicates_rejected() {
        let mut log = SeqLog::new(8);
        assert!(log.insert(3, "a"));
        assert!(!log.insert(3, "b"));
        assert_eq!(log.get(3), Some(&"a"));
        assert_eq!(log.total_written(), 1);
    }

    #[test]
    fn epochs_order_histories() {
        let mut log = filled(&[0, 1, 2]);
        let newer = RangeSummary { epoch: 2, floor: 5, next: 9, present: 4 };
        assert_eq!(log.missing_given(&newer), vec![(5, 8)]);
        let older = RangeSummary { epoch: 0, floor: 0, next: 50, present: 50 };
        log.bump_epoch();
        assert_eq!(log.epoch(), 1);
        assert!(log.missing_given(&older).is_empty());
        assert!(log.is_empty());
        // adopt_epoch is monotone.
        log.insert(0, 99);
        log.adopt_epoch(1);
        assert!(log.contains(0));
        log.adopt_epoch(4);
        assert_eq!(log.epoch(), 4);
        assert!(!log.contains(0));
    }

    #[test]
    fn prune_below_truncates() {
        let mut log = filled(&[0, 1, 2, 3, 4]);
        log.prune_below(3);
        assert_eq!(log.floor(), 3);
        assert_eq!(log.len(), 2);
        assert!(log.summary().contiguous());
    }

    #[test]
    fn summary_roundtrip_and_malformed() {
        let s = RangeSummary { epoch: 3, floor: 17, next: 40, present: 20 };
        assert_eq!(RangeSummary::decode(&s.encode()), Some(s));
        for bad in ["", "1:2:3", "1:2:3:4:5", "a:0:0:0", "0:9:3:0", "0:0:4:9"] {
            assert_eq!(RangeSummary::decode(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn coverage_roundtrip_restores_summary_and_gaps() {
        let mut log = SeqLog::new(4);
        log.bump_epoch();
        log.bump_epoch();
        for seq in [0, 1, 2, 3, 4, 5, 8] {
            log.insert(seq, seq * 10);
        }
        assert!(log.floor() > 0, "eviction must have raised the floor");
        let snap = log.encode_coverage();
        let retained: Vec<(u64, u64)> = log.range(0, u64::MAX).map(|(s, v)| (s, *v)).collect();

        // Cold restart: re-insert the surviving values, then re-impose the
        // snapshot structure.
        let mut restored = SeqLog::new(4);
        for (seq, v) in retained {
            restored.insert(seq, v);
        }
        assert!(restored.restore_coverage(&snap));
        assert_eq!(restored.summary(), log.summary());
        assert_eq!(restored.gaps(), log.gaps());
        assert_eq!(restored.total_written(), log.total_written());
    }

    #[test]
    fn coverage_restore_with_lost_entries_reports_gaps() {
        let mut log = SeqLog::new(64);
        for seq in 0..5 {
            log.insert(seq, ());
        }
        let snap = log.encode_coverage();
        // Only seqs 0 and 1 survived the crash (the rest were unsynced).
        let mut restored = SeqLog::new(64);
        restored.insert(0, ());
        restored.insert(1, ());
        assert!(restored.restore_coverage(&snap));
        assert_eq!(restored.summary().next, 5, "highwater survives the losses");
        assert_eq!(restored.gaps(), vec![(2, 4)], "lost entries surface as repairable gaps");
    }

    #[test]
    fn coverage_restore_rejects_malformed() {
        let mut log: SeqLog<()> = SeqLog::new(8);
        log.insert(0, ());
        for bad in ["", "1:2:3", "1:2:3:4:5", "x:0:0:0", "0:9:3:0"] {
            assert!(!log.restore_coverage(bad), "{bad:?}");
        }
        assert_eq!(log.summary(), RangeSummary { epoch: 0, floor: 0, next: 1, present: 1 });
    }

    #[test]
    fn range_iterates_in_order() {
        let log = filled(&[5, 1, 9, 3]);
        let got: Vec<u64> = log.range(2, 9).map(|(s, _)| s).collect();
        assert_eq!(got, vec![3, 5, 9]);
    }
}
