//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! Bloom-filter operations, aggregation-language parsing/evaluation, zone
//! table merging/diffing, SendToZone routing, NITF XML round-trips, queue
//! disciplines and raw simulator event throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use amcast::{ForwardingQueues, Strategy};
use astrolabe::{
    parse_predicate, parse_program, run_program, Mib, MibBuilder, Stamp, ZoneId, ZoneTable,
};
use filters::{positions, BloomFilter};
use newsml::{from_nitf_xml, to_nitf_xml, Category, NewsItem, PublisherId};
use simnet::{fork, NetworkModel, Node, NodeId, SimDuration, SimTime, Simulation};

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    g.bench_function("insert_1024b", |b| {
        let mut f = BloomFilter::new(1024, 3);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            f.insert(&format!("subject/{i}"));
        });
    });
    let mut filled = BloomFilter::new(1024, 3);
    for i in 0..200 {
        filled.insert(&format!("subject/{i}"));
    }
    g.bench_function("contains_1024b", |b| {
        b.iter(|| black_box(filled.contains(black_box("subject/123"))))
    });
    g.bench_function("contains_miss_1024b", |b| {
        // The common fast-path in routing: a subject the filter never saw.
        b.iter(|| black_box(filled.contains(black_box("absent/topic/999"))))
    });
    g.bench_function("positions_1024b", |b| {
        b.iter(|| black_box(positions(black_box("reuters/politics"), 1024, 3)))
    });
    let other = filled.clone();
    g.bench_function("union_1024b", |b| {
        b.iter_batched(
            || filled.clone(),
            |mut f| {
                f.union(&other);
                f
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_agg(c: &mut Criterion) {
    let mut g = c.benchmark_group("agg");
    let src = "SELECT REPSEL(2, load, reps) AS reps, MIN(load) AS load, \
               SUM(nmembers) AS nmembers WHERE nmembers > 0";
    g.bench_function("parse_program", |b| b.iter(|| parse_program(black_box(src)).unwrap()));
    let prog = parse_program(src).unwrap();
    let rows: Vec<Mib> = (0..64u32)
        .map(|i| {
            let mut reps = std::collections::BTreeSet::new();
            reps.insert(u64::from(i));
            MibBuilder::new()
                .attr("load", f64::from(i) / 64.0)
                .attr("nmembers", 10i64)
                .attr("reps", astrolabe::AttrValue::Set(reps))
                .build(Stamp::default())
        })
        .collect();
    g.bench_function("run_program_64rows", |b| {
        b.iter(|| run_program(black_box(&prog), black_box(&rows)).unwrap())
    });
    let pred = parse_predicate("urgency <= 3 AND CONTAINS(source, 'reuters')").unwrap();
    let row = MibBuilder::new()
        .attr("urgency", 2i64)
        .attr("source", "reuters-wire")
        .build(Stamp::default());
    g.bench_function("eval_predicate", |b| {
        b.iter(|| astrolabe::eval_predicate(black_box(&pred), black_box(&row)).unwrap())
    });
    g.finish();
}

fn bench_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("zone_table");
    let rows: Vec<(u16, Arc<Mib>)> = (0..64u16)
        .map(|i| {
            (
                i,
                Arc::new(MibBuilder::new().attr("load", f64::from(i)).build(Stamp {
                    issued_us: u64::from(i),
                    version: 0,
                    origin: u32::from(i),
                })),
            )
        })
        .collect();
    g.bench_function("merge_64_rows", |b| {
        b.iter_batched(
            || ZoneTable::new(ZoneId::root()),
            |mut t| {
                for (l, r) in &rows {
                    t.merge_row(*l, Arc::clone(r));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    let mut full = ZoneTable::new(ZoneId::root());
    for (l, r) in &rows {
        full.merge_row(*l, Arc::clone(r));
    }
    let digest = full.digest();
    g.bench_function("diff_identical_64", |b| b.iter(|| black_box(full.diff(black_box(&digest)))));
    g.bench_function("diff_into_identical_64", |b| {
        let mut newer = Vec::new();
        let mut missing = Vec::new();
        b.iter(|| {
            full.diff_into(black_box(&digest), &mut newer, &mut missing);
            black_box((&newer, &missing));
        })
    });
    g.bench_function("digest_64", |b| b.iter(|| black_box(full.digest())));
    g.finish();
}

/// Calendar queue vs a plain `BinaryHeap` at steady queue depths — the
/// scheduler's hot loop (one pop, one push at a later time) with ~100-byte
/// bodies, the shape the simulator actually queues.
fn bench_sched(c: &mut Criterion) {
    use simnet::EventQueue;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    type Body = [u64; 12];
    let mut g = c.benchmark_group("sched");
    for depth in [1_000u64, 10_000, 100_000] {
        g.bench_function(format!("calendar_pop_push_d{depth}"), |b| {
            let mut q: EventQueue<Body> = EventQueue::new();
            let mut seq = 0u64;
            for _ in 0..depth {
                seq += 1;
                q.push((seq * 37) % 4_000_000, 0, seq, [seq; 12]);
            }
            b.iter(|| {
                let (t, _a, _b, body) = q.pop().unwrap();
                seq += 1;
                q.push(t + 1 + (seq * 37) % 2_000_000, 0, seq, body);
                black_box(t)
            });
        });
        g.bench_function(format!("binheap_pop_push_d{depth}"), |b| {
            let mut q: BinaryHeap<Reverse<(u64, u64, Body)>> = BinaryHeap::new();
            let mut seq = 0u64;
            for _ in 0..depth {
                seq += 1;
                q.push(Reverse(((seq * 37) % 4_000_000, seq, [seq; 12])));
            }
            b.iter(|| {
                let Reverse((t, _s, body)) = q.pop().unwrap();
                seq += 1;
                q.push(Reverse((t + 1 + (seq * 37) % 2_000_000, seq, body)));
                black_box(t)
            });
        });
    }
    g.finish();
}

/// The gossip heartbeat hot path: re-merging all 64 rows of a zone table
/// with fresh stamps. `restamped` shares the attrs allocation (the new flat
/// layout); `rebuilt` reconstructs every attribute per round (the old
/// per-heartbeat cost).
fn bench_flat_rows(c: &mut Criterion) {
    use astrolabe::AttrValue;
    let mut g = c.benchmark_group("flat_rows");
    let mk_attrs = |i: u64| {
        let mut reps = std::collections::BTreeSet::new();
        reps.insert(i);
        reps.insert(i + 64);
        (format!("host-{i}"), reps)
    };
    let rows: Vec<Arc<Mib>> = (0..64u64)
        .map(|i| {
            let (name, reps) = mk_attrs(i);
            Arc::new(
                MibBuilder::new()
                    .attr("load", i as f64 / 64.0)
                    .attr("name", name.as_str())
                    .attr("reps", AttrValue::Set(reps))
                    .build(Stamp { issued_us: 1, version: i, origin: i as u32 }),
            )
        })
        .collect();
    let mut table = ZoneTable::new(ZoneId::root());
    for (l, r) in rows.iter().enumerate() {
        table.merge_row(l as u16, Arc::clone(r));
    }

    g.bench_function("heartbeat_restamped_64", |b| {
        let mut v = 1_000u64;
        b.iter(|| {
            v += 1;
            for (l, r) in rows.iter().enumerate() {
                let s = Stamp { issued_us: v, version: v, origin: l as u32 };
                table.merge_row(l as u16, Arc::new(r.restamped(s)));
            }
            black_box(table.digest().len())
        })
    });
    g.bench_function("heartbeat_rebuilt_64", |b| {
        let mut v = 100_000_000u64;
        b.iter(|| {
            v += 1;
            for i in 0..64u64 {
                let (name, reps) = mk_attrs(i);
                let s = Stamp { issued_us: v, version: v, origin: i as u32 };
                let m = MibBuilder::new()
                    .attr("load", i as f64 / 64.0)
                    .attr("name", name.as_str())
                    .attr("reps", AttrValue::Set(reps))
                    .build(s);
                table.merge_row(i as u16, Arc::new(m));
            }
            black_box(table.digest().len())
        })
    });
    g.finish();
}

fn bench_seqlog(c: &mut Criterion) {
    use amcast::SeqLog;
    let mut g = c.benchmark_group("seqlog");
    // A log with a gappy tail (every 7th entry missing) against a peer that
    // has everything — the shape repair traffic actually sees.
    let mut log: SeqLog<u64> = SeqLog::new(4096);
    for seq in 0..2048u64 {
        if seq % 7 != 3 {
            log.insert(seq, seq);
        }
    }
    let mut complete: SeqLog<u64> = SeqLog::new(4096);
    for seq in 0..2048u64 {
        complete.insert(seq, seq);
    }
    let peer = complete.summary();
    g.bench_function("missing_given_2048_gappy", |b| {
        b.iter(|| black_box(log.missing_given(black_box(&peer))))
    });
    let synced = complete.summary();
    g.bench_function("missing_given_2048_synced", |b| {
        b.iter(|| black_box(complete.missing_given(black_box(&synced))))
    });
    g.finish();
}

fn bench_nitf(c: &mut Criterion) {
    let item = NewsItem::builder(PublisherId(3), 42)
        .headline("Benchmarked headline with some length to it")
        .category(Category::Technology)
        .subject("04.003.005".parse().unwrap())
        .meta("region", "eu")
        .body_len(1800)
        .build();
    let xml = to_nitf_xml(&item);
    let mut g = c.benchmark_group("nitf");
    g.bench_function("to_xml", |b| b.iter(|| black_box(to_nitf_xml(black_box(&item)))));
    g.bench_function("from_xml", |b| b.iter(|| from_nitf_xml(black_box(&xml)).unwrap()));
    g.finish();
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("queues");
    for (name, strategy) in [
        ("fifo", Strategy::Fifo),
        ("wrr", Strategy::WeightedRoundRobin),
        ("priority", Strategy::Priority),
    ] {
        g.bench_function(format!("push_pop_64_{name}"), |b| {
            b.iter_batched(
                || {
                    let mut q = ForwardingQueues::new(strategy);
                    for i in 0..64u64 {
                        q.push((i % 8) as u16, i, (i % 5) as u8 + 1, i);
                    }
                    q
                },
                |mut q| {
                    while let Some(item) = q.pop() {
                        black_box(item.item);
                    }
                    q
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// A trivial node that forwards each message once around a ring, to measure
/// raw engine throughput.
struct Ring {
    next: NodeId,
}
impl Node for Ring {
    type Msg = Vec<u8>;
    fn on_start(&mut self, _ctx: &mut simnet::Context<'_, Vec<u8>>) {}
    fn on_message(
        &mut self,
        ctx: &mut simnet::Context<'_, Vec<u8>>,
        _from: NodeId,
        mut m: Vec<u8>,
    ) {
        if m[0] > 0 {
            m[0] -= 1;
            ctx.send(self.next, m);
        }
    }
    fn on_timer(
        &mut self,
        _ctx: &mut simnet::Context<'_, Vec<u8>>,
        _t: simnet::TimerId,
        _tag: u64,
    ) {
    }
}

fn bench_simnet(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet");
    g.bench_function("ring_10k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_micros(10)), 1);
            for i in 0..8u32 {
                sim.add_node(Ring { next: NodeId((i + 1) % 8) });
            }
            sim.schedule_external(SimTime::ZERO, NodeId(0), vec![200u8]);
            sim.run_to_quiescence(100_000);
            black_box(sim.events_processed())
        })
    });
    g.finish();
}

fn bench_route(c: &mut Criterion) {
    use astrolabe::{Agent, Config, ZoneLayout};
    // A converged 64-node agent (synchronous rounds, no network).
    let layout = ZoneLayout::new(64, 8);
    let mut config = Config::standard();
    config.branching = 8;
    let mut agents: Vec<Agent> =
        (0..64).map(|i| Agent::new(i, &layout, config.clone(), vec![0])).collect();
    let mut rng = fork(5, 0);
    for round in 1..=20u64 {
        let now = SimTime::from_secs(round);
        let mut inflight = Vec::new();
        for a in agents.iter_mut() {
            for (to, m) in a.on_tick(now, &mut rng) {
                inflight.push((a.id(), to, m));
            }
        }
        while let Some((from, to, msg)) = inflight.pop() {
            if let Some(b) = agents.iter_mut().find(|a| a.id() == to) {
                for (to2, m2) in b.on_message(now, from, msg, &mut rng) {
                    inflight.push((to, to2, m2));
                }
            }
        }
    }
    let agent = &agents[0];
    let filter = amcast::FilterSpec::All;
    let mut g = c.benchmark_group("route");
    g.bench_function("sendtozone_root_64", |b| {
        let mut r = fork(6, 0);
        b.iter(|| black_box(amcast::route(agent, &filter, &ZoneId::root(), 2, &mut r)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .sample_size(30);
    targets = bench_bloom, bench_agg, bench_table, bench_sched, bench_flat_rows, bench_seqlog,
        bench_nitf, bench_queues, bench_simnet, bench_route
}
criterion_main!(benches);
