//! The experiment runner: regenerates every table of the reproduction.
//!
//! ```text
//! cargo run -p bench --release --bin experiments              # all of E1–E14 + A1
//! cargo run -p bench --release --bin experiments -- e3 e5     # a subset
//! cargo run -p bench --release --bin experiments -- --quick   # smaller sizes
//! ```

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let requested: Vec<String> =
        args.iter().filter(|a| !a.starts_with('-')).map(|a| a.to_lowercase()).collect();
    let ids: Vec<&str> = if requested.is_empty() {
        bench::ALL.to_vec()
    } else {
        requested.iter().map(String::as_str).collect()
    };

    println!(
        "# NewsWire reproduction — experiment suite ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    let t0 = Instant::now();
    for id in ids {
        let start = Instant::now();
        if !bench::run(id, quick) {
            eprintln!("unknown experiment `{id}` (valid: {:?})", bench::ALL);
            std::process::exit(2);
        }
        println!("[{id} took {:.1}s]\n", start.elapsed().as_secs_f64());
    }
    println!("# suite completed in {:.1}s", t0.elapsed().as_secs_f64());
}
