//! `perf` — the wall-clock performance harness.
//!
//! Runs fixed seeded scenarios (Astrolabe convergence, NewsWire fan-out
//! under chaos, raw simnet throughput) and writes `BENCH.json`:
//!
//! ```text
//! cargo run -p bench --release --bin perf                    # full suite
//! cargo run -p bench --release --bin perf -- --quick         # CI smoke
//! cargo run -p bench --release --bin perf -- --out B.json    # custom path
//! cargo run -p bench --release --bin perf -- --compare BENCH.json
//! ```
//!
//! `--compare` prints a report-only delta against a committed baseline; it
//! never exits nonzero on a regression — the numbers are for humans and CI
//! logs, the committed `BENCH.json` is the durable record.

use bench::perf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = perf::RunOpts::default();
    let mut out = String::from("BENCH.json");
    let mut compare_with: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--slow" => opts.slow = true,
            "--only" => opts.only = Some(it.next().expect("--only needs a substring").clone()),
            "--out" => out = it.next().expect("--out needs a path").clone(),
            "--compare" => compare_with = Some(it.next().expect("--compare needs a path").clone()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf [--quick] [--slow] [--only SUBSTR] [--out PATH] [--compare BASELINE]"
                );
                std::process::exit(2);
            }
        }
    }

    let results = perf::run_all(&opts);
    let json = perf::to_json(&results, opts.quick);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
    print!("{}", perf::wire_table(&results));

    if let Some(path) = compare_with {
        match std::fs::read_to_string(&path) {
            Ok(baseline) => print!("{}", perf::compare(&results, &baseline)),
            Err(e) => println!("no baseline at {path} ({e}); skipping comparison"),
        }
    }
}
