//! # bench — the experiment harness of the NewsWire reproduction
//!
//! One module per experiment (E1–E14, see `DESIGN.md` §3 for the index
//! mapping each to the paper claim it reproduces). The `experiments` binary
//! runs them and prints the tables recorded in `EXPERIMENTS.md`:
//!
//! ```text
//! cargo run -p bench --release --bin experiments            # all
//! cargo run -p bench --release --bin experiments -- e3 e5   # a subset
//! cargo run -p bench --release --bin experiments -- --quick # smaller sizes
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
mod table;

pub use table::Table;

/// Experiment ids in run order.
pub const ALL: [&str; 20] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e16",
    "e17", "e18", "e20", "e21", "a1",
];

/// Runs one experiment by id (`"e1"`…`"e18"`); `quick` shrinks problem
/// sizes for smoke runs. Returns `false` for an unknown id.
pub fn run(id: &str, quick: bool) -> bool {
    match id {
        "e1" => experiments::e01_latency::run(quick),
        "e2" => experiments::e02_publisher_load::run(quick),
        "e3" => experiments::e03_redundancy::run(quick),
        "e4" => experiments::e04_overload::run(quick),
        "e5" => experiments::e05_bloom::run(quick),
        "e6" => experiments::e06_convergence::run(quick),
        "e7" => experiments::e07_robustness::run(quick),
        "e8" => experiments::e08_bimodal::run(quick),
        "e9" => experiments::e09_scoped::run(quick),
        "e10" => experiments::e10_queues::run(quick),
        "e11" => experiments::e11_repair::run(quick),
        "e12" => experiments::e12_gossip_cost::run(quick),
        "e13" => experiments::e13_chaos::run(quick),
        "e14" => experiments::e14_partition::run(quick),
        "e16" => experiments::e16_recovery::run(quick),
        "e17" => experiments::e17_adversary::run(quick),
        "e18" => experiments::e18_byzantine::run(quick),
        "e20" => experiments::e20_wire::run(quick),
        "e21" => experiments::e21_trust_rotation::run(quick),
        "a1" => experiments::a01_models::run(quick),
        _ => return false,
    }
    true
}
