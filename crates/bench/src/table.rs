//! Plain-text table rendering for the experiment harness.

/// A right-aligned text table with a title and a caption line.
///
/// ```
/// let mut t = bench::Table::new("demo", &["n", "value"]);
/// t.row(&["1", "2.50"]);
/// let s = t.render();
/// assert!(s.contains("demo"));
/// assert!(s.contains("2.50"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    caption: Option<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            caption: None,
        }
    }

    /// Sets a caption printed under the table (paper basis, notes).
    pub fn caption(&mut self, text: impl Into<String>) -> &mut Self {
        self.caption = Some(text.into());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[impl AsRef<str>]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.iter().map(|c| c.as_ref().to_owned()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("  ");
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                line.push_str(&" ".repeat(pad));
                line.push_str(cell);
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1) + 2;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        if let Some(c) = &self.caption {
            out.push_str(&format!("  ({c})\n"));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("t", &["a", "long-header"]);
        t.row(&["123456", "x"]);
        t.caption("note");
        let s = t.render();
        assert!(s.contains("## t"));
        assert!(s.contains("123456"));
        assert!(s.contains("(note)"));
        // Header row and data row end aligned on the last column.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        Table::new("t", &["a", "b"]).row(&["only-one"]);
    }
}
