//! E1 — delivery latency vs. system size.
//!
//! Paper basis (abstract, §9): "deliver news updates to hundreds of
//! thousands of subscribers within tens of seconds of the moment of
//! publishing"; "Our system seeks to deliver news items to the subscribers
//! in the order of tens of seconds, even if tens or hundreds of thousands
//! of subscribers are active."
//!
//! We sweep the subscriber count at the paper's branching factor (64) and
//! report publish→deliver latency percentiles. The *shape* to reproduce:
//! latency grows with tree depth (≈ log₆₄ N hops plus gossip freshness),
//! staying well inside "tens of seconds" at 10⁴–10⁵ subscribers.

use simnet::SimDuration;

use crate::experiments::support::{dump_telemetry, newswire_deployment, settle_secs, tech_item};
use crate::Table;

pub(crate) fn run(quick: bool) {
    let sizes: &[u32] = if quick { &[500, 2_000] } else { &[1_000, 4_000, 16_000, 65_536] };
    let mut table = Table::new(
        "E1 — publish→deliver latency vs subscribers (branching 64)",
        &["subscribers", "levels", "items", "deliveries", "p50 s", "p99 s", "max s"],
    );
    for &n in sizes {
        let mut d = newswire_deployment(n, 64, 0xE1);
        d.settle(settle_secs(n));
        let t0 = d.sim.now();
        let items = 5u64;
        for seq in 0..items {
            d.publish(t0 + SimDuration::from_secs(2 * seq), tech_item(seq));
        }
        d.settle(40);
        // Latency quantiles come from the telemetry registry's raw
        // delivery-latency series (identical to the per-node walk — no node
        // churns in this sweep); the walk remains the obs-off fallback.
        let mut lat =
            d.delivery_latency_from_registry().unwrap_or_else(|| d.delivery_latency_summary());
        let levels = d.layout.levels() + 1;
        if lat.is_empty() {
            table.row(&[
                n.to_string(),
                levels.to_string(),
                items.to_string(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        table.row(&[
            n.to_string(),
            levels.to_string(),
            items.to_string(),
            lat.len().to_string(),
            format!("{:.2}", lat.quantile(0.5)),
            format!("{:.2}", lat.quantile(0.99)),
            format!("{:.2}", lat.max()),
        ]);
        dump_telemetry(&format!("e1_n{n}"), &mut d.sim);
    }
    table.caption(
        "paper: delivery within tens of seconds at 10^5 subscribers; \
         shape: latency ~ tree depth, far below the tens-of-seconds bound",
    );
    table.print();
}
