//! E6 — propagation of subscriptions/attributes to the root.
//!
//! Paper basis (§6): "Eventually (within tens of seconds) the root zone
//! will have all the information on whether there are leaf nodes in the
//! system that have subscribed to particular publications."
//!
//! Two measurements per configuration: (a) time from cold start until the
//! root tables of probe nodes account for full membership, and (b) after
//! convergence, time for a *new* attribute set at one leaf to become
//! visible in the root summaries everywhere (the path a new subscription
//! takes before items start flowing).

use astrolabe::{Agent, AggSpec, AstroNode, AttrValue, Config, ZoneLayout};
use rand::Rng;
use simnet::{fork, NetworkModel, NodeId, SimDuration, SimTime, Simulation};

use crate::Table;

fn build(n: u32, branching: u16, seed: u64) -> Simulation<AstroNode> {
    let layout = ZoneLayout::new(n, branching);
    let mut config = Config::standard();
    config.branching = branching;
    config.aggregations.push(AggSpec::new("flag", "SELECT ORINT(flag) AS flag"));
    let mut contact_rng = fork(seed, 99);
    let mut sim = Simulation::new(NetworkModel::default(), seed);
    for i in 0..n {
        let contacts: Vec<u32> = (0..3).map(|_| contact_rng.gen_range(0..n)).collect();
        sim.add_node(AstroNode::new(Agent::new(i, &layout, config.clone(), contacts)));
    }
    sim
}

fn members_at_root(sim: &Simulation<AstroNode>, probe: u32) -> i64 {
    sim.node(NodeId(probe))
        .agent
        .root_table()
        .iter()
        .filter_map(|(_, r)| r.get("nmembers").and_then(|v| v.as_i64()))
        .sum()
}

fn flag_at_root(sim: &Simulation<AstroNode>, probe: u32) -> bool {
    sim.node(NodeId(probe))
        .agent
        .root_table()
        .iter()
        .any(|(_, r)| matches!(r.get("flag"), Some(AttrValue::Int(v)) if *v != 0))
}

pub(crate) fn run(quick: bool) {
    let configs: &[(u32, u16)] =
        if quick { &[(64, 8), (512, 8)] } else { &[(64, 8), (512, 8), (512, 64), (4_096, 16)] };
    let mut table = Table::new(
        "E6 — time for information to reach the root (gossip every 2 s)",
        &["agents", "branching", "levels", "t_membership s", "t_new_subscription s"],
    );
    for &(n, b) in configs {
        let mut sim = build(n, b, 0xE6);
        let probes = [0u32, n / 2, n - 1];
        // (a) membership convergence from cold start.
        let mut t_members = None;
        for t in 1..=300u64 {
            sim.run_until(SimTime::from_secs(t));
            if probes.iter().all(|&p| members_at_root(&sim, p) == i64::from(n)) {
                t_members = Some(t);
                break;
            }
        }
        // (b) new-attribute propagation from a converged state.
        let start = sim.now();
        sim.node_mut(NodeId(n / 3)).agent.set_local_attr("flag", 1i64);
        let mut t_flag = None;
        for t in 1..=300u64 {
            sim.run_until(start + SimDuration::from_secs(t));
            if probes.iter().all(|&p| flag_at_root(&sim, p)) {
                t_flag = Some(t);
                break;
            }
        }
        let layout = ZoneLayout::new(n, b);
        table.row(&[
            n.to_string(),
            b.to_string(),
            (layout.levels() + 1).to_string(),
            t_members.map_or("-".into(), |t| t.to_string()),
            t_flag.map_or("-".into(), |t| t.to_string()),
        ]);
    }
    table.caption(
        "paper: root has full subscription information 'within tens of seconds'; \
         shape: both times sit in the tens of seconds and grow slowly with depth",
    );
    table.print();
}
