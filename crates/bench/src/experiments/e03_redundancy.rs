//! E3 — redundant data received by polling consumers.
//!
//! Paper basis (§1): "It is estimated that a consumer who returns 4 times
//! during a day receives about 70% redundant data. Consumers who return
//! more frequently (and Slashdot.org has many) receive a much higher rate
//! of redundant data."
//!
//! The polling model replays a Slashdot-like publication trace (~25
//! stories/day Zipf-topical, from the workload generator) against the
//! rolling 20-headline front page and accounts exactly which served
//! headlines the consumer had already seen.

use baselines::simulate_polling;
use newsml::{PublisherId, PublisherProfile, TraceGenerator};
use simnet::fork;

use crate::Table;

const DAY_US: u64 = 86_400_000_000;

pub(crate) fn run(quick: bool) {
    let days: u64 = if quick { 3 } else { 14 };
    let generator = TraceGenerator::new(vec![PublisherProfile::slashdot(PublisherId(0))]);
    let mut rng = fork(0xE3, 0);
    let trace = generator.generate(&mut rng, days * DAY_US);
    let story_times: Vec<u64> = trace.iter().map(|e| e.at_us).collect();
    let per_day = story_times.len() as f64 / days as f64;

    let mut table = Table::new(
        "E3 — redundant data vs poll rate (rolling 20-headline front page)",
        &["polls/day", "fetches", "redundant %", "KB/day served", "KB/day redundant"],
    );
    for polls_per_day in [1u64, 2, 4, 8, 12, 24, 48] {
        let r = simulate_polling(&story_times, DAY_US / polls_per_day, days * DAY_US, 20, 300);
        table.row(&[
            polls_per_day.to_string(),
            r.fetches.to_string(),
            format!("{:.1}", 100.0 * r.redundant_fraction()),
            format!("{:.0}", r.bytes_served as f64 / days as f64 / 1024.0),
            format!("{:.0}", r.bytes_redundant as f64 / days as f64 / 1024.0),
        ]);
    }
    table.caption(format!(
        "trace: {:.1} stories/day over {days} days; paper: ~70% redundant at 4 polls/day, \
         higher for frequent pollers",
        per_day
    ));
    table.print();
}
