//! E11 — end-to-end reliability through the message cache.
//!
//! Paper basis (§9): "The same cache is used for assisting in achieving
//! end-to-end reliability in the case of forwarding node failures, and for
//! a limited state transfer to participants that are joining the system."
//!
//! Part 1: publish a burst while crashing forwarders mid-dissemination on a
//! lossy network, with cache repair enabled vs disabled, and compare the
//! delivery ratio right after the burst and two minutes later.
//! Part 2: a node that was down through the burst recovers cold; we count
//! how many of the missed items state transfer + repair recover.

use newsml::PublisherId;
use newswire::NewsWireConfig;
use simnet::{NodeId, SimDuration, SimTime};

use crate::experiments::support::tech_item;
use crate::Table;

fn deployment(n: u32, repair: bool, seed: u64) -> newswire::Deployment {
    let mut config = NewsWireConfig::tech_news();
    // Log reconciliation (E14/E16) would close these holes too and mask the
    // margin-repair path this experiment isolates — keep it out of the frame.
    config.anti_entropy = false;
    config.redundancy = 1; // expose losses so repair has work to do
    if !repair {
        config.repair_interval = None;
    }
    newswire::DeploymentBuilder::new(n, seed)
        .branching(8)
        .config(config)
        .publisher(newswire::PublisherSpec::global(newsml::PublisherProfile::slashdot(
            PublisherId(0),
        )))
        .cats_per_subscriber(2)
        .wan(0.05)
        .build()
}

struct Outcome {
    early_pct: f64,
    late_pct: f64,
    via_repair: u64,
}

fn run_burst(n: u32, repair: bool, seed: u64) -> Outcome {
    let mut d = deployment(n, repair, seed);
    d.settle(90);
    // Crash 5% of the nodes right as the burst starts.
    let victims: Vec<u32> = (1..n).filter(|i| i % 20 == 3).collect();
    for &v in &victims {
        d.sim.schedule_crash(SimTime::from_secs(90), NodeId(v));
    }
    let items: Vec<_> = (0..10u64).map(tech_item).collect();
    let t0 = d.sim.now();
    for (i, item) in items.iter().enumerate() {
        d.publish(t0 + SimDuration::from_secs(i as u64), item.clone());
    }
    let count = |d: &newswire::Deployment| -> (u64, u64) {
        let mut wanted = 0u64;
        let mut got = 0u64;
        for item in &items {
            for node in d.interested_nodes(item) {
                if victims.contains(&node.0) {
                    continue;
                }
                wanted += 1;
                if d.sim.node(node).has_item(item.id) {
                    got += 1;
                }
            }
        }
        (got, wanted)
    };
    d.settle(20);
    let (early_got, early_wanted) = count(&d);
    d.settle(120);
    let (late_got, late_wanted) = count(&d);
    let via_repair: u64 = d
        .sim
        .iter()
        .map(|(_, node)| node.deliveries.iter().filter(|r| r.via_repair).count() as u64)
        .sum();
    Outcome {
        early_pct: 100.0 * early_got as f64 / early_wanted.max(1) as f64,
        late_pct: 100.0 * late_got as f64 / late_wanted.max(1) as f64,
        via_repair,
    }
}

/// The joiner scenario: returns (missed items, recovered items).
fn run_joiner(n: u32, seed: u64) -> (usize, usize) {
    let mut d = deployment(n, true, seed);
    d.settle(90);
    // Find a subscriber interested in the test items and take it down.
    let probe_item = tech_item(999);
    let victim = *d
        .interested_nodes(&probe_item)
        .iter()
        .find(|node| node.0 > 0)
        .expect("an interested subscriber exists");
    d.sim.schedule_crash(SimTime::from_secs(90), victim);
    let items: Vec<_> = (0..10u64).map(tech_item).collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(95 + i as u64), item.clone());
    }
    d.settle(30);
    let missed = items.iter().filter(|i| !d.sim.node(victim).has_item(i.id)).count();
    d.sim.schedule_recover(d.sim.now() + SimDuration::from_secs(1), victim);
    d.settle(120);
    let recovered = items.iter().filter(|i| d.sim.node(victim).has_item(i.id)).count();
    (missed, recovered)
}

pub(crate) fn run(quick: bool) {
    let n: u32 = if quick { 200 } else { 400 };
    let mut table = Table::new(
        "E11 — cache repair: delivery ratio with crashes + 5% loss (k=1 tree)",
        &["repair", "after 20 s %", "after 140 s %", "items via repair"],
    );
    for repair in [false, true] {
        let o = run_burst(n, repair, 0xE11);
        table.row(&[
            if repair { "on" } else { "off" }.to_string(),
            format!("{:.1}", o.early_pct),
            format!("{:.1}", o.late_pct),
            o.via_repair.to_string(),
        ]);
    }
    table.caption(
        "paper: the cache provides end-to-end reliability under forwarding failures; \
         shape: with repair the late ratio closes to ~100%, without it losses persist",
    );
    table.print();

    let (missed, recovered) = run_joiner(n, 0xE11);
    let mut joiner = Table::new(
        "E11b — state transfer to a (re)joining node",
        &["items missed while down", "items recovered after rejoin"],
    );
    joiner.row(&[missed.to_string(), recovered.to_string()]);
    joiner.caption("paper: 'a limited state transfer to participants that are joining'");
    joiner.print();
}
