//! E13 — the chaos sweep: gray failures, sustained churn, and the
//! acknowledged-forwarding ablation.
//!
//! Paper basis (§9): the robustness section argues the tree survives
//! forwarder failures through redundant representatives and the cache, but
//! its failure model is crash-stop. Gray failures — a representative that
//! is alive (it gossips, it stays elected) yet drops or delays most of what
//! it forwards — silently blackhole a subtree, which is exactly the case
//! acknowledged hand-offs with retry/backoff and representative failover
//! are built to cover.
//!
//! The sweep runs a first-pass-tree deployment (forwarding redundancy 1,
//! anti-entropy repair off, so the tree itself is what is measured) under
//! churn × gray-fraction chaos plans, with acknowledged forwarding on vs
//! off, and reports the survivor delivery ratio, delivery p99, and the ack
//! machinery's work (retries / failovers / abandons).

use std::collections::HashSet;

use newswire::{check_invariants, NewsWireConfig};
use rand::Rng;
use simnet::{fork, ChurnSpec, FaultPlan, GrayProfile, GraySpec, NodeId, SimTime};

use crate::experiments::support::{dump_telemetry, tech_item};
use crate::Table;

struct Point {
    survivor_pct: f64,
    p99_secs: f64,
    retries: u64,
    failovers: u64,
    abandoned: u64,
}

/// One chaos run: `gray_pct`% of subscribers go severely gray for the whole
/// publish window; with `churn`, a further 20% Poisson-churn through it.
fn run_point(n: u32, churn: bool, gray_pct: u32, ack: bool, seed: u64) -> Point {
    let mut config = NewsWireConfig::tech_news();
    config.redundancy = 1; // isolate the first-pass tree: one rep per hand-off
    config.repair_interval = None; // no anti-entropy to mask tree losses
    if !ack {
        config.ack_timeout = None;
        config.repair_reply_timeout = None;
    }
    let mut d = newswire::DeploymentBuilder::new(n, seed)
        .branching(8)
        .config(config)
        .wan(0.02)
        .publisher(newswire::PublisherSpec::global(newsml::PublisherProfile::slashdot(
            newsml::PublisherId(0),
        )))
        .cats_per_subscriber(2)
        .build();
    d.settle(90);

    // Fault sets are drawn from a stream independent of the ack knob, so
    // both arms of the ablation face the identical chaos plan.
    let total = n + 1; // + the publisher at node 0, which is spared
    let mut pick_rng = fork(seed, 0x13);
    let mut picked: HashSet<u32> = HashSet::new();
    let mut gray_nodes = Vec::new();
    while (gray_nodes.len() as u32) < n * gray_pct / 100 {
        let v = pick_rng.gen_range(1..total);
        if picked.insert(v) {
            gray_nodes.push(NodeId(v));
        }
    }
    let mut churn_nodes = Vec::new();
    if churn {
        while (churn_nodes.len() as u32) < n / 5 {
            let v = pick_rng.gen_range(1..total);
            if picked.insert(v) {
                churn_nodes.push(NodeId(v));
            }
        }
    }
    let mut plan = FaultPlan { salt: seed, ..FaultPlan::default() };
    if !gray_nodes.is_empty() {
        plan.gray.push(GraySpec {
            nodes: gray_nodes,
            start: SimTime::from_secs(90),
            end: None, // the brownout outlasts the measurement window
            profile: GrayProfile::severe(),
        });
    }
    if !churn_nodes.is_empty() {
        plan.churn.push(ChurnSpec {
            nodes: churn_nodes,
            start: SimTime::from_secs(90),
            end: SimTime::from_secs(150),
            mean_up_secs: 30.0,
            mean_down_secs: 10.0,
            recover_at_end: true,
            restart: simnet::RestartMode::Freeze,
        });
    }
    d.sim.apply_fault_plan(&plan);

    let items: Vec<_> = (0..10u64).map(tech_item).collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(95 + 3 * i as u64), item.clone());
    }
    // Bounded horizon: enough for retries and failovers, no repair to lean on.
    d.settle(70);

    let report = check_invariants(&d, &items, &plan.churned_nodes());
    // Ack-machinery counters from the telemetry registry (the per-node
    // NodeStats mirror them exactly — neither resets on recovery); churned
    // nodes clear their delivery logs, so the p99 keeps the walk, which
    // reflects what survivors actually hold.
    let (retries, failovers, abandoned) = if obs::ENABLED {
        let hub = d.sim.telemetry();
        let hub = hub.borrow();
        (
            hub.counter_total(obs::ctr::NW_ACK_RETRIES),
            hub.counter_total(obs::ctr::NW_ACK_FAILOVERS),
            hub.counter_total(obs::ctr::NW_HANDOFFS_ABANDONED),
        )
    } else {
        let stats = d.total_stats();
        (stats.ack_retries, stats.ack_failovers, stats.handoffs_abandoned)
    };
    let mut lat = d.delivery_latency_summary();
    dump_telemetry(
        &format!("e13_churn{}_gray{gray_pct}_ack{}", u8::from(churn), u8::from(ack)),
        &mut d.sim,
    );
    Point {
        survivor_pct: 100.0 * report.survivor_delivery_ratio(),
        p99_secs: if lat.is_empty() { 0.0 } else { lat.quantile(0.99) },
        retries,
        failovers,
        abandoned,
    }
}

pub(crate) fn run(quick: bool) {
    let n: u32 = if quick { 200 } else { 400 };
    let grays: &[u32] = if quick { &[0, 20] } else { &[0, 10, 20, 30] };
    let churns: &[bool] = if quick { &[true] } else { &[false, true] };
    let mut table = Table::new(
        "E13 — chaos sweep: survivor delivery, acked vs unacked hand-offs (k=1 tree, repair off)",
        &["churn", "gray %", "no-ack %", "ack %", "ack p99 s", "retries", "failovers", "abandoned"],
    );
    for &churn in churns {
        for &g in grays {
            let off = run_point(n, churn, g, false, 0xE13);
            let on = run_point(n, churn, g, true, 0xE13);
            table.row(&[
                if churn { "on" } else { "off" }.to_string(),
                g.to_string(),
                format!("{:.1}", off.survivor_pct),
                format!("{:.1}", on.survivor_pct),
                format!("{:.2}", on.p99_secs),
                on.retries.to_string(),
                on.failovers.to_string(),
                on.abandoned.to_string(),
            ]);
        }
    }
    table.caption(format!(
        "{n} subscribers, branching 8, 2% WAN loss; gray = severe profile (+2 s, 40% recv \
         drop, 60% send throttle) for the whole window, churn = 20% of nodes at 30 s up / \
         10 s down; survivor ratio counts continuously-live interested nodes (gray ones \
         included — slow is not dead). Paper §9 covers crash-stop only; acked hand-offs \
         route around the gray representatives its model misses."
    ));
    table.print();
}
