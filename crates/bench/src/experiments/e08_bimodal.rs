//! E8 — delivery-ratio distribution vs Bimodal Multicast.
//!
//! Paper basis (§5): "the protocol thus obtained should have many of the
//! properties of Bimodal Multicast, a peer-to-peer reliable multicast
//! protocol developed by our group several years ago."
//!
//! pbcast's signature is the *shape* of the per-multicast delivery-ratio
//! distribution: after its gossip repair phase, almost every multicast
//! reaches almost everyone (mass piled at 1.0) instead of spreading over
//! intermediate ratios the way a raw lossy tree or raw IP multicast does.
//! We publish a stream of multicasts under per-message loss and histogram
//! the short-horizon delivery ratio for: raw pbcast (repair disabled),
//! pbcast with repair, and Astrolabe SendToZone with k = 1 and k = 2.

use amcast::{
    FilterSpec, McastConfig, McastData, McastMsg, McastNode, PbcastConfig, PbcastMsg, PbcastNode,
};
use astrolabe::{Agent, Config, ZoneId, ZoneLayout};
use bytes::Bytes;
use rand::Rng;
use simnet::{fork, NetworkModel, NodeId, SimDuration, SimTime, Simulation};

use crate::Table;

const MCASTS: u64 = 30;
const HORIZON_S: u64 = 8; // measurement window after each publish

fn histogram(ratios: &[f64]) -> [usize; 4] {
    let mut h = [0usize; 4];
    for &r in ratios {
        let b = if r < 0.5 {
            0
        } else if r < 0.9 {
            1
        } else if r < 0.99 {
            2
        } else {
            3
        };
        h[b] += 1;
    }
    h
}

fn pbcast_ratios(n: u32, loss: f64, repair: bool, seed: u64) -> Vec<f64> {
    let mut net = NetworkModel::ideal(SimDuration::from_millis(15));
    net.drop_prob = loss;
    let membership: Vec<u32> = (0..n).collect();
    let cfg = PbcastConfig { fanout: if repair { 2 } else { 0 }, ..PbcastConfig::default() };
    let mut sim = Simulation::new(net, seed);
    for _ in 0..n {
        sim.add_node(PbcastNode::new(membership.clone(), cfg.clone()));
    }
    let mut ratios = Vec::new();
    for m in 0..MCASTS {
        let at = SimTime::from_secs(1 + m * HORIZON_S);
        sim.schedule_external(
            at,
            NodeId((m % u64::from(n)) as u32),
            PbcastMsg::Publish { id: m, len: 256 },
        );
        sim.run_until(at + SimDuration::from_secs(HORIZON_S));
        let got = sim.iter().filter(|(_, node)| node.has_delivered(m)).count();
        ratios.push(got as f64 / f64::from(n));
    }
    ratios
}

fn astrolabe_ratios(n: u32, loss: f64, k: usize, seed: u64) -> Vec<f64> {
    let layout = ZoneLayout::new(n, 8);
    let mut aconfig = Config::standard();
    aconfig.branching = 8;
    let mut net = NetworkModel::ideal(SimDuration::from_millis(15));
    net.drop_prob = loss;
    let mut contact_rng = fork(seed, 99);
    let mut sim = Simulation::new(net, seed);
    for i in 0..n {
        let contacts: Vec<u32> = (0..3).map(|_| contact_rng.gen_range(0..n)).collect();
        let agent = Agent::new(i, &layout, aconfig.clone(), contacts);
        sim.add_node(McastNode::new(agent, McastConfig { redundancy: k, ..Default::default() }));
    }
    sim.run_until(SimTime::from_secs(60));
    let mut ratios = Vec::new();
    for m in 0..MCASTS {
        let at = SimTime::from_secs(60 + m * HORIZON_S);
        let data = McastData {
            id: m,
            origin: (m % u64::from(n)) as u32,
            priority: 3,
            payload: Bytes::from_static(b"item"),
            filter: FilterSpec::All,
        };
        sim.schedule_external(
            at,
            NodeId((m % u64::from(n)) as u32),
            McastMsg::Publish { data, scope: ZoneId::root() },
        );
        sim.run_until(at + SimDuration::from_secs(HORIZON_S));
        let got = sim.iter().filter(|(_, node)| node.has_delivered(m)).count();
        ratios.push(got as f64 / f64::from(n));
    }
    ratios
}

pub(crate) fn run(quick: bool) {
    let n: u32 = if quick { 128 } else { 256 };
    let losses: &[f64] = if quick { &[0.15] } else { &[0.05, 0.15, 0.30] };
    let mut table = Table::new(
        "E8 — per-multicast delivery-ratio histogram (30 multicasts each)",
        &["loss %", "protocol", "<50%", "50-90%", "90-99%", "≥99%", "median"],
    );
    for &loss in losses {
        let rows: Vec<(&str, Vec<f64>)> = vec![
            ("pbcast raw", pbcast_ratios(n, loss, false, 0xE8)),
            ("pbcast+repair", pbcast_ratios(n, loss, true, 0xE8)),
            ("sendtozone k=1", astrolabe_ratios(n, loss, 1, 0xE8)),
            ("sendtozone k=2", astrolabe_ratios(n, loss, 2, 0xE8)),
        ];
        for (name, mut ratios) in rows {
            let h = histogram(&ratios);
            ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = ratios[ratios.len() / 2];
            table.row(&[
                format!("{:.0}", loss * 100.0),
                name.to_string(),
                h[0].to_string(),
                h[1].to_string(),
                h[2].to_string(),
                h[3].to_string(),
                format!("{median:.3}"),
            ]);
        }
    }
    table.caption(format!(
        "{n} nodes, ratio measured {HORIZON_S}s after each publish; paper: SendToZone 'should \
         have many of the properties of Bimodal Multicast' — with k=2 its mass concentrates \
         in the top bucket like repaired pbcast, while raw pbcast sits at ~(1-loss)"
    ));
    table.print();
}
