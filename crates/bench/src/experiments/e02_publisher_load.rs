//! E2 — publisher load vs. audience size.
//!
//! Paper basis (abstract, §1–2): NewsWire "significantly reduces the
//! compute and network load at the publishers"; the proprietary push
//! solutions' "one-to-many model where the producer is expected to deliver
//! personalized content directly to each of the consumers … clearly has
//! scalability limitations."
//!
//! We publish a fixed batch of items to audiences of growing size and
//! measure the bytes leaving the *publisher* under three architectures:
//! NewsWire (costs one hand-off into the tree per item, plus background
//! gossip), centralized push (one copy per subscriber), and centralized
//! pull at 4 polls/day (every subscriber fetches the page from the origin).

use baselines::{ClientStats, WebMsg, WebNode, WebServer};
use simnet::{NetworkModel, NodeId, SimDuration, SimTime, Simulation};

use crate::experiments::support::{newswire_deployment, settle_secs, tech_item};
use crate::Table;

const ITEMS: u64 = 20;

fn newswire_publisher_bytes(n: u32) -> u64 {
    let mut d = newswire_deployment(n, 32, 0xE2);
    let settle = settle_secs(n);
    d.settle(settle);
    let publisher = d.publisher_node(newsml::PublisherId(0));
    // Baseline window: gossip-only cost over 30 s.
    let before_idle = d.sim.counters(publisher).bytes_sent;
    d.settle(ITEMS + 10);
    let idle = d.sim.counters(publisher).bytes_sent - before_idle;
    // Publish window of the same length.
    let before = d.sim.counters(publisher).bytes_sent;
    let t0 = d.sim.now();
    for seq in 0..ITEMS {
        d.publish(t0 + SimDuration::from_secs(seq), tech_item(seq));
    }
    d.settle(ITEMS + 10);
    let with_items = d.sim.counters(publisher).bytes_sent - before;
    (with_items.saturating_sub(idle)) / ITEMS
}

fn push_publisher_bytes(n: u32) -> u64 {
    let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(20)), 0xE2);
    let mut server = WebServer::new(20, 300, 1_500, SimDuration::from_micros(100), usize::MAX >> 1);
    server.push_subscribers = (1..=n).collect();
    sim.add_node(WebNode::Server(server));
    for _ in 0..n {
        sim.add_node(WebNode::PushSubscriber(ClientStats::default()));
    }
    for s in 0..ITEMS {
        sim.schedule_external(
            SimTime::from_secs(1 + s),
            NodeId(0),
            WebMsg::PublishStory { story: s },
        );
    }
    sim.run_until(SimTime::from_secs(600));
    sim.counters(NodeId(0)).bytes_sent / ITEMS
}

/// Pull at 4 polls/day: the per-item origin cost is the whole audience
/// re-fetching the page, amortized over the stories between polls.
/// (Analytic — no simulation needed; a full page is ~8 KB, 25 stories/day.)
fn pull_publisher_bytes(n: u32) -> u64 {
    let page_bytes: u64 = 2_000 + 20 * 300;
    let polls_per_day: u64 = 4;
    let stories_per_day: u64 = 25;
    u64::from(n) * polls_per_day * page_bytes / stories_per_day
}

pub(crate) fn run(quick: bool) {
    let sizes: &[u32] = if quick { &[100, 400] } else { &[100, 400, 1_600, 6_400] };
    let mut table = Table::new(
        "E2 — bytes leaving the publisher per news item",
        &["subscribers", "newswire B/item", "push B/item", "pull B/item", "push/newswire"],
    );
    for &n in sizes {
        let nw = newswire_publisher_bytes(n);
        let push = push_publisher_bytes(n);
        let pull = pull_publisher_bytes(n);
        table.row(&[
            n.to_string(),
            nw.to_string(),
            push.to_string(),
            pull.to_string(),
            format!("{:.0}x", push as f64 / nw.max(1) as f64),
        ]);
    }
    table.caption(
        "paper: collaborative delivery removes the O(N) publisher cost; shape: \
         newswire's origin cost is bounded by k x branching (one hand-off per \
         interested root child, \u{2264}64) and flattens once the root table fills, \
         while push/pull grow linearly with the audience forever",
    );
    table.print();
}
