//! E17 — adversarial state corruption under production-shaped load:
//! corruption type × workload × defenses, with the self-stabilization
//! verdict.
//!
//! Paper basis (§8–§9): the security section worries about "malicious or
//! corrupted servers" but the robustness story is measured only against
//! crash faults — nothing quantifies what happens when a node's *state*
//! goes bad while the process stays up: scrambled zone-table replicas,
//! article logs claiming epochs that never happened, torn disk snapshots,
//! or a representative that lies in its aggregates. This sweep injects
//! exactly those faults mid-run, under the two workloads a news system
//! actually faces — a breaking-news flash crowd and sustained
//! subscription churn — and asks the oracle's `self_stabilized` question:
//! are all invariants restored within a bounded number of gossip rounds
//! after the corruption window closes?
//!
//! The defenses (ingest validation, periodic self-audit, the consensus
//! epoch fence) are on by default; each cell also runs the ablation with
//! them off. The headline asymmetry: every defenses-on cell stabilizes,
//! while the defenses-off log-epoch cells *never* do — a fabricated
//! newer epoch spreads by reconciliation contagion (each absorber adopts
//! it and wipes its log) and honest servers refuse to serve requesters
//! claiming an epoch from the future, so the damage is self-sustaining.

use std::collections::BTreeSet;

use baselines::{FlashCrowdSpec, SubscriptionChurnSpec};
use newswire::{self_stabilized, NewsWireConfig, Subscription};
use simnet::{
    ChurnSpec, CorruptionOp, CorruptionSpec, FaultPlan, LiarBehavior, LiarMode, LiarSpec, NodeId,
    RestartMode, SimDuration, SimTime,
};

use crate::experiments::support::{dump_telemetry, tech_item};
use crate::Table;

/// The corruption axis. `Liar` is a behavioral fault (mis-aggregating
/// representative) rather than a state strike, but it answers the same
/// question: does the damage outlive its window?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Adversary {
    ZoneRows,
    LogEpoch,
    DiskBytes,
    Liar,
}

impl Adversary {
    const ALL: [Adversary; 4] =
        [Adversary::ZoneRows, Adversary::LogEpoch, Adversary::DiskBytes, Adversary::Liar];

    fn label(self) -> &'static str {
        match self {
            Adversary::ZoneRows => "zone-rows",
            Adversary::LogEpoch => "log-epoch",
            Adversary::DiskBytes => "disk-bytes",
            Adversary::Liar => "liar",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Flash,
    Churn,
}

impl Workload {
    fn label(self) -> &'static str {
        match self {
            Workload::Flash => "flash",
            Workload::Churn => "churn",
        }
    }
}

struct Point {
    struck: u64,
    intercepts: u64,
    rejected: u64,
    repairs: u64,
    stabilized: bool,
    rounds_used: u32,
    delivery_pct: f64,
}

/// The corruption window every arm shares.
const WINDOW: (u64, u64) = (100, 160);
/// Gossip rounds the oracle allows after the window (2 s each = 3 min).
const ROUND_BUDGET: u32 = 90;

/// One cell: a deployment under `workload`, hit by `adversary` through the
/// shared window, judged by the self-stabilization oracle afterwards.
fn run_point(n: u32, adversary: Adversary, workload: Workload, defenses: bool, seed: u64) -> Point {
    let mut config = NewsWireConfig::tech_news();
    config.defenses = defenses;
    // The disk arm needs durable state (or there is nothing to corrupt)
    // and cold restarts (or nobody ever reads the torn bytes back).
    config.durable_state = adversary == Adversary::DiskBytes;
    let mut d = newswire::DeploymentBuilder::new(n, seed)
        .branching(8)
        .config(config)
        .publisher(newswire::PublisherSpec::global(newsml::PublisherProfile::slashdot(
            newsml::PublisherId(0),
        )))
        .cats_per_subscriber(2)
        .build();
    d.settle(60);

    // Victims: a fixed slice of mid-tree subscribers (the publisher at
    // node 0 is spared so ground truth stays intact).
    let victims: Vec<NodeId> = (0..3).map(|k| NodeId(2 + k * (n / 4))).collect();
    let (start, end) = (SimTime::from_secs(WINDOW.0), SimTime::from_secs(WINDOW.1));
    let mut plan = FaultPlan { salt: seed ^ 0xE17, ..FaultPlan::default() };
    match adversary {
        Adversary::ZoneRows => plan.corruption.push(CorruptionSpec {
            nodes: victims.clone(),
            start,
            end,
            mean_interval_secs: 6.0,
            op: CorruptionOp::ZoneRows { rows: 3 },
        }),
        Adversary::LogEpoch => plan.corruption.push(CorruptionSpec {
            nodes: victims.clone(),
            start,
            end,
            mean_interval_secs: 10.0,
            op: CorruptionOp::LogEpoch { entries: 4 },
        }),
        Adversary::DiskBytes => {
            plan.corruption.push(CorruptionSpec {
                nodes: victims.clone(),
                start,
                end,
                mean_interval_secs: 6.0,
                op: CorruptionOp::DiskBytes { flips: 16 },
            });
            // Cold-restart the victims inside the window so the torn
            // snapshots are actually read back.
            plan.churn.push(ChurnSpec {
                nodes: victims.clone(),
                start,
                end,
                mean_up_secs: 20.0,
                mean_down_secs: 8.0,
                recover_at_end: true,
                restart: RestartMode::ColdDurable,
            });
        }
        Adversary::Liar => plan.liars.push(LiarSpec {
            nodes: victims.clone(),
            start,
            end: Some(end),
            behavior: LiarBehavior { mode: LiarMode::MisSummarize, prob: 1.0 },
        }),
    }
    d.sim.apply_fault_plan(&plan);

    // The workload. Flash: a breaking story publishes 24 items whose
    // spacing compresses 10 s → 2 s into a crest inside the corruption
    // window. Churn: the same volume on a steady 7 s drumbeat while
    // subscribers round-robin out and back under the summaries' feet.
    let mut exempt: BTreeSet<NodeId> = plan.churned_nodes();
    let items: Vec<_> = (0..24u64).map(tech_item).collect();
    let tail_until = match workload {
        Workload::Flash => {
            let burst = FlashCrowdSpec {
                onset: SimTime::from_secs(65),
                items: items.len() as u32,
                calm_spacing: SimDuration::from_secs(10),
                peak_spacing: SimDuration::from_secs(2),
            };
            for (at, item) in burst.schedule().into_iter().zip(items.iter()) {
                d.publish(at, item.clone());
            }
            burst.last_publish() + SimDuration::from_secs(20)
        }
        Workload::Churn => {
            for (i, item) in items.iter().enumerate() {
                d.publish(SimTime::from_secs(65 + 7 * i as u64), item.clone());
            }
            let churners = n.min(12);
            let originals: Vec<Subscription> =
                (0..churners).map(|s| d.sim.node(NodeId(1 + s)).subscription.clone()).collect();
            let spec = SubscriptionChurnSpec::sustained(
                SimTime::from_secs(70),
                SimTime::from_secs(160),
                churners,
            );
            for flip in spec.schedule() {
                let node = NodeId(1 + flip.subscriber);
                d.sim.run_until(flip.at);
                let sub = if flip.subscribe {
                    originals[flip.subscriber as usize].clone()
                } else {
                    Subscription::new()
                };
                d.sim.node_mut(node).set_subscription(sub);
                exempt.insert(node);
            }
            SimTime::from_secs(240)
        }
    };

    // Ride out the workload and a short tail past the window, then put
    // the question.
    let deadline = tail_until.max(end + SimDuration::from_secs(20)).max(d.sim.now());
    d.sim.run_until(deadline);
    let verdict = self_stabilized(&mut d, &items, &exempt, ROUND_BUDGET);

    let faults = d.sim.fault_counters();
    let (rejected, repairs) = if obs::ENABLED {
        let hub = d.sim.telemetry();
        let hub = hub.borrow();
        (
            hub.counter_total(obs::ctr::CORRUPT_ROWS_REJECTED),
            hub.counter_total(obs::ctr::SELF_AUDIT_REPAIRS),
        )
    } else {
        (0, 0)
    };
    dump_telemetry(
        &format!(
            "e17_{}_{}_{}",
            adversary.label(),
            workload.label(),
            if defenses { "def" } else { "abl" }
        ),
        &mut d.sim,
    );
    Point {
        struck: faults.state_corruptions,
        intercepts: faults.liar_intercepts,
        rejected,
        repairs,
        stabilized: verdict.stabilized,
        rounds_used: verdict.rounds_used,
        delivery_pct: 100.0 * verdict.report.survivor_delivery_ratio(),
    }
}

pub(crate) fn run(quick: bool) {
    let n: u32 = if quick { 48 } else { 120 };
    let mut table = Table::new(
        "E17 — adversarial corruption: self-stabilization by fault × workload × defenses",
        &[
            "adversary",
            "workload",
            "defenses",
            "struck",
            "intercepts",
            "rejected",
            "repairs",
            "stabilized",
            "rounds",
            "delivery %",
        ],
    );
    for adversary in Adversary::ALL {
        for workload in [Workload::Flash, Workload::Churn] {
            for defenses in [true, false] {
                let p = run_point(n, adversary, workload, defenses, 0xE17);
                table.row(&[
                    adversary.label().to_string(),
                    workload.label().to_string(),
                    if defenses { "on" } else { "off" }.to_string(),
                    p.struck.to_string(),
                    p.intercepts.to_string(),
                    p.rejected.to_string(),
                    p.repairs.to_string(),
                    if p.stabilized { "yes" } else { "NO" }.to_string(),
                    if p.stabilized {
                        p.rounds_used.to_string()
                    } else {
                        format!(">{ROUND_BUDGET}")
                    },
                    format!("{:.1}", p.delivery_pct),
                ]);
            }
        }
    }
    table.caption(format!(
        "{n} subscribers, branching 8; three victim nodes corrupted through a {}–{} s window \
         (zone-row scrambles + zeroed advertisements, fabricated log epochs with phantom \
         coverage, torn disk snapshots read back by in-window cold restarts, or a \
         mis-aggregating liar at prob 1.0). Workloads: a 24-item flash crowd cresting inside \
         the window, or the same volume under round-robin subscription churn. `stabilized` is \
         the oracle's self_stabilized verdict within {ROUND_BUDGET} gossip rounds after the \
         window closes; `rounds` is how many it took. Defenses on (ingest validation + \
         self-audit + epoch fence) must stabilize every cell; the defenses-off log-epoch \
         cells never do — epoch contagion is self-sustaining, which is the ablation's point.",
        WINDOW.0, WINDOW.1
    ));
    table.print();
}
