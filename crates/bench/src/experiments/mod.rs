//! The experiment suite (E1–E18). Each module reproduces one quantitative
//! claim of the paper; DESIGN.md §3 is the index, EXPERIMENTS.md records
//! paper-vs-measured.

pub mod a01_models;
pub mod e01_latency;
pub mod e02_publisher_load;
pub mod e03_redundancy;
pub mod e04_overload;
pub mod e05_bloom;
pub mod e06_convergence;
pub mod e07_robustness;
pub mod e08_bimodal;
pub mod e09_scoped;
pub mod e10_queues;
pub mod e11_repair;
pub mod e12_gossip_cost;
pub mod e13_chaos;
pub mod e14_partition;
pub mod e16_recovery;
pub mod e17_adversary;
pub mod e18_byzantine;
pub mod e20_wire;
pub mod e21_trust_rotation;

pub(crate) mod support {
    //! Shared deployment builders for the experiments.

    use newsml::{Category, PublisherId, PublisherProfile};
    use newswire::{Deployment, DeploymentBuilder, NewsWireConfig, PublisherSpec};

    /// A standard single-publisher NewsWire deployment for scale sweeps.
    pub fn newswire_deployment(n: u32, branching: u16, seed: u64) -> Deployment {
        let mut profile = PublisherProfile::slashdot(PublisherId(0));
        profile.categories =
            vec![Category::Technology, Category::Science, Category::World, Category::Business];
        DeploymentBuilder::new(n, seed)
            .branching(branching)
            .config(NewsWireConfig::tech_news())
            .publisher(PublisherSpec::global(profile))
            .cats_per_subscriber(2)
            .build()
    }

    /// A test item from publisher 0 hitting the Technology interest set.
    pub fn tech_item(seq: u64) -> newsml::NewsItem {
        newsml::NewsItem::builder(PublisherId(0), seq)
            .headline(format!("story {seq}"))
            .category(Category::Technology)
            .body_len(1_200)
            .build()
    }

    /// Convergence time heuristic: deeper trees need a little longer.
    pub fn settle_secs(n: u32) -> u64 {
        match n {
            0..=2_000 => 60,
            2_001..=20_000 => 90,
            _ => 120,
        }
    }

    /// Drains the simulation's telemetry into
    /// `$NEWSWIRE_TELEMETRY_DIR/<label>.json` when that variable is set
    /// (the nightly CI uploads the files as artifacts). A no-op otherwise.
    /// Draining resets the registry, so call it after the experiment has
    /// read every counter it needs.
    pub fn dump_telemetry<N: simnet::Node>(label: &str, sim: &mut simnet::Simulation<N>) {
        let Ok(dir) = std::env::var("NEWSWIRE_TELEMETRY_DIR") else { return };
        if dir.is_empty() {
            return;
        }
        let json = sim.drain_telemetry().to_json();
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(std::path::Path::new(&dir).join(format!("{label}.json")), json);
    }
}
