//! E7 — redundant representatives vs forwarder failures.
//!
//! Paper basis (§9): "we use multiple representatives to forward a new
//! item, to increase the robustness of the delivery", with duplicates
//! removed via the publisher-assigned unique item id.
//!
//! We crash a growing fraction of nodes at the instant of publishing (the
//! worst case: the tree's tables still name the dead nodes as
//! representatives) and measure the delivery ratio among survivors for
//! k = 1, 2, 3 redundant representatives, plus the duplicate-suppression
//! work k costs. Cache repair is *not* running here — this isolates the
//! first-pass tree robustness.

use std::collections::HashSet;

use amcast::{FilterSpec, McastConfig, McastData, McastMsg, McastNode};
use astrolabe::{Agent, Config, ZoneId, ZoneLayout};
use bytes::Bytes;
use rand::Rng;
use simnet::{fork, NetworkModel, NodeId, SimTime, Simulation};

use crate::Table;

fn build(n: u32, k: usize, seed: u64) -> Simulation<McastNode> {
    let layout = ZoneLayout::new(n, 8);
    // Elect as many representatives per zone as the forwarding redundancy
    // uses, otherwise k > reps_per_zone silently degrades to the smaller.
    let mut aconfig = Config::with_reps(k);
    aconfig.branching = 8;
    let mut contact_rng = fork(seed, 99);
    let mut sim = Simulation::new(NetworkModel::default(), seed);
    for i in 0..n {
        let contacts: Vec<u32> = (0..3).map(|_| contact_rng.gen_range(0..n)).collect();
        let agent = Agent::new(i, &layout, aconfig.clone(), contacts);
        sim.add_node(McastNode::new(agent, McastConfig { redundancy: k, ..Default::default() }));
    }
    sim
}

/// Returns (survivor delivery ratio %, duplicates per delivery).
fn run_point(n: u32, fail_pct: u32, k: usize, seed: u64) -> (f64, f64) {
    let mut sim = build(n, k, seed);
    sim.run_until(SimTime::from_secs(60));
    let mut victim_rng = fork(seed, 7);
    // Vec keeps the crash schedule in draw order (deterministic); the set
    // makes dedup and the survivor scan O(1) per probe instead of O(n).
    let mut victims: Vec<u32> = Vec::new();
    let mut victim_set: HashSet<u32> = HashSet::new();
    while (victims.len() as u32) < n * fail_pct / 100 {
        let v = victim_rng.gen_range(1..n); // node 0 stays (origin)
        if victim_set.insert(v) {
            victims.push(v);
        }
    }
    for &v in &victims {
        sim.schedule_crash(SimTime::from_secs(60), NodeId(v));
    }
    let items = 5u64;
    for m in 0..items {
        let data = McastData {
            id: 1_000 + m,
            origin: 0,
            priority: 3,
            payload: Bytes::from_static(b"item"),
            filter: FilterSpec::All,
        };
        sim.schedule_external(
            SimTime::from_secs(60),
            NodeId(0),
            McastMsg::Publish { data, scope: ZoneId::root() },
        );
    }
    sim.run_until(SimTime::from_secs(75));
    let live: Vec<u32> = (0..n).filter(|i| !victim_set.contains(i)).collect();
    let mut delivered = 0u64;
    let mut dups = 0u64;
    for &i in &live {
        let node = sim.node(NodeId(i));
        delivered += (1_000..1_000 + items).filter(|&m| node.has_delivered(m)).count() as u64;
        dups += node.stats.duplicates_dropped;
    }
    let expected = live.len() as u64 * items;
    (100.0 * delivered as f64 / expected as f64, dups as f64 / delivered.max(1) as f64)
}

pub(crate) fn run(quick: bool) {
    let n: u32 = if quick { 256 } else { 1_024 };
    let fails: &[u32] = if quick { &[0, 20] } else { &[0, 10, 20, 30, 40] };
    let mut table = Table::new(
        "E7 — survivor delivery ratio when forwarders crash at publish time",
        &["failed %", "k=1 %", "k=2 %", "k=3 %", "dup/delivery k=3"],
    );
    for &f in fails {
        let (r1, _) = run_point(n, f, 1, 0xE7);
        let (r2, _) = run_point(n, f, 2, 0xE7);
        let (r3, d3) = run_point(n, f, 3, 0xE7);
        table.row(&[
            f.to_string(),
            format!("{r1:.1}"),
            format!("{r2:.1}"),
            format!("{r3:.1}"),
            format!("{d3:.2}"),
        ]);
    }
    table.caption(format!(
        "{n} nodes, branching 8, 5 items published the instant the nodes die, no cache repair; \
         paper: redundancy increases robustness, duplicates removed by item id"
    ));
    table.print();
}
