//! E14 — partition healing: time-to-reconvergence and repair cost across
//! partition duration × shape, with the log anti-entropy ablation.
//!
//! Paper basis (§9): the robustness section promises the cache and repair
//! make delivery eventual, but its repair protocol compares high-water
//! marks — a *margin* heuristic that only re-offers items near the top of
//! each publisher's sequence. A network partition creates a different kind
//! of damage: a deep, bounded hole in the middle of the sequence space,
//! invisible to high-water comparison the moment post-heal publishing
//! pushes the marks past it. The epoch/sequence article logs close exactly
//! that gap: fixed-size digests piggyback on rows Astrolabe already
//! gossips, holes are detected by range subtraction, and missing spans are
//! pulled from the freshest reachable peer (cross-zone when the whole leaf
//! zone shares the hole).
//!
//! Both ablation arms run the identical, deterministic fault schedule; the
//! only difference is the `anti_entropy` knob. Reported per point: the
//! fraction of partition-window items recovered by interested survivors on
//! the cut side, the p99 recovery latency after the heal, and the
//! reconciliation traffic that paid for it.

use newswire::{check_invariants, Deployment, NewsWireConfig};
use simnet::{FaultPlan, Partition, PartitionSpec, SimTime};

use crate::experiments::support::{dump_telemetry, tech_item};
use crate::Table;

/// Partition shape: where the cut falls relative to the zone tree.
#[derive(Clone, Copy)]
enum Shape {
    /// Half the fleet on each side, split at a zone boundary; the
    /// publisher keeps the lower half.
    Half,
    /// One top-level region isolated from everyone else (the publisher
    /// stays with the majority).
    Island,
}

impl Shape {
    fn label(self) -> &'static str {
        match self {
            Shape::Half => "half",
            Shape::Island => "island",
        }
    }

    /// The group assignment over `total` nodes; group 1 is the cut side
    /// (away from the publisher at node 0).
    fn groups(self, d: &Deployment, total: u32) -> Vec<u32> {
        match self {
            Shape::Half => (0..total).map(|i| u32::from(i >= total / 2)).collect(),
            Shape::Island => {
                let region = |i: u32| d.layout.leaf_zone(i).path().first().copied().unwrap_or(0);
                let last = (0..total).map(region).max().unwrap_or(0);
                (0..total).map(|i| u32::from(region(i) == last)).collect()
            }
        }
    }
}

struct Point {
    /// Partition-window recovery on the cut side, percent.
    recovered_pct: f64,
    /// p99 of (delivery time − heal time) over recovered window items.
    reconv_p99_secs: f64,
    /// Reconcile payload shipped, KiB.
    reconcile_kib: f64,
    /// Reconcile requests sent.
    requests: u64,
    /// Whole-run oracle verdicts.
    holds: bool,
    converged: bool,
}

#[allow(clippy::cast_precision_loss)]
fn run_point(n: u32, shape: Shape, dur_secs: u64, anti_entropy: bool, seed: u64) -> Point {
    let config = NewsWireConfig { anti_entropy, ..NewsWireConfig::tech_news() };
    let mut d = newswire::DeploymentBuilder::new(n, seed)
        .branching(8)
        .config(config)
        .publisher(newswire::PublisherSpec::global(newsml::PublisherProfile::slashdot(
            newsml::PublisherId(0),
        )))
        .cats_per_subscriber(2)
        .build();
    d.settle(90);

    let total = n + 1; // + the publisher at node 0
    let groups = shape.groups(&d, total);
    let start = SimTime::from_secs(100);
    let heal = SimTime::from_secs(100 + dur_secs);
    // The schedule is fully deterministic — both ablation arms face the
    // identical partition window by construction.
    d.sim.apply_fault_plan(&FaultPlan {
        partitions: vec![PartitionSpec { partition: Partition::new(groups.clone()), start, heal }],
        ..FaultPlan::default()
    });

    // 5 items before the cut, one every 2 s during it, 20 after the heal —
    // the post-heal tail pushes every high-water mark well past the hole,
    // so the margin-backed repair path cannot see it.
    let window = dur_secs / 2;
    let items: Vec<_> = (0..5 + window + 20).map(tech_item).collect();
    for (i, item) in items.iter().enumerate().take(5) {
        d.publish(SimTime::from_secs(92 + i as u64), item.clone());
    }
    for k in 0..window {
        d.publish(SimTime::from_secs(101 + 2 * k), items[5 + k as usize].clone());
    }
    for k in 0..20u64 {
        d.publish(
            heal + simnet::SimDuration::from_secs(2 + 2 * k),
            items[(5 + window + k) as usize].clone(),
        );
    }
    d.settle(100 + dur_secs + 150 - 90); // ends 110 s after the last publish

    // Cut-side recovery of the partition-window items.
    let mut expected = 0u64;
    let mut recovered = 0u64;
    let mut reconv = simnet::Summary::new();
    for (id, node) in d.sim.iter() {
        if groups[id.0 as usize] != 1 {
            continue;
        }
        for item in &items[5..(5 + window) as usize] {
            if !node.subscription.matches(item) {
                continue;
            }
            expected += 1;
            if let Some(rec) = node.deliveries.iter().find(|r| r.item == item.id) {
                recovered += 1;
                reconv.record(rec.delivered.saturating_since(heal).as_secs_f64());
            }
        }
    }
    let report = check_invariants(&d, &items, &std::collections::BTreeSet::new());
    let stats = d.total_stats();
    dump_telemetry(
        &format!("e14_{}_{dur_secs}s_ae{}", shape.label(), u8::from(anti_entropy)),
        &mut d.sim,
    );
    Point {
        recovered_pct: if expected == 0 {
            100.0
        } else {
            100.0 * recovered as f64 / expected as f64
        },
        reconv_p99_secs: if reconv.is_empty() { 0.0 } else { reconv.quantile(0.99) },
        reconcile_kib: stats.reconcile_bytes_sent as f64 / 1024.0,
        requests: stats.reconcile_requests,
        holds: report.holds(),
        converged: report.converged(),
    }
}

pub(crate) fn run(quick: bool) {
    let n: u32 = if quick { 119 } else { 199 };
    let durations: &[u64] = if quick { &[60] } else { &[30, 60, 120] };
    let shapes: &[Shape] = if quick { &[Shape::Half] } else { &[Shape::Half, Shape::Island] };
    let mut table = Table::new(
        "E14 — partition healing: cut-side recovery, anti-entropy on vs off",
        &["shape", "cut s", "off %", "on %", "reconv p99 s", "reconcile KiB", "requests", "oracle"],
    );
    for &shape in shapes {
        for &dur in durations {
            let off = run_point(n, shape, dur, false, 0xE14);
            let on = run_point(n, shape, dur, true, 0xE14);
            assert!(
                on.recovered_pct > off.recovered_pct,
                "anti-entropy must recover strictly more ({} vs {})",
                on.recovered_pct,
                off.recovered_pct
            );
            table.row(&[
                shape.label().to_string(),
                dur.to_string(),
                format!("{:.1}", off.recovered_pct),
                format!("{:.1}", on.recovered_pct),
                format!("{:.1}", on.reconv_p99_secs),
                format!("{:.1}", on.reconcile_kib),
                on.requests.to_string(),
                format!(
                    "{}{}",
                    if on.holds && on.converged { "on:ok" } else { "on:FAIL" },
                    if off.converged { " off:??" } else { " off:detected" },
                ),
            ]);
        }
    }
    table.caption(format!(
        "{n} subscribers + 1 publisher, branching 8; partition at t=100 for the stated \
         window while one item publishes every 2 s, then 20 more items after the heal so \
         every high-water mark jumps past the hole (margin repair is blind to it). \
         Recovery counts interested survivors on the cut side over partition-window items; \
         reconv p99 is delivery lag after the heal. Identical fault schedule both arms; \
         'off:detected' = the oracle flagged the ablation arm's unconverged logs."
    ));
    table.print();
}
