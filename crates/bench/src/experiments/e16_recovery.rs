//! E16 — durable-state crash recovery: restart mode × churn intensity,
//! with the anti-entropy ablation.
//!
//! Paper basis (§9): the robustness section claims the collaborative
//! infrastructure rides out end-system failures because "no process plays
//! a special role" and the cache-plus-repair machinery makes delivery
//! eventual — but its failure model is crash-*stop*: a failed node either
//! stays gone or comes back with its memory intact. Real crash-*recovery*
//! is harsher: a restarting process loses its volatile state and returns
//! with whatever survived on stable storage, possibly nothing. This sweep
//! measures that regime. Every arm runs the identical seeded churn plan;
//! the only things that vary are how churned nodes come back — `Freeze`
//! (legacy ambient memory), `ColdDurable` (volatile state wiped, the
//! simulated disk survives and recovery re-derives subscription, cache,
//! article logs and delivery records from it), `ColdAmnesia` (the disk is
//! lost too: re-subscribe from configuration, burn a fresh incarnation,
//! backfill everything from peers) — and whether log anti-entropy (PR-2's
//! reconciliation) is there to close the deep holes.
//!
//! Reported per arm: eventual delivery completeness over the churned
//! interested nodes (the paper's implicit 100% claim), recoveries run to
//! completion with their mean duration, backfill volume, incarnation
//! bumps observed by peers, and unsynced disk writes destroyed by crashes.

use std::collections::HashSet;

use newswire::{check_invariants, NewsWireConfig};
use rand::Rng;
use simnet::{fork, ChurnSpec, FaultPlan, NodeId, RestartMode, SimTime};

use crate::experiments::support::{dump_telemetry, tech_item};
use crate::Table;

struct Point {
    completeness_pct: f64,
    oracle_ok: bool,
    recoveries: u64,
    mean_recovery_secs: f64,
    backfill: u64,
    incar_bumps: u64,
    writes_lost: u64,
}

fn mode_label(mode: RestartMode) -> &'static str {
    match mode {
        RestartMode::Freeze => "freeze",
        RestartMode::ColdDurable => "cold-durable",
        RestartMode::ColdAmnesia => "cold-amnesia",
    }
}

/// One recovery run: 20% of subscribers churn through a three-minute
/// window, all restarting in `mode`; stories publish throughout.
fn run_point(n: u32, mode: RestartMode, heavy: bool, ae: bool, seed: u64) -> Point {
    let mut config = NewsWireConfig::tech_news();
    config.durable_state = true;
    config.anti_entropy = ae;
    let mut d = newswire::DeploymentBuilder::new(n, seed)
        .branching(8)
        .config(config)
        .wan(0.02)
        .publisher(newswire::PublisherSpec::global(newsml::PublisherProfile::slashdot(
            newsml::PublisherId(0),
        )))
        .cats_per_subscriber(2)
        .build();
    d.settle(90);

    // The churned set is drawn from a stream independent of every ablation
    // knob, so all arms face the identical fault schedule (one seeded
    // harness, three ways of coming back). Node 0, the publisher, is spared.
    let total = n + 1;
    let mut pick_rng = fork(seed, 0x16);
    let mut picked: HashSet<u32> = HashSet::new();
    let mut churned = Vec::new();
    while (churned.len() as u32) < n / 5 {
        let v = pick_rng.gen_range(1..total);
        if picked.insert(v) {
            churned.push(NodeId(v));
        }
    }
    let (up, down) = if heavy { (25.0, 20.0) } else { (60.0, 15.0) };
    let plan = FaultPlan {
        salt: seed,
        churn: vec![ChurnSpec {
            nodes: churned,
            start: SimTime::from_secs(90),
            end: SimTime::from_secs(270),
            mean_up_secs: up,
            mean_down_secs: down,
            recover_at_end: true,
            restart: mode,
        }],
        ..FaultPlan::default()
    };
    d.sim.apply_fault_plan(&plan);

    // 24 stories, one every 7 s, spanning the whole churn window — enough
    // of a backlog that margin-based repair alone cannot reconstruct an
    // amnesiac node's history (that is the ablation's point).
    let items: Vec<_> = (0..24u64).map(tech_item).collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(95 + 7 * i as u64), item.clone());
    }
    // Ride out the churn plus a recovery/backfill tail.
    d.settle(300);

    let report = check_invariants(&d, &items, &plan.churned_nodes());
    let stats = d.total_stats();
    // Eventual completeness over the *churned* interested nodes — the arm's
    // whole question is what a restarted node ends up holding.
    let exempt = plan.churned_nodes();
    let (mut want, mut have) = (0u64, 0u64);
    for item in &items {
        for node in d.interested_nodes(item) {
            if exempt.contains(&node) {
                want += 1;
                have += u64::from(d.sim.node(node).has_item(item.id));
            }
        }
    }
    let (incar_bumps, writes_lost, recovery_us) = if obs::ENABLED {
        let hub = d.sim.telemetry();
        let hub = hub.borrow();
        (
            hub.counter_total(obs::ctr::INCARNATION_BUMPS),
            hub.counter_total(obs::ctr::DISK_WRITES_LOST),
            hub.merged_series(obs::series::RECOVERY_DURATION_US),
        )
    } else {
        (0, 0, Vec::new())
    };
    let mean_recovery_secs = if recovery_us.is_empty() {
        0.0
    } else {
        recovery_us.iter().sum::<u64>() as f64 / recovery_us.len() as f64 / 1e6
    };
    dump_telemetry(
        &format!(
            "e16_{}_{}_ae{}",
            mode_label(mode),
            if heavy { "heavy" } else { "light" },
            u8::from(ae)
        ),
        &mut d.sim,
    );
    Point {
        completeness_pct: if want == 0 { 100.0 } else { 100.0 * have as f64 / want as f64 },
        oracle_ok: report.holds(),
        recoveries: stats.recoveries_completed,
        mean_recovery_secs,
        backfill: stats.recovery_backfill_items,
        incar_bumps,
        writes_lost,
    }
}

pub(crate) fn run(quick: bool) {
    let n: u32 = if quick { 120 } else { 300 };
    let intensities: &[bool] = if quick { &[true] } else { &[false, true] };
    let mut table = Table::new(
        "E16 — crash recovery: eventual completeness by restart mode × churn, AE ablation",
        &[
            "mode",
            "churn",
            "AE",
            "complete %",
            "oracle",
            "recoveries",
            "mean rec s",
            "backfill",
            "incar",
            "lost writes",
        ],
    );
    for &heavy in intensities {
        let churn_label = if heavy { "heavy" } else { "light" };
        for mode in [RestartMode::Freeze, RestartMode::ColdDurable, RestartMode::ColdAmnesia] {
            let mut arms = vec![true];
            // The ablation only means something where recovery leans on
            // reconciliation: the cold modes under the heavier churn.
            if heavy && mode != RestartMode::Freeze {
                arms.push(false);
            }
            for ae in arms {
                let p = run_point(n, mode, heavy, ae, 0xE16);
                table.row(&[
                    mode_label(mode).to_string(),
                    churn_label.to_string(),
                    if ae { "on" } else { "off" }.to_string(),
                    format!("{:.1}", p.completeness_pct),
                    if p.oracle_ok { "ok" } else { "FAIL" }.to_string(),
                    p.recoveries.to_string(),
                    format!("{:.1}", p.mean_recovery_secs),
                    p.backfill.to_string(),
                    p.incar_bumps.to_string(),
                    p.writes_lost.to_string(),
                ]);
            }
        }
    }
    table.caption(format!(
        "{n} subscribers, branching 8, 2% WAN loss, durable state on; 20% of nodes churn \
         90 s–270 s (light 60 s up / 15 s down, heavy 25 s up / 20 s down), 24 stories \
         published every 7 s across the window, 120 s recovery tail. Completeness is over \
         churned interested nodes only. The paper's §9 crash-stop model implies 100% for \
         every mode; the AE-off ablation shows margin-based repair alone cannot refill a \
         cold log — reconciliation (sys$ae digests) is what makes cold recovery whole."
    ));
    table.print();
}
