//! A1 (ablation) — subscription-summary models.
//!
//! DESIGN.md calls for ablations on the design choices; the central one is
//! the subscription summary. Paper §7 on the category-mask prototype: "This
//! prototype has limited scalability in the selection of publishers and is
//! not flexible in terms of the expressiveness of subscriptions" — the
//! Bloom array (§6) replaced it precisely to widen the subscription space.
//!
//! The workload makes that concrete. Every subscriber wants exactly *one
//! narrow topic* inside the Technology category. Under the Bloom model the
//! subscription is the topic itself; under the mask model the best a user
//! can express is the whole category (over-subscription); the flood model
//! does not filter at all. We publish topic-tagged items and count network
//! work, wanted deliveries, and unwanted item arrivals at the leaves.

use newsml::{Category, PublisherId, PublisherProfile, Subject};
use newswire::{DeploymentBuilder, NewsWireConfig, PublisherSpec, Subscription, SubscriptionModel};
use simnet::{fork, NodeId, SimDuration};

use crate::Table;

const TOPICS: u16 = 40;
const ITEMS: u64 = 10;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Model {
    Bloom,
    Masks,
    Flood,
}

struct Outcome {
    publish_msgs: u64,
    wanted: u64,
    unwanted: u64,
}

fn topic_subject(topic: u16) -> Subject {
    Subject::new(vec![u16::from(Category::Technology.bit()) + 1, topic + 1])
}

fn run_model(n: u32, model: Model, seed: u64) -> Outcome {
    let mut config = NewsWireConfig::tech_news();
    // Log reconciliation backfills whole publisher logs regardless of topic
    // interest, which would charge unwanted arrivals to every model alike —
    // keep it out so the summaries' expressiveness is the only variable.
    config.anti_entropy = false;
    if model == Model::Masks {
        config.model = SubscriptionModel::CategoryMask;
    }
    let mut d = DeploymentBuilder::new(n, seed)
        .branching(8)
        .config(config)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .build();

    // Each subscriber wants exactly one narrow topic. What the node's
    // summary advertises depends on the model's expressiveness.
    let mut rng = fork(seed, 0xA1);
    let zipf = newsml::Zipf::new(TOPICS as usize, 1.0);
    let mut desired: Vec<u16> = vec![0; n as usize + 1];
    for i in 1..=n {
        let topic = zipf.sample(&mut rng) as u16;
        desired[i as usize] = topic;
        let mut sub = Subscription::new();
        match model {
            Model::Bloom => {
                sub.subscribe_subject(topic_subject(topic));
            }
            Model::Masks => {
                // The §7 prototype cannot express topics: over-subscribe to
                // the whole category (the user still only *wants* `topic`).
                sub.subscribe_category(PublisherId(0), Category::Technology);
            }
            Model::Flood => {
                // No summary at all: saturate the Bloom bits so every zone
                // always appears interested.
                sub.subscribe_subject(topic_subject(topic));
            }
        }
        d.sim.node_mut(NodeId(i)).set_subscription(sub);
        if model == Model::Flood {
            let bits = filters::BitArray::from_bytes(1024, &[0xFF; 128]);
            d.sim
                .node_mut(NodeId(i))
                .agent
                .set_local_attr("subs", astrolabe::AttrValue::Bits(bits));
        }
    }

    d.settle(75);
    let b0 = d.sim.total_counters().msgs_sent;
    d.sim.run_for(SimDuration::from_secs(20));
    let gossip_baseline = d.sim.total_counters().msgs_sent - b0;
    let before = d.sim.total_counters().msgs_sent;
    let t0 = d.sim.now();
    for seq in 0..ITEMS {
        let topic = (seq as u16 * 7) % TOPICS; // deterministic topic mix
        let item = newsml::NewsItem::builder(PublisherId(0), seq)
            .headline(format!("topic {topic}"))
            .category(Category::Technology)
            .subject(topic_subject(topic))
            .build();
        d.publish(t0 + SimDuration::from_secs(seq * 2), item);
    }
    d.sim.run_for(SimDuration::from_secs(ITEMS * 2));
    let publish_msgs = (d.sim.total_counters().msgs_sent - before).saturating_sub(gossip_baseline);

    // Wanted = arrivals whose topic the user asked for; unwanted = items
    // that reached the node's cache/application without being wanted.
    let mut wanted = 0u64;
    let mut unwanted = 0u64;
    for i in 1..=n {
        let node = d.sim.node(NodeId(i));
        for seq in 0..ITEMS {
            let topic = (seq as u16 * 7) % TOPICS;
            let id = newsml::ItemId::new(PublisherId(0), seq);
            let arrived = node.has_item(id) || node.cache.contains(id);
            if !arrived {
                continue;
            }
            if desired[i as usize] == topic {
                wanted += 1;
            } else {
                unwanted += 1;
            }
        }
    }
    Outcome { publish_msgs, wanted, unwanted }
}

pub(crate) fn run(quick: bool) {
    let n: u32 = if quick { 200 } else { 600 };
    let mut table = Table::new(
        "A1 (ablation) — subscription-summary expressiveness (topic-level interest, 10 items)",
        &["model", "publish msgs", "wanted arrivals", "unwanted arrivals"],
    );
    for (name, model) in [
        ("bloom 1024/3 (§6): topic subscriptions", Model::Bloom),
        ("category masks (§7): category only", Model::Masks),
        ("flood (no summary)", Model::Flood),
    ] {
        let o = run_model(n, model, 0xA1);
        table.row(&[
            name.to_string(),
            o.publish_msgs.to_string(),
            o.wanted.to_string(),
            o.unwanted.to_string(),
        ]);
    }
    table.caption(format!(
        "{n} subscribers each wanting one of {TOPICS} topics; the §7 masks cannot express \
         topics, so every category subscriber receives every category item (unwanted \
         arrivals ~ N x items), while the §6 Bloom summary prunes the tree down to the \
         actual topic audiences — the expressiveness the paper adopted Bloom filters for"
    ));
    table.print();
}
