//! E9 — scoped (regional) publishing.
//!
//! Paper basis (§8): "A publisher is able to restrict the scope of the
//! dissemination of the data by selecting another zone than the root zone
//! to publish data into. This for example allows the publisher to
//! disseminate localized news items in Asia."
//!
//! We publish the same item stream twice — once into the root, once into a
//! single top-level zone — and compare total network work and containment
//! (deliveries outside the scope must be zero even though the publisher
//! itself sits in a *different* region and relays in).

use amcast::{FilterSpec, McastConfig, McastData, McastMsg, McastNode};
use astrolabe::{Agent, Config, ZoneId, ZoneLayout};
use bytes::Bytes;
use rand::Rng;
use simnet::{fork, NetworkModel, NodeId, SimTime, Simulation};

use crate::Table;

fn build(n: u32, seed: u64) -> (Simulation<McastNode>, ZoneLayout) {
    let layout = ZoneLayout::new(n, 8);
    let mut aconfig = Config::standard();
    aconfig.branching = 8;
    let mut contact_rng = fork(seed, 99);
    let mut sim = Simulation::new(NetworkModel::default(), seed);
    for i in 0..n {
        let contacts: Vec<u32> = (0..3).map(|_| contact_rng.gen_range(0..n)).collect();
        let agent = Agent::new(i, &layout, aconfig.clone(), contacts);
        sim.add_node(McastNode::new(agent, McastConfig::default()));
    }
    (sim, layout)
}

struct Outcome {
    delivered_inside: usize,
    delivered_outside: usize,
    msgs: u64,
}

fn publish_with_scope(n: u32, scope_child: Option<u16>, seed: u64) -> Outcome {
    let (mut sim, layout) = build(n, seed);
    sim.run_until(SimTime::from_secs(45));
    // Gossip baseline over a publish-window-sized interval, so the
    // publish-attributable message count can be isolated.
    let b0 = sim.total_counters().msgs_sent;
    sim.run_until(SimTime::from_secs(60));
    let gossip_baseline = sim.total_counters().msgs_sent - b0;
    let scope = match scope_child {
        None => ZoneId::root(),
        Some(c) => ZoneId::root().child(c),
    };
    let inside = layout.agents_under(&scope);
    let before = sim.total_counters().msgs_sent;
    // Publisher deliberately OUTSIDE the scope (cross-zone relay path).
    let origin = 0u32;
    assert!(scope_child.is_none() || !inside.contains(&origin));
    for m in 0..5u64 {
        let data = McastData {
            id: m,
            origin,
            priority: 3,
            payload: Bytes::from_static(b"regional"),
            filter: FilterSpec::All,
        };
        sim.schedule_external(
            SimTime::from_secs(60),
            NodeId(origin),
            McastMsg::Publish { data, scope: scope.clone() },
        );
    }
    sim.run_until(SimTime::from_secs(75));
    let mut di = 0;
    let mut doutside = 0;
    for (id, node) in sim.iter() {
        let got = (0..5).filter(|&m| node.has_delivered(m)).count();
        if inside.contains(&id.0) {
            di += got;
        } else {
            doutside += got;
        }
    }
    Outcome {
        delivered_inside: di,
        delivered_outside: doutside,
        msgs: (sim.total_counters().msgs_sent - before).saturating_sub(gossip_baseline),
    }
}

pub(crate) fn run(quick: bool) {
    let n: u32 = if quick { 256 } else { 1_024 };
    // Scope = the last top-level zone (origin 0 lives in zone /0).
    let layout = ZoneLayout::new(n, 8);
    let top_children = layout.occupied_children(&ZoneId::root());
    let target = *top_children.last().expect("tree has children");
    let zone_size = layout.agents_under(&ZoneId::root().child(target)).len();

    let root = publish_with_scope(n, None, 0xE9);
    let scoped = publish_with_scope(n, Some(target), 0xE9);

    let mut table = Table::new(
        "E9 — root-scoped vs zone-scoped publishing (5 items, publisher outside the zone)",
        &[
            "scope",
            "nodes in scope",
            "delivered in",
            "delivered out",
            "publish msgs (gossip-corrected)",
        ],
    );
    table.row(&[
        "/ (root)".to_string(),
        n.to_string(),
        root.delivered_inside.to_string(),
        root.delivered_outside.to_string(),
        root.msgs.to_string(),
    ]);
    table.row(&[
        format!("/{target}"),
        zone_size.to_string(),
        scoped.delivered_inside.to_string(),
        scoped.delivered_outside.to_string(),
        scoped.msgs.to_string(),
    ]);
    table.caption(
        "paper: publishers can confine dissemination to a zone ('localized news in Asia'); \
         shape: zero leakage outside the scope and publish work ∝ scope size",
    );
    table.print();
}
