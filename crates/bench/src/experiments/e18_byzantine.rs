//! E18 — Byzantine zones: colluding adversaries, forged content, and the
//! signed-authority defenses, swept over collusion size × script × defenses.
//!
//! Paper basis (§8): the security section prescribes publisher signatures
//! and certificates but measures nothing adversarial — E17 covered *state*
//! going bad on otherwise-honest nodes; this sweep covers nodes that are
//! actively hostile and *coordinated*. Three collusion scripts (a joint
//! epoch-capture vote, a coordinated route partition, split-brain lying)
//! plus a forgery clique fabricating items under bogus signatures, each at
//! growing group sizes, each with the defense stack (end-to-end signature
//! verification on every admission path, the publisher-signed epoch fence,
//! misbehavior quarantine) on and ablated off.
//!
//! The headline asymmetry the nightly gate pins: every defenses-on cell
//! delivers zero forged items and stabilizes, while defenses-off forge
//! cells admit forgeries into honest applications (a permanent-harm verdict
//! — a forged delivery can never be un-delivered, so those cells never
//! stabilize) and defenses-off epoch-capture cells wipe honest logs by
//! reconciliation contagion. The per-script collusion breaking point — the
//! smallest colluding fraction whose ablated cell fails — comes from
//! [`collusion_breaking_point`] over the sweep's own samples.

use std::collections::BTreeSet;

use newswire::{collusion_breaking_point, self_stabilized, NewsWireConfig};
use simnet::{CollusionScript, CollusionSpec, FaultPlan, ForgeSpec, NodeId, SimTime};

use crate::experiments::support::{dump_telemetry, tech_item};
use crate::Table;

/// The adversary axis: the three collusion scripts plus a forgery clique.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Script {
    EpochCapture,
    RoutePartition,
    SplitBrain,
    Forge,
}

impl Script {
    const ALL: [Script; 4] =
        [Script::EpochCapture, Script::RoutePartition, Script::SplitBrain, Script::Forge];

    fn label(self) -> &'static str {
        match self {
            Script::EpochCapture => "epoch-capture",
            Script::RoutePartition => "route-partition",
            Script::SplitBrain => "split-brain",
            Script::Forge => "forge",
        }
    }
}

/// Colluding-group sizes swept per script.
const SIZES: [u32; 3] = [2, 5, 7];
/// The Byzantine window every arm shares.
const WINDOW: (u64, u64) = (100, 160);
/// Gossip rounds the oracle allows after the window (2 s each = 3 min).
const ROUND_BUDGET: u32 = 90;

struct Point {
    strikes: u64,
    intercepts: u64,
    injected: u64,
    forged_delivered: usize,
    forged_rejects: u64,
    quarantines: u64,
    refusals: u64,
    stabilized: bool,
    rounds_used: u32,
    delivery_pct: f64,
}

/// One cell: `size` adjacent mid-tree subscribers bound to `script` through
/// the shared window, judged afterwards by the self-stabilization oracle
/// (which now folds in the forged-delivery safety verdict).
fn run_point(n: u32, script: Script, size: u32, defenses: bool, seed: u64) -> Point {
    let mut config = NewsWireConfig::tech_news();
    config.defenses = defenses;
    let mut d = newswire::DeploymentBuilder::new(n, seed)
        .branching(8)
        .config(config)
        .publisher(newswire::PublisherSpec::global(newsml::PublisherProfile::slashdot(
            newsml::PublisherId(0),
        )))
        .cats_per_subscriber(2)
        .build();
    d.settle(60);

    // The group: adjacent subscriber ids, so the colluders share leaf zones
    // (the paper's Byzantine-zone scenario — a captured neighborhood, not
    // scattered individuals). The publisher at node 0 is spared.
    let group: Vec<NodeId> = (0..size).map(|k| NodeId(2 + k)).collect();
    let (start, end) = (SimTime::from_secs(WINDOW.0), SimTime::from_secs(WINDOW.1));
    let mut plan = FaultPlan { salt: seed ^ 0xE18, ..FaultPlan::default() };
    match script {
        Script::Forge => plan.forgery.push(ForgeSpec {
            nodes: group,
            start,
            end,
            mean_interval_secs: 8.0,
            items_per_strike: 3,
            publisher: 0,
        }),
        _ => plan.collusion.push(CollusionSpec {
            nodes: group,
            start,
            end,
            mean_interval_secs: 6.0,
            script: match script {
                Script::EpochCapture => CollusionScript::EpochCapture { publisher: 0 },
                Script::RoutePartition => CollusionScript::RoutePartition,
                _ => CollusionScript::SplitBrain,
            },
        }),
    }
    d.sim.apply_fault_plan(&plan);

    // The workload: a steady 24-item drumbeat crossing the whole window,
    // so both early (pre-strike) and late (mid-capture) items exist.
    let items: Vec<_> = (0..24u64).map(tech_item).collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(65 + 4 * i as u64), item.clone());
    }
    d.sim.run_until(end + simnet::SimDuration::from_secs(20));

    // Byzantine nodes are exempt from the eventual-delivery leg (their own
    // state was puppeted; quarantine legitimately isolates them) but every
    // honest node is held to every invariant, and the forged-delivery
    // verdict is global — colluders included.
    let mut exempt: BTreeSet<NodeId> = plan.colluding_nodes();
    exempt.extend(plan.forging_nodes());
    let verdict = self_stabilized(&mut d, &items, &exempt, ROUND_BUDGET);

    let faults = d.sim.fault_counters();
    let (forged_rejects, quarantines, refusals) = if obs::ENABLED {
        let hub = d.sim.telemetry();
        let hub = hub.borrow();
        (
            hub.counter_total(obs::ctr::NW_FORGED_REJECTS),
            hub.counter_total(obs::ctr::NW_QUARANTINES),
            hub.counter_total(obs::ctr::NW_SIGNED_EPOCH_REFUSALS),
        )
    } else {
        (0, 0, 0)
    };
    dump_telemetry(
        &format!("e18_{}_{}_{}", script.label(), size, if defenses { "def" } else { "abl" }),
        &mut d.sim,
    );
    Point {
        strikes: faults.collusion_strikes,
        intercepts: faults.collusion_intercepts,
        injected: faults.forged_items_injected,
        forged_delivered: verdict.report.forged_deliveries.len(),
        forged_rejects,
        quarantines,
        refusals,
        stabilized: verdict.stabilized,
        rounds_used: verdict.rounds_used,
        delivery_pct: 100.0 * verdict.report.survivor_delivery_ratio(),
    }
}

pub(crate) fn run(quick: bool) {
    let n: u32 = if quick { 48 } else { 120 };
    let mut table = Table::new(
        "E18 — Byzantine zones: collusion size × script × defenses",
        &[
            "script",
            "colluders",
            "defenses",
            "strikes",
            "intercepts",
            "injected",
            "forged dlvd",
            "forged rej",
            "quarantined",
            "refusals",
            "stabilized",
            "rounds",
            "delivery %",
        ],
    );
    // (fraction, stabilized) samples per script from the ablated cells,
    // feeding the breaking-point readout under the table.
    let mut ablated: Vec<(Script, Vec<(f64, bool)>)> =
        Script::ALL.iter().map(|&s| (s, Vec::new())).collect();
    for script in Script::ALL {
        for size in SIZES {
            for defenses in [true, false] {
                let p = run_point(n, script, size, defenses, 0xE18);
                if !defenses {
                    let samples =
                        &mut ablated.iter_mut().find(|(s, _)| *s == script).expect("seeded").1;
                    samples.push((f64::from(size) / f64::from(n), p.stabilized));
                }
                table.row(&[
                    script.label().to_string(),
                    size.to_string(),
                    if defenses { "on" } else { "off" }.to_string(),
                    p.strikes.to_string(),
                    p.intercepts.to_string(),
                    p.injected.to_string(),
                    p.forged_delivered.to_string(),
                    p.forged_rejects.to_string(),
                    p.quarantines.to_string(),
                    p.refusals.to_string(),
                    if p.stabilized { "yes" } else { "NO" }.to_string(),
                    if p.stabilized {
                        p.rounds_used.to_string()
                    } else {
                        format!(">{ROUND_BUDGET}")
                    },
                    format!("{:.1}", p.delivery_pct),
                ]);
            }
        }
    }
    table.caption(format!(
        "{n} subscribers, branching 8; 2/5/7 adjacent subscribers bound to each Byzantine \
         script through a {}–{} s window (joint epoch-capture votes at mean 6 s, coordinated \
         route-partition drops, split-brain digest lying, or forgery strikes fabricating 3 \
         bogus-signature items at mean 8 s). 24-item drumbeat workload crossing the window. \
         `forged dlvd` is the oracle's whole-run forged-delivery count (must be 0 in every \
         defenses-on cell); `stabilized` is the self_stabilized verdict within {ROUND_BUDGET} \
         gossip rounds after the window — it now folds in forgery safety, so an ablated forge \
         cell that admitted forgeries can never stabilize (a forged delivery is permanent \
         harm). Defenses = end-to-end signature verification on every admission path + the \
         publisher-signed epoch fence + misbehavior quarantine.",
        WINDOW.0, WINDOW.1
    ));
    table.print();
    for (script, samples) in &ablated {
        match collusion_breaking_point(samples) {
            Some(frac) => println!(
                "  breaking point, defenses off, {}: fraction {:.3} ({} of {n}) fails to \
                 stabilize",
                script.label(),
                frac,
                (frac * f64::from(n)).round() as u32,
            ),
            None => println!(
                "  breaking point, defenses off, {}: none within sweep (≤{} colluders)",
                script.label(),
                SIZES[SIZES.len() - 1],
            ),
        }
    }
}
