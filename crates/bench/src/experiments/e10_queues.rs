//! E10 — forwarding-queue service strategies.
//!
//! Paper basis (§9): "The best strategy to fill queues is still under
//! research. We are experimenting with weighted round-robin strategies, as
//! well as some more aggressive techniques."
//!
//! A single forwarding component is driven with heterogeneous child load
//! (one hot child at 10× the arrival rate of four quiet ones) at 85%
//! overall utilization, with 10% of traffic urgent. We compare queueing
//! delay per class/child across FIFO, weighted round-robin (weights ∝
//! offered load) and urgency-priority service.

use amcast::{ForwardingQueues, Strategy};
use rand::Rng;
use simnet::{exp_sample, fork, Summary};

use crate::Table;

struct Outcome {
    hot_p50_ms: f64,
    hot_p99_ms: f64,
    quiet_p50_ms: f64,
    quiet_p99_ms: f64,
    urgent_p99_ms: f64,
}

/// Event-driven single-server queue simulation over the real
/// `ForwardingQueues` structure.
fn simulate(strategy: Strategy, weighted: bool, seed: u64, horizon_s: f64) -> Outcome {
    let mut rng = fork(seed, strategy as u64 + u64::from(weighted) * 10);
    let mut q: ForwardingQueues<()> = ForwardingQueues::new(strategy);
    let children: [(u16, f64); 5] = [(0, 100.0), (1, 10.0), (2, 10.0), (3, 10.0), (4, 10.0)]; // arrivals/s
    for (c, rate) in children {
        q.declare_child(c, if weighted { rate as u32 } else { 1 });
    }
    let service_s = 1.0 / 165.0; // ~85% utilization at 140/s offered

    // Build the arrival schedule.
    let mut arrivals: Vec<(f64, u16, u8)> = Vec::new();
    for (child, rate) in children {
        let mut t = 0.0;
        loop {
            t += exp_sample(&mut rng, 1.0 / rate);
            if t >= horizon_s {
                break;
            }
            let urgent = rng.gen::<f64>() < 0.1;
            arrivals.push((t, child, if urgent { 1 } else { 5 }));
        }
    }
    arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let mut hot = Summary::new();
    let mut quiet = Summary::new();
    let mut urgent = Summary::new();
    // Standard single-server loop: `now` is the server clock; when idle it
    // jumps to the next arrival; each service occupies `service_s`.
    let mut now = 0.0f64;
    let mut i = 0usize;
    while i < arrivals.len() || !q.is_empty() {
        if q.is_empty() {
            now = now.max(arrivals[i].0);
        }
        while i < arrivals.len() && arrivals[i].0 <= now {
            let (t, child, prio) = arrivals[i];
            q.push(child, (t * 1e6) as u64, prio, ());
            i += 1;
        }
        if let Some(item) = q.pop() {
            let waited_ms = (now - item.enqueued_us as f64 / 1e6).max(0.0) * 1e3;
            if item.child == 0 {
                hot.record(waited_ms);
            } else {
                quiet.record(waited_ms);
            }
            if item.priority == 1 {
                urgent.record(waited_ms);
            }
            now += service_s;
        }
    }
    Outcome {
        hot_p50_ms: hot.quantile(0.5),
        hot_p99_ms: hot.quantile(0.99),
        quiet_p50_ms: quiet.quantile(0.5),
        quiet_p99_ms: quiet.quantile(0.99),
        urgent_p99_ms: urgent.quantile(0.99),
    }
}

pub(crate) fn run(quick: bool) {
    let horizon = if quick { 60.0 } else { 300.0 };
    let mut table = Table::new(
        "E10 — queueing delay by service strategy (hot child at 10x load, 85% utilization)",
        &["strategy", "hot p50 ms", "hot p99 ms", "quiet p50 ms", "quiet p99 ms", "urgent p99 ms"],
    );
    for (name, strategy, weighted) in [
        ("fifo", Strategy::Fifo, false),
        ("wrr (equal weights)", Strategy::WeightedRoundRobin, false),
        ("wrr (load weights)", Strategy::WeightedRoundRobin, true),
        ("priority (urgency)", Strategy::Priority, false),
    ] {
        let o = simulate(strategy, weighted, 0xE10, horizon);
        table.row(&[
            name.to_string(),
            format!("{:.1}", o.hot_p50_ms),
            format!("{:.1}", o.hot_p99_ms),
            format!("{:.1}", o.quiet_p50_ms),
            format!("{:.1}", o.quiet_p99_ms),
            format!("{:.1}", o.urgent_p99_ms),
        ]);
    }
    table.caption(
        "paper: WRR and 'more aggressive techniques' under study for queue filling; \
         shape: equal-weight WRR shields quiet children from the hot one at the hot \
         child's expense, load-weighted WRR trades that back, and priority service \
         pulls urgent items ahead of everything",
    );
    table.print();
}
