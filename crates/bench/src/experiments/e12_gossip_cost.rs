//! E12 — per-node gossip cost vs system size.
//!
//! Paper basis (§3): Astrolabe is "scalable, through the use of information
//! aggregation and fusion" — each agent holds and gossips only the tables
//! on its root path (≈ 64·log₆₄ N rows), so the per-node cost must grow
//! logarithmically with the system, not linearly.
//!
//! We run converged deployments of growing size and measure steady-state
//! bytes and messages per node per second, plus the replicated state held.

use astrolabe::{Agent, AstroNode, Config, ZoneLayout};
use rand::Rng;
use simnet::{fork, NetworkModel, NodeId, SimDuration, Simulation};

use crate::experiments::support::dump_telemetry;
use crate::Table;

fn measure(n: u32, branching: u16, seed: u64) -> (usize, f64, f64, usize) {
    let layout = ZoneLayout::new(n, branching);
    let mut config = Config::standard();
    config.branching = branching;
    let mut contact_rng = fork(seed, 99);
    let mut sim = Simulation::new(NetworkModel::default(), seed);
    for i in 0..n {
        let contacts: Vec<u32> = (0..3).map(|_| contact_rng.gen_range(0..n)).collect();
        sim.add_node(AstroNode::new(Agent::new(i, &layout, config.clone(), contacts)));
    }
    // Converge, then measure a steady-state window.
    sim.run_for(SimDuration::from_secs(60));
    let before = sim.total_counters();
    let window = 60u64;
    sim.run_for(SimDuration::from_secs(window));
    let after = sim.total_counters();
    let bytes_per_node_s =
        (after.bytes_sent - before.bytes_sent) as f64 / f64::from(n) / window as f64;
    let msgs_per_node_s =
        (after.msgs_sent - before.msgs_sent) as f64 / f64::from(n) / window as f64;
    // Replicated-state column from the telemetry registry's per-round gauge
    // when instrumentation is on (0 means "never set": fall back to walking
    // the agent's tables, which is also the obs-off path).
    let rows_held: usize = {
        let from_registry = {
            let hub = sim.telemetry();
            let g = hub.borrow().node_gauge((n / 2) as usize, obs::gauge::ASTRO_ROWS_HELD);
            g as usize
        };
        if from_registry > 0 {
            from_registry
        } else {
            let a = &sim.node(NodeId(n / 2)).agent;
            (0..a.levels()).map(|l| a.table(l).len()).sum()
        }
    };
    dump_telemetry(&format!("e12_n{n}"), &mut sim);
    (layout.levels() + 1, bytes_per_node_s, msgs_per_node_s, rows_held)
}

pub(crate) fn run(quick: bool) {
    let sizes: &[u32] = if quick { &[64, 512] } else { &[64, 512, 4_096, 16_384] };
    let branching = 16;
    let mut table = Table::new(
        "E12 — steady-state gossip cost per node (branching 16, gossip every 2 s)",
        &["agents", "levels", "bytes/node/s", "msgs/node/s", "rows held/node"],
    );
    for &n in sizes {
        let (levels, bytes, msgs, rows) = measure(n, branching, 0xE12);
        table.row(&[
            n.to_string(),
            levels.to_string(),
            format!("{bytes:.0}"),
            format!("{msgs:.1}"),
            rows.to_string(),
        ]);
    }
    table.caption(
        "paper: aggregation keeps the per-node burden bounded as the system grows; \
         shape: cost grows with tree depth (log N), not with N — 256x more agents \
         should cost only ~2x per node",
    );
    table.print();
}
