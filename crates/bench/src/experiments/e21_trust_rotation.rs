//! E21 — Trust-root rotation: key compromise, revocation propagation, and
//! Sybil admission control, swept over compromise duration × revocation
//! seeding × Sybil burst size × defenses.
//!
//! Paper basis (§8): the security section prescribes certificates issued by
//! "certification authorities" but never exercises the authority itself —
//! E18 covered adversaries with *bogus* keys; this sweep covers the worst
//! case the PKI axiom allows: the adversary holds a publisher's *real*
//! signing key, so every forgery and bogus epoch attestation verifies. The
//! registry answers with a signed rotation record (revoke + successor)
//! that propagates epidemically on the gossip Astrolabe already sends,
//! while a Sybil burst probes the membership layer with fabricated
//! identities that only registry-endorsed join tickets keep out.
//!
//! The headline asymmetries the nightly gate pins: every defenses-on cell
//! delivers zero forged items after its fence arms and stabilizes at 100%
//! survivor delivery; the exposure window (revocation → fleet-wide
//! adoption) shrinks monotonically as the rotation is seeded wider; the
//! fence-ablated cell admits forgeries through the full compromise window;
//! and Sybil-defended cells leave epoch consensus and representative
//! election byte-identical to a no-Sybil same-seed run.

use std::collections::BTreeSet;

use newsml::{PublisherId, PublisherProfile};
use newswire::{self_stabilized, NewsWireConfig, PublisherSpec};
use simnet::{FaultPlan, KeyCompromiseSpec, NodeId, SimDuration, SimTime, SybilSpec};

use crate::experiments::support::{dump_telemetry, tech_item};
use crate::Table;

/// The defense axis: the full stack, the revocation fence ablated (no
/// fencing, no purge — rotation records are ignored), or Sybil admission
/// control ablated (join tickets not demanded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Defense {
    Full,
    NoFence,
    NoAdmission,
}

impl Defense {
    fn label(self) -> &'static str {
        match self {
            Defense::Full => "full",
            Defense::NoFence => "no-fence",
            Defense::NoAdmission => "no-admission",
        }
    }
}

/// Compromise-window durations (seconds) swept in the defended grid.
const DURATIONS: [u64; 2] = [30, 90];
/// Revocation seeding widths swept in the defended grid: the record lands
/// at the publisher plus this many evenly-spaced subscribers, and spreads
/// epidemically from there.
const SEEDS: [u32; 3] = [1, 4, 16];
/// The compromise window opens here; the rotation fires mid-window.
const WINDOW_START: u64 = 110;
/// Gossip rounds the oracle allows after the window (2 s each = 3 min).
const ROUND_BUDGET: u32 = 90;

struct Point {
    strikes: u64,
    joins_attempted: u64,
    joins_refused: u64,
    exposure_delivered: usize,
    post_revocation_forged: usize,
    purged: u64,
    fence_rejects: u64,
    adopted: usize,
    nodes: usize,
    exposure_secs: f64,
    forged_through_end: bool,
    stabilized: bool,
    delivery_pct: f64,
    /// Per-honest-node (publisher-0 log epoch, rep-election bits for zone
    /// levels 0–2): the state the Sybil neutrality check compares.
    consensus: Vec<(u32, u32, u8)>,
}

/// One cell: a stolen-key window of `duration` seconds with a mid-window
/// rotation seeded at `seeds` subscribers, a Sybil burst of `sybil`
/// identities per strike, judged afterwards by the self-stabilization
/// oracle (which folds in the post-revocation forgery verdict).
fn run_point(n: u32, duration: u64, seeds: u32, sybil: u32, defense: Defense, seed: u64) -> Point {
    let mut config = NewsWireConfig::tech_news();
    config.redundancy = 2;
    config.defenses = defense != Defense::NoFence;
    config.admission = defense != Defense::NoAdmission;
    let mut d = newswire::DeploymentBuilder::new(n, seed)
        .branching(8)
        .config(config)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .cats_per_subscriber(2)
        .build();
    d.settle(60);

    // Two footholds for the stolen key and one Sybil striker, placed
    // relative to n so quick runs stay in range; node 0 (the publisher) is
    // spared so ground truth stays intact.
    let thieves = vec![NodeId(n / 6 + 1), NodeId(n / 2 + 1)];
    let striker = NodeId(n - 4);
    let (start, end) =
        (SimTime::from_secs(WINDOW_START), SimTime::from_secs(WINDOW_START + duration));
    let mut plan = FaultPlan {
        salt: seed ^ 0xE21,
        key_compromise: vec![KeyCompromiseSpec {
            nodes: thieves,
            start,
            end,
            mean_interval_secs: 8.0,
            items_per_strike: 3,
            attest_bump: 2,
            publisher: 0,
        }],
        ..FaultPlan::default()
    };
    if sybil > 0 {
        plan.sybil.push(SybilSpec {
            nodes: vec![striker],
            start,
            end,
            mean_interval_secs: 9.0,
            identities_per_strike: sybil,
            publisher: 0,
        });
    }
    d.sim.apply_fault_plan(&plan);

    // The workload: a 24-item drumbeat finishing before the window opens,
    // so the forged stream plants at sequence numbers past every genuine
    // item — squatting the genuine stream's ids would conflate the purge
    // re-delivery accounting with plain delivery.
    let items: Vec<_> = (0..24u64).map(tech_item).collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(65 + (3 * i as u64) / 2), item.clone());
    }

    // The registry reacts mid-window: the stolen key stays valid for
    // duration/2 seconds before the revocation is even issued, and keeps
    // striking for the remaining duration/2 against a closing fence.
    let revocation_at = SimTime::from_secs(WINDOW_START + duration / 2);
    d.schedule_rotation(revocation_at, PublisherId(0), seeds);
    d.sim.run_until(end + SimDuration::from_secs(40));

    // The striker is exempt even in burst-free runs, so the consensus
    // fingerprint below covers the same honest node set in every cell.
    let mut exempt: BTreeSet<NodeId> = plan.compromised_nodes();
    exempt.insert(striker);
    let verdict = self_stabilized(&mut d, &items, &exempt, ROUND_BUDGET);

    let faults = d.sim.fault_counters();
    let adopted = d.sim.iter().filter(|(_, node)| node.rotation_adopted_at.is_some()).count();
    let nodes = d.sim.len();
    let exposure_secs = if adopted == nodes {
        d.compromise_exposure_window().map_or(0.0, |w| w.as_secs_f64())
    } else {
        f64::INFINITY // never fully adopted: the key stays live somewhere
    };
    // Did fabricated content keep landing in honest applications to the
    // very end of the window? (The last strike interval is the margin.)
    let truth: BTreeSet<_> = items.iter().map(|i| i.id).collect();
    let window_tail = SimTime::from_secs(WINDOW_START + duration - 10);
    let forged_through_end = d
        .sim
        .iter()
        .filter(|(id, _)| !exempt.contains(id))
        .flat_map(|(_, node)| node.deliveries.iter())
        .any(|rec| !truth.contains(&rec.item) && rec.delivered >= window_tail);
    let joins_refused = if obs::ENABLED {
        let hub = d.sim.telemetry();
        let hub = hub.borrow();
        hub.counter_total(obs::ctr::SYBIL_JOINS_REFUSED)
    } else {
        0
    };
    let totals = d.total_stats();
    let (purged, fence_rejects) = (totals.retro_purged, totals.revoked_key_rejects);
    let consensus = d
        .sim
        .iter()
        .filter(|(id, _)| !exempt.contains(id))
        .map(|(id, node)| {
            let epoch = node.article_log(PublisherId(0)).map_or(0, |log| log.epoch());
            let reps =
                (0..3).fold(0u8, |bits, level| bits | u8::from(node.agent.is_rep(level)) << level);
            (id.0, epoch, reps)
        })
        .collect();
    dump_telemetry(
        &format!("e21_{}_{duration}s_{seeds}seeds_{sybil}sybil", defense.label()),
        &mut d.sim,
    );
    Point {
        strikes: faults.key_compromise_strikes,
        joins_attempted: faults.sybil_joins_attempted,
        joins_refused,
        exposure_delivered: verdict.report.compromise_exposure.len(),
        post_revocation_forged: verdict.report.post_revocation_forged.len(),
        purged,
        fence_rejects,
        adopted,
        nodes,
        exposure_secs,
        forged_through_end,
        stabilized: verdict.stabilized,
        delivery_pct: 100.0 * verdict.report.survivor_delivery_ratio(),
        consensus,
    }
}

#[allow(clippy::too_many_lines)]
pub(crate) fn run(quick: bool) {
    let n: u32 = if quick { 48 } else { 120 };
    let seed = 0xE21;
    let mut table = Table::new(
        "E21 — Trust-root rotation: compromise duration × revocation seeding × Sybil burst \
         × defenses",
        &[
            "defense",
            "window s",
            "seeds",
            "sybil",
            "strikes",
            "joins",
            "refused",
            "exposure dlvd",
            "post-rev forged",
            "purged",
            "fence rej",
            "adopted",
            "exposure s",
            "thru-end",
            "stabilized",
            "delivery %",
        ],
    );
    let mut row = |p: &Point, defense: Defense, duration: u64, seeds: u32, sybil: u32| {
        table.row(&[
            defense.label().to_string(),
            duration.to_string(),
            seeds.to_string(),
            sybil.to_string(),
            p.strikes.to_string(),
            p.joins_attempted.to_string(),
            p.joins_refused.to_string(),
            p.exposure_delivered.to_string(),
            p.post_revocation_forged.to_string(),
            p.purged.to_string(),
            p.fence_rejects.to_string(),
            format!("{}/{}", p.adopted, p.nodes),
            if p.exposure_secs.is_finite() {
                format!("{:.1}", p.exposure_secs)
            } else {
                "unbounded".to_string()
            },
            if p.forged_through_end { "yes" } else { "no" }.to_string(),
            if p.stabilized { "yes" } else { "NO" }.to_string(),
            format!("{:.1}", p.delivery_pct),
        ]);
    };

    // The defended grid: exposure must shrink monotonically as the
    // rotation is seeded wider, at every compromise duration.
    let mut monotone = true;
    for duration in DURATIONS {
        let mut prev = f64::INFINITY;
        for seeds in SEEDS {
            let p = run_point(n, duration, seeds, 8, Defense::Full, seed);
            monotone &= p.exposure_secs <= prev;
            prev = p.exposure_secs;
            row(&p, Defense::Full, duration, seeds, 8);
        }
    }

    // The ablations, at the long window and middle seeding: no-fence must
    // keep admitting forgeries to the very end of the window; no-admission
    // must let the Sybil burst through unrefused.
    let ablation_dur = DURATIONS[1];
    let ablation_seeds = SEEDS[1];
    let no_fence = run_point(n, ablation_dur, ablation_seeds, 8, Defense::NoFence, seed);
    row(&no_fence, Defense::NoFence, ablation_dur, ablation_seeds, 8);
    let no_admission = run_point(n, ablation_dur, ablation_seeds, 8, Defense::NoAdmission, seed);
    row(&no_admission, Defense::NoAdmission, ablation_dur, ablation_seeds, 8);

    // The Sybil-burst axis, defended: admission control must hold the
    // membership layer *byte-identical* to a burst-free same-seed run —
    // epoch consensus and representative election included.
    let baseline = run_point(n, ablation_dur, ablation_seeds, 0, Defense::Full, seed);
    row(&baseline, Defense::Full, ablation_dur, ablation_seeds, 0);
    let mut neutral = true;
    for sybil in [8, 24] {
        let p = run_point(n, ablation_dur, ablation_seeds, sybil, Defense::Full, seed);
        neutral &= p.consensus == baseline.consensus;
        if sybil != 8 {
            row(&p, Defense::Full, ablation_dur, ablation_seeds, sybil);
        }
    }

    table.caption(format!(
        "{n} subscribers, branching 8; 2 footholds wield publisher 0's *real* signing key \
         (3 forged items + a bogus epoch attestation per strike, mean 8 s — everything \
         verifies) through a window opening at {WINDOW_START} s, while 1 striker floods \
         `sybil` fabricated identities per strike (mean 9 s). The signed rotation record is \
         injected mid-window at the publisher plus `seeds` evenly-spaced subscribers and \
         spreads epidemically. 24-item drumbeat workload. `exposure dlvd` counts forged \
         deliveries while the stolen key was still locally valid (pre-adoption; the paper's \
         unavoidable exposure), `post-rev forged` counts deliveries past an armed fence \
         (must be 0 in every defended cell), `exposure s` is revocation → fleet-wide \
         adoption, `thru-end` is whether forgeries still landed in the window's last 10 s. \
         Defenses = versioned certificates + rotation records with freshness fencing on \
         every admission path + retroactive cache purge; admission = registry-endorsed join \
         tickets + zone quotas + probation. self_stabilized budget: {ROUND_BUDGET} rounds.",
    ));
    table.print();
    println!(
        "  exposure window monotone shrinking with revocation seeding: {}",
        if monotone { "yes" } else { "NO" }
    );
    println!(
        "  Sybil-defended epoch consensus & rep election vs no-Sybil same-seed: {}",
        if neutral { "unchanged" } else { "DIVERGED" }
    );
}
