//! E4 — publisher overload / denial of service.
//!
//! Paper basis (abstract, §1): NewsWire "guarantees delivery even in the
//! face of publisher overload or denial of service attacks"; centralized
//! sites under overload "become completely useless …, failing even to
//! service a small percentage of the visitors" (the September 2001
//! observation).
//!
//! Left side: a centralized pull server with 200 req/s capacity under a
//! request flood of growing intensity; goodput = honest polls answered.
//! Right side: a NewsWire deployment whose publisher receives the same
//! flood as bogus publish requests (they fail authentication and flow
//! control); goodput = legitimate subscription deliveries.

use baselines::{AttackClient, FetchMode, WebClient, WebMsg, WebNode, WebServer};
use newsml::PublisherId;
use simnet::{NetworkModel, NodeId, SimDuration, SimTime, Simulation};

use crate::experiments::support::{newswire_deployment, tech_item};
use crate::Table;

const HONEST: u32 = 20;

/// Returns (honest answer rate %, server drop rate %).
fn central_under_attack(attack_rps: u64, seed: u64) -> (f64, f64) {
    let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_millis(20)), seed);
    sim.add_node(WebNode::Server(WebServer::new(
        20,
        300,
        1_500,
        SimDuration::from_millis(5), // 200 req/s capacity
        100,
    )));
    for _ in 0..HONEST {
        sim.add_node(WebNode::Client(WebClient::new(
            NodeId(0),
            FetchMode::FullPage,
            SimDuration::from_secs(5),
        )));
    }
    if let Some(per_us) = (40 * 1_000_000u64).checked_div(attack_rps) {
        // 40 attackers sharing the target rate.
        for _ in 0..40 {
            sim.add_node(WebNode::Attacker(AttackClient::new(
                NodeId(0),
                SimDuration::from_micros(per_us),
            )));
        }
    }
    for s in 0..30 {
        sim.schedule_external(
            SimTime::from_secs(s * 2),
            NodeId(0),
            WebMsg::PublishStory { story: s },
        );
    }
    sim.run_until(SimTime::from_secs(120));
    let (mut fetches, mut timeouts) = (0u64, 0u64);
    for i in 1..=HONEST {
        let WebNode::Client(c) = sim.node(NodeId(i)) else { unreachable!() };
        fetches += c.stats.fetches;
        timeouts += c.stats.timeouts;
    }
    let WebNode::Server(s) = sim.node(NodeId(0)) else { unreachable!() };
    let offered = s.stats.served + s.stats.dropped;
    (
        100.0 * (fetches - timeouts) as f64 / fetches.max(1) as f64,
        100.0 * s.stats.dropped as f64 / offered.max(1) as f64,
    )
}

/// Returns (legit delivery %, bogus rejected count).
fn newswire_under_attack(attack_rps: u64, n: u32, seed: u64) -> (f64, u64) {
    let mut d = newswire_deployment(n, 16, seed);
    d.settle(60);
    let publisher = d.publisher_node(PublisherId(0));
    let attack_window_s = 60u64;
    if attack_rps > 0 {
        let total = attack_rps * attack_window_s;
        let gap = attack_window_s * 1_000_000 / total.max(1);
        for i in 0..total {
            let bogus = newsml::NewsItem::builder(PublisherId(5), i).headline("junk").build();
            d.sim.schedule_external(
                SimTime::from_micros(60_000_000 + i * gap),
                publisher,
                newswire::NewsWireMsg::PublishRequest { item: bogus, scope: None, predicate: None },
            );
        }
    }
    let mut items = Vec::new();
    for s in 0..10u64 {
        let item = tech_item(s);
        d.publish(SimTime::from_secs(62 + s * 4), item.clone());
        items.push(item);
    }
    d.settle(attack_window_s + 40);
    let (mut wanted, mut got) = (0usize, 0usize);
    for item in &items {
        wanted += d.interested_nodes(item).len();
        got += d.delivered_nodes(item).len();
    }
    let rejected = d.sim.node(publisher).stats.publish_denied;
    (100.0 * got as f64 / wanted.max(1) as f64, rejected)
}

pub(crate) fn run(quick: bool) {
    let rates: &[u64] = if quick { &[0, 2_000] } else { &[0, 200, 2_000, 20_000] };
    let n = if quick { 150 } else { 300 };
    let mut table = Table::new(
        "E4 — goodput under request flood (server capacity 200 req/s)",
        &[
            "attack req/s",
            "central answered %",
            "central dropped %",
            "newswire delivered %",
            "bogus rejected",
        ],
    );
    for &rps in rates {
        let (answered, dropped) = central_under_attack(rps, 0xE4);
        let (delivered, rejected) = newswire_under_attack(rps, n, 0xE4);
        table.row(&[
            rps.to_string(),
            format!("{answered:.0}"),
            format!("{dropped:.0}"),
            format!("{delivered:.0}"),
            rejected.to_string(),
        ]);
    }
    table.caption(
        "paper: centralized sites fail under overload while NewsWire keeps delivering; \
         shape: central goodput collapses with attack rate, newswire stays at 100%",
    );
    table.print();
}
