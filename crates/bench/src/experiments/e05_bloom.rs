//! E5 — Bloom-filter sizing for the subscription summaries.
//!
//! Paper basis (§6): "we can use a large single bit array in the order of a
//! thousand bits or more … The use of Bloom filters is not perfect, insofar
//! as multiple subscriptions can hash to the same bit … the accuracy can be
//! made as good as desired by varying the size of the bit array, and we
//! believe that a relatively small array will be more than adequate for the
//! target domain of our effort: Internet news services."
//!
//! We build a subscriber population (4 keys each from a news-scale key
//! universe), OR-aggregate their filters into 64-member leaf-zone summaries
//! and further into 4096-member interior summaries (exactly what the tree
//! does), and measure the false-positive *forwarding* rate: how often a
//! zone summary admits an item no member below subscribes to.

use filters::{positions, BloomFilter};
use rand::Rng;
use simnet::fork;

use crate::Table;

const KEY_UNIVERSE: usize = 2_000;
const KEYS_PER_SUB: usize = 4;
const HASHES: u32 = 3;

fn key(i: usize) -> String {
    format!("subject/{:02}.{:03}", i % 17, i / 17)
}

struct Population {
    /// Exact key sets per subscriber.
    subs: Vec<Vec<usize>>,
}

fn build_population(n: usize, seed: u64) -> Population {
    let mut rng = fork(seed, 0);
    let zipf = newsml::Zipf::new(KEY_UNIVERSE, 1.0);
    let subs = (0..n)
        .map(|_| {
            let mut keys: Vec<usize> = (0..KEYS_PER_SUB).map(|_| zipf.sample(&mut rng)).collect();
            keys.sort_unstable();
            keys.dedup();
            keys
        })
        .collect();
    Population { subs }
}

/// False-positive rate of `zone_size`-member aggregated summaries: fraction
/// of (zone, probe-item) pairs where the filter admits an item none of the
/// zone's members subscribes to.
fn zone_fp_rate(pop: &Population, m: usize, zone_size: usize, seed: u64) -> (f64, f64) {
    let mut rng = fork(seed, 1);
    let mut fp = 0u64;
    let mut eligible = 0u64;
    let mut fill_total = 0.0;
    let mut zones = 0usize;
    for chunk in pop.subs.chunks(zone_size) {
        // Aggregate the zone's filter (the ORBITS step).
        let mut agg = BloomFilter::new(m, HASHES);
        let mut exact: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for sub in chunk {
            for &k in sub {
                agg.insert(&key(k));
                exact.insert(k);
            }
        }
        fill_total += agg.fill_ratio();
        zones += 1;
        // Probe with random single-key items.
        for _ in 0..200 {
            let k = rng.gen_range(0..KEY_UNIVERSE);
            if exact.contains(&k) {
                continue; // true positive, not interesting here
            }
            eligible += 1;
            if agg.contains_positions(&positions(&key(k), m, HASHES)) {
                fp += 1;
            }
        }
    }
    (100.0 * fp as f64 / eligible.max(1) as f64, fill_total / zones.max(1) as f64)
}

pub(crate) fn run(quick: bool) {
    let n_subs = if quick { 1_024 } else { 8_192 };
    let pop = build_population(n_subs, 0xE5);
    let mut table = Table::new(
        "E5 — false-positive forwarding rate vs Bloom array size",
        &["bits", "fill@zone64", "FP% @zone64", "fill@zone4096", "FP% @zone4096"],
    );
    for m in [256usize, 512, 1_024, 2_048, 4_096, 8_192, 16_384] {
        let (fp64, fill64) = zone_fp_rate(&pop, m, 64, 0xE5);
        let (fp4096, fill4096) = zone_fp_rate(&pop, m, 4_096.min(n_subs), 0xE5);
        table.row(&[
            m.to_string(),
            format!("{fill64:.2}"),
            format!("{fp64:.1}"),
            format!("{fill4096:.2}"),
            format!("{fp4096:.1}"),
        ]);
    }
    table.caption(format!(
        "{n_subs} subscribers, {KEYS_PER_SUB} keys each from a {KEY_UNIVERSE}-key news universe, k={HASHES}; \
         paper: ~1k bits 'more than adequate' — note leaf-zone FP is what costs wasted forwards, \
         and interior summaries saturate (fill→1) for any array size once thousands of distinct \
         keys aggregate, exactly why the final exact test at the leaf (§6) is required"
    ));
    table.print();
}
