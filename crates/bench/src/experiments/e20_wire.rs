//! E20 — the delta-everything wire protocol: wire bytes under CDC article
//! deltas plus gossip row diffs, against the full-payload baseline.
//!
//! Paper basis (§5, §9): the infrastructure leans on continuous background
//! traffic — gossip exchanges every round, revision fusion re-shipping
//! whole article bodies, repair and reconciliation re-offering items — and
//! the paper simply prices all of it at full size. This experiment asks
//! what the same protocol costs when everything on the wire is
//! delta-encoded: gossip digests shrink to row diffs against what the peer
//! already acknowledged, and a revised article ships only the CDC chunks
//! that changed since the revision the receiver holds.
//!
//! Two arms run the identical seeded revision-heavy workload in one
//! process: `full` with the delta protocol off (every payload full-priced,
//! the pre-delta wire format) and `delta` with CDC article deltas, gossip
//! row diffs and compressed-wire accounting all on. Telemetry is drained
//! after the settle phase so both arms meter the same steady-state window.
//! Reported: full-priced bytes, accounted wire bytes, the reduction ratio
//! (full arm's wire bytes over the delta arm's — the nightly gate asserts
//! ≥5×), delivery latency p50/p99 (the gate asserts the delta arm's p50
//! stays within 10% — savings must not cost latency), final-revision
//! completeness, and the delta machinery's own counters.

use newsml::{Category, ItemId, NewsItem, PublisherId, PublisherProfile};
use newswire::{DeploymentBuilder, NewsWireConfig, PublisherSpec};
use simnet::SimTime;

use crate::experiments::support::dump_telemetry;
use crate::Table;

struct Arm {
    /// Full-priced bytes sent during the measured window.
    bytes_sent: u64,
    /// What the accounting model says actually crossed the wire (equals
    /// `bytes_sent` in the full arm).
    bytes_wire: u64,
    p50_s: f64,
    p99_s: f64,
    final_rev_pct: f64,
    delta_items: u64,
    fallbacks: u64,
    refresh_rows: u64,
}

/// One arm: `stories` stories each revised `revs - 1` times after the
/// initial telling, published in 20-second revision waves over a WAN with
/// 1% loss, so repair and reconciliation re-ship revised bodies too.
fn run_arm(n: u32, stories: u32, revs: u32, deltas: bool, seed: u64) -> Arm {
    let mut config = NewsWireConfig::tech_news();
    config.deltas = deltas;
    config.astrolabe.delta_gossip = deltas;
    let mut d = DeploymentBuilder::new(n, seed)
        .branching(8)
        .config(config)
        .wan(0.01)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .cats_per_subscriber(2)
        .build();
    d.sim.set_delta_accounting(deltas);
    d.settle(60);
    // Zero the byte meters here so both arms price the same steady-state
    // window (cold-start membership convergence is E6's subject, not this
    // experiment's).
    let _ = d.sim.drain_telemetry();

    let mut items = Vec::new();
    let mut prev: Vec<Option<ItemId>> = vec![None; stories as usize];
    for rev in 0..revs {
        for story in 0..stories {
            let seq = u64::from(rev * stories + story);
            let item = NewsItem::builder(PublisherId(0), seq)
                .headline(format!("story {story} rev {rev}"))
                .slug(format!("e20-story-{story}"))
                .category(Category::Technology)
                .revision(rev, prev[story as usize])
                .body_len(24_000 + 480 * rev)
                .build();
            prev[story as usize] = Some(item.id);
            d.publish(
                SimTime::from_secs(60 + 20 * u64::from(rev) + u64::from(story)),
                item.clone(),
            );
            items.push(item);
        }
    }
    // Ride out the last wave plus a repair/reconciliation tail.
    d.settle(20 * u64::from(revs) + 80);

    let tc = d.sim.total_counters();
    let (wire, delta_items, fallbacks, refresh_rows) = if obs::ENABLED {
        let hub = d.sim.telemetry();
        let hub = hub.borrow();
        (
            hub.counter_total(obs::ctr::BYTES_WIRE),
            hub.counter_total(obs::ctr::DELTA_ITEMS_SENT),
            hub.counter_total(obs::ctr::DELTA_FALLBACK_FULL),
            hub.counter_total(obs::ctr::GOSSIP_REFRESH_ROWS),
        )
    } else {
        (0, 0, 0, 0)
    };
    let mut latency = d.delivery_latency_summary();
    let q = |l: &mut simnet::Summary, at: f64| if l.is_empty() { 0.0 } else { l.quantile(at) };
    // Completeness over *final* revisions: older tellings are revision-fused
    // away at every cache, so holding a story's last revision is the
    // meaningful delivery endpoint.
    let (mut want, mut have) = (0u64, 0u64);
    for item in items.iter().filter(|i| i.revision == revs - 1) {
        for node in d.interested_nodes(item) {
            want += 1;
            have += u64::from(d.sim.node(node).has_item(item.id));
        }
    }
    dump_telemetry(&format!("e20_{}", if deltas { "delta" } else { "full" }), &mut d.sim);
    Arm {
        bytes_sent: tc.bytes_sent,
        bytes_wire: if deltas && wire > 0 { wire } else { tc.bytes_sent },
        p50_s: q(&mut latency, 0.5),
        p99_s: q(&mut latency, 0.99),
        final_rev_pct: if want == 0 { 100.0 } else { 100.0 * have as f64 / want as f64 },
        delta_items,
        fallbacks,
        refresh_rows,
    }
}

pub(crate) fn run(quick: bool) {
    let n: u32 = if quick { 120 } else { 300 };
    let stories: u32 = if quick { 6 } else { 10 };
    let revs: u32 = if quick { 4 } else { 6 };
    let full = run_arm(n, stories, revs, false, 0xE20);
    let delta = run_arm(n, stories, revs, true, 0xE20);

    let mut table = Table::new(
        "E20 — delta wire protocol: wire bytes and latency, full vs delta arm",
        &[
            "arm",
            "sent MB",
            "wire MB",
            "ratio",
            "p50 s",
            "p99 s",
            "final-rev %",
            "delta items",
            "fallbacks",
            "refresh rows",
        ],
    );
    let mb = |b: u64| format!("{:.2}", b as f64 / 1e6);
    table.row(&[
        "full".to_string(),
        mb(full.bytes_sent),
        mb(full.bytes_wire),
        "1.00".to_string(),
        format!("{:.2}", full.p50_s),
        format!("{:.2}", full.p99_s),
        format!("{:.1}", full.final_rev_pct),
        full.delta_items.to_string(),
        full.fallbacks.to_string(),
        full.refresh_rows.to_string(),
    ]);
    let ratio = full.bytes_wire as f64 / delta.bytes_wire.max(1) as f64;
    table.row(&[
        "delta".to_string(),
        mb(delta.bytes_sent),
        mb(delta.bytes_wire),
        format!("{ratio:.2}"),
        format!("{:.2}", delta.p50_s),
        format!("{:.2}", delta.p99_s),
        format!("{:.1}", delta.final_rev_pct),
        delta.delta_items.to_string(),
        delta.fallbacks.to_string(),
        delta.refresh_rows.to_string(),
    ]);
    table.caption(format!(
        "{n} subscribers, branching 8, WAN with 1% loss; {stories} stories × {revs} revisions \
         published in 20 s waves, byte meters zeroed after a 60 s settle so both arms price \
         the same steady-state window. `sent MB` is every payload at full price, `wire MB` \
         is the accounting model's compressed figure, `ratio` the full arm's wire bytes \
         over this arm's. The delta arm ships gossip row diffs plus CDC chunk deltas for \
         revised articles; deliveries themselves are identical, so p50 must hold while \
         bytes fall."
    ));
    table.print();
}
