//! Wall-clock performance scenarios — the `perf` binary's workload library.
//!
//! Unlike the E1–E14 experiments (which report *simulated* time and bytes),
//! these scenarios measure how fast the simulator itself chews through a
//! fixed, seeded workload on real hardware: wall-clock seconds, events per
//! second, and the event queue's high-water mark. The `perf` binary emits
//! them as `BENCH.json`, the committed baseline future PRs regress against.
//!
//! Every scenario is deterministic in its *simulated* outcome (the `detail`
//! field records a seed-stable check value); only the wall-clock figures
//! vary between machines and runs.

use std::time::Instant;

use astrolabe::{Agent, AstroNode, Config, ZoneLayout};
use newsml::{Category, NewsItem, PublisherId, PublisherProfile};
use newswire::{check_invariants, DeploymentBuilder, NewsWireConfig, PublisherSpec};
use rand::Rng;
use simnet::{
    fork, ChurnSpec, Context, FaultPlan, GrayProfile, GraySpec, NetworkModel, Node, NodeId,
    SimDuration, SimTime, Simulation, TimerId,
};

/// One scenario's measurement.
#[derive(Debug, Clone)]
pub struct PerfResult {
    /// Stable scenario identifier (`astro_convergence_n10000_b16`, …).
    pub name: String,
    /// Wall-clock seconds for the measured portion of the scenario.
    pub wall_s: f64,
    /// Simulator events processed during the measured portion.
    pub events: u64,
    /// `events / wall_s`.
    pub events_per_s: f64,
    /// High-water mark of the simulator's event queue.
    pub peak_queue_depth: usize,
    /// Process peak RSS (`VmHWM`) in MiB as of the end of this scenario.
    /// The kernel counter is monotone across the process lifetime, so within
    /// one suite run a scenario's figure is "largest footprint so far" — the
    /// biggest scenario dominates, earlier ones bound it from below.
    pub peak_rss_mb: f64,
    /// Bytes the accounting model says crossed the simulated network: the
    /// compressed `bytes_wire` lane when delta accounting ran, the
    /// full-price `bytes_sent` figure otherwise.
    pub wire_bytes_total: u64,
    /// Bytes the delta protocol avoided sending (`bytes_sent -
    /// bytes_wire`); 0 whenever delta accounting was off.
    pub wire_bytes_saved: u64,
    /// Seed-stable check value (simulated outcome, not timing) — identical
    /// across machines for the same code and seed, so a behavior change
    /// shows up as a `detail` diff even when timings drift.
    pub detail: String,
}

/// Wire-byte totals for a finished simulation: `(total, saved)`. The total
/// is the compressed `bytes_wire` lane when delta accounting tallied it,
/// else the full-price `bytes_sent` figure (so the field is comparable
/// across modes); `saved` is the difference.
fn wire_totals<N: Node>(sim: &Simulation<N>) -> (u64, u64) {
    let sent = sim.total_counters().bytes_sent;
    if !obs::ENABLED {
        return (sent, 0);
    }
    let hub = sim.telemetry();
    let wire = hub.borrow().counter_total(obs::ctr::BYTES_WIRE);
    if wire == 0 {
        (sent, 0)
    } else {
        (wire, sent.saturating_sub(wire))
    }
}

/// Process peak resident-set size in MiB, from `/proc/self/status` `VmHWM`
/// (0.0 where procfs is unavailable).
pub fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0.0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Astrolabe membership convergence from cold start: `n` agents gossip
/// until three probe nodes account for full membership at the root, plus a
/// 30-simulated-second steady-state window (the per-round recompute cost).
pub fn astro_convergence(n: u32, branching: u16, seed: u64) -> PerfResult {
    let layout = ZoneLayout::new(n, branching);
    let mut config = Config::standard();
    config.branching = branching;
    let mut contact_rng = fork(seed, 99);
    let mut sim = Simulation::new(NetworkModel::default(), seed);
    for i in 0..n {
        let contacts: Vec<u32> = (0..3).map(|_| contact_rng.gen_range(0..n)).collect();
        sim.add_node(AstroNode::new(Agent::new(i, &layout, config.clone(), contacts)));
    }
    let probes = [0u32, n / 2, n - 1];
    let members_at_root = |sim: &Simulation<AstroNode>, probe: u32| -> i64 {
        sim.node(NodeId(probe))
            .agent
            .root_table()
            .iter()
            .filter_map(|(_, r)| r.get("nmembers").and_then(|v| v.as_i64()))
            .sum()
    };

    // Sharded runs (SIMNET_SHARDS > 1) go through the threaded window
    // executor; its output is byte-identical to the sequential sharded path.
    let parallel = sim.shard_count() > 1;
    let start = Instant::now();
    let mut converged_at = None;
    for t in 1..=600u64 {
        if parallel {
            sim.run_until_parallel(SimTime::from_secs(t));
        } else {
            sim.run_until(SimTime::from_secs(t));
        }
        if probes.iter().all(|&p| members_at_root(&sim, p) == i64::from(n)) {
            converged_at = Some(t);
            break;
        }
    }
    if parallel {
        sim.run_for_parallel(SimDuration::from_secs(30));
    } else {
        sim.run_for(SimDuration::from_secs(30));
    }
    let wall = start.elapsed().as_secs_f64();

    let events = sim.events_processed();
    let (wire_bytes_total, wire_bytes_saved) = wire_totals(&sim);
    PerfResult {
        name: format!("astro_convergence_n{n}_b{branching}"),
        wall_s: wall,
        events,
        events_per_s: events as f64 / wall,
        peak_queue_depth: sim.peak_queue_depth(),
        peak_rss_mb: peak_rss_mb(),
        wire_bytes_total,
        wire_bytes_saved,
        detail: format!(
            "converged_sim_s={}",
            converged_at.map_or("never".into(), |t| t.to_string())
        ),
    }
}

/// NewsWire publish fan-out under E13-style chaos: a first-pass tree with
/// acknowledged hand-offs, 20% of subscribers severely gray and a further
/// 20% Poisson-churning, ten items published through the brownout.
pub fn newswire_chaos(n: u32, seed: u64) -> PerfResult {
    let start = Instant::now();
    let mut config = NewsWireConfig::tech_news();
    config.redundancy = 1;
    config.repair_interval = None;
    let mut d = DeploymentBuilder::new(n, seed)
        .branching(8)
        .config(config)
        .wan(0.02)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .cats_per_subscriber(2)
        .build();
    d.settle(90);

    let total = n + 1; // + the publisher at node 0, which is spared
    let mut pick_rng = fork(seed, 0x13);
    let mut picked = std::collections::HashSet::new();
    let mut gray_nodes = Vec::new();
    while (gray_nodes.len() as u32) < n / 5 {
        let v = pick_rng.gen_range(1..total);
        if picked.insert(v) {
            gray_nodes.push(NodeId(v));
        }
    }
    let mut churn_nodes = Vec::new();
    while (churn_nodes.len() as u32) < n / 5 {
        let v = pick_rng.gen_range(1..total);
        if picked.insert(v) {
            churn_nodes.push(NodeId(v));
        }
    }
    let plan = FaultPlan {
        salt: seed,
        gray: vec![GraySpec {
            nodes: gray_nodes,
            start: SimTime::from_secs(90),
            end: None,
            profile: GrayProfile::severe(),
        }],
        churn: vec![ChurnSpec {
            nodes: churn_nodes,
            start: SimTime::from_secs(90),
            end: SimTime::from_secs(150),
            mean_up_secs: 30.0,
            mean_down_secs: 10.0,
            recover_at_end: true,
            restart: simnet::RestartMode::Freeze,
        }],
        ..FaultPlan::default()
    };
    d.sim.apply_fault_plan(&plan);

    let items: Vec<NewsItem> = (0..10u64)
        .map(|s| {
            NewsItem::builder(PublisherId(0), s)
                .headline(format!("story {s}"))
                .category(Category::Technology)
                .body_len(1_200)
                .build()
        })
        .collect();
    for (i, item) in items.iter().enumerate() {
        d.publish(SimTime::from_secs(95 + 3 * i as u64), item.clone());
    }
    d.settle(70);
    let wall = start.elapsed().as_secs_f64();

    let report = check_invariants(&d, &items, &plan.churned_nodes());
    let events = d.sim.events_processed();
    let (wire_bytes_total, wire_bytes_saved) = wire_totals(&d.sim);
    PerfResult {
        name: format!("newswire_chaos_n{n}"),
        wall_s: wall,
        events,
        events_per_s: events as f64 / wall,
        peak_queue_depth: d.sim.peak_queue_depth(),
        peak_rss_mb: peak_rss_mb(),
        wire_bytes_total,
        wire_bytes_saved,
        detail: format!("survivor_pct={:.1}", 100.0 * report.survivor_delivery_ratio()),
    }
}

/// The delta wire protocol under a revision-heavy feed: eight stories each
/// revised four times, so forwarding, repair and reconciliation traffic in
/// bodies the receivers mostly already hold. The delta protocol is forced
/// on through explicit configuration (not the `NEWSWIRE_DELTAS` switch) so
/// the scenario measures the same thing in every CI arm; `wire_bytes_total`
/// / `wire_bytes_saved` report the compressed accounting lane.
pub fn wire_deltas(n: u32, seed: u64) -> PerfResult {
    let start = Instant::now();
    let mut config = NewsWireConfig::tech_news();
    config.deltas = true;
    config.astrolabe.delta_gossip = true;
    let mut d = DeploymentBuilder::new(n, seed)
        .branching(8)
        .config(config)
        .wan(0.01)
        .publisher(PublisherSpec::global(PublisherProfile::slashdot(PublisherId(0))))
        .cats_per_subscriber(2)
        .build();
    d.sim.set_delta_accounting(true);
    d.settle(60);

    let stories = 8u32;
    let revs = 4u32;
    let mut items = Vec::new();
    let mut prev: Vec<Option<newsml::ItemId>> = vec![None; stories as usize];
    for rev in 0..revs {
        for story in 0..stories {
            let seq = u64::from(rev * stories + story);
            let item = NewsItem::builder(PublisherId(0), seq)
                .headline(format!("story {story} rev {rev}"))
                .slug(format!("wire-story-{story}"))
                .category(Category::Technology)
                .revision(rev, prev[story as usize])
                .body_len(6_000 + 120 * rev)
                .build();
            prev[story as usize] = Some(item.id);
            d.publish(
                SimTime::from_secs(60 + 20 * u64::from(rev) + u64::from(story)),
                item.clone(),
            );
            items.push(item);
        }
    }
    d.settle(100);
    let wall = start.elapsed().as_secs_f64();

    // Completeness over *final* revisions: older tellings are revision-fused
    // away, so holding the last revision is the meaningful endpoint.
    let (mut want, mut have) = (0u64, 0u64);
    for item in items.iter().filter(|i| i.revision == revs - 1) {
        for node in d.interested_nodes(item) {
            want += 1;
            have += u64::from(d.sim.node(node).has_item(item.id));
        }
    }
    let events = d.sim.events_processed();
    let (wire_bytes_total, wire_bytes_saved) = wire_totals(&d.sim);
    let full = wire_bytes_total + wire_bytes_saved;
    PerfResult {
        name: format!("wire_deltas_n{n}"),
        wall_s: wall,
        events,
        events_per_s: events as f64 / wall,
        peak_queue_depth: d.sim.peak_queue_depth(),
        peak_rss_mb: peak_rss_mb(),
        wire_bytes_total,
        wire_bytes_saved,
        detail: format!(
            "saved_pct={:.1} final_rev_pct={:.1}",
            100.0 * wire_bytes_saved as f64 / full.max(1) as f64,
            if want == 0 { 100.0 } else { 100.0 * have as f64 / want as f64 },
        ),
    }
}

/// A trivial ring forwarder: every message costs exactly one event, so this
/// measures the engine's raw event dispatch rate with no protocol work.
struct Ring {
    next: NodeId,
}
impl Node for Ring {
    type Msg = Vec<u8>;
    fn on_start(&mut self, _ctx: &mut Context<'_, Vec<u8>>) {}
    fn on_message(&mut self, ctx: &mut Context<'_, Vec<u8>>, _from: NodeId, mut m: Vec<u8>) {
        if m[0] > 0 {
            m[0] -= 1;
            ctx.send(self.next, m);
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, Vec<u8>>, _t: TimerId, _tag: u64) {}
}

/// Raw simnet event throughput: `tokens` messages circulate a 16-node ring
/// for 200 hops each (~201 events per token).
pub fn simnet_ring(tokens: u32, seed: u64) -> PerfResult {
    let mut sim = Simulation::new(NetworkModel::ideal(SimDuration::from_micros(10)), seed);
    for i in 0..16u32 {
        sim.add_node(Ring { next: NodeId((i + 1) % 16) });
    }
    for i in 0..tokens {
        sim.schedule_external(SimTime::from_micros(u64::from(i)), NodeId(i % 16), vec![200u8]);
    }
    let start = Instant::now();
    sim.run_to_quiescence(u64::MAX);
    let wall = start.elapsed().as_secs_f64();
    let events = sim.events_processed();
    let (wire_bytes_total, wire_bytes_saved) = wire_totals(&sim);
    PerfResult {
        name: format!("simnet_ring_{tokens}tok"),
        wall_s: wall,
        events,
        events_per_s: events as f64 / wall,
        peak_queue_depth: sim.peak_queue_depth(),
        peak_rss_mb: peak_rss_mb(),
        wire_bytes_total,
        wire_bytes_saved,
        detail: format!("events={events}"),
    }
}

/// Scenario selection for [`run_all`].
#[derive(Debug, Clone, Default)]
pub struct RunOpts {
    /// Small sizes only (CI smoke). The full suite is a superset, so every
    /// quick scenario name exists in a committed full baseline and CI deltas
    /// always find their counterpart.
    pub quick: bool,
    /// Also run the stretch sizes (n = 1M convergence) — minutes of wall
    /// clock; excluded from the committed baseline by default.
    pub slow: bool,
    /// Run only scenarios whose name contains this substring.
    pub only: Option<String>,
}

/// Runs the suite per `opts`.
pub fn run_all(opts: &RunOpts) -> Vec<PerfResult> {
    type Spec = (&'static str, Box<dyn FnOnce() -> PerfResult>);
    let mut specs: Vec<Spec> = Vec::new();
    specs.push(("astro_convergence_n1000_b16", Box::new(|| astro_convergence(1_000, 16, 0xA57))));
    if !opts.quick {
        specs.push((
            "astro_convergence_n10000_b16",
            Box::new(|| astro_convergence(10_000, 16, 0xA57)),
        ));
        specs.push((
            "astro_convergence_n100000_b16",
            Box::new(|| astro_convergence(100_000, 16, 0xA57)),
        ));
    }
    if opts.slow {
        specs.push((
            "astro_convergence_n1000000_b16",
            Box::new(|| astro_convergence(1_000_000, 16, 0xA57)),
        ));
    }
    specs.push(("newswire_chaos_n200", Box::new(|| newswire_chaos(200, 0xFA11))));
    if !opts.quick {
        specs.push(("newswire_chaos_n400", Box::new(|| newswire_chaos(400, 0xFA11))));
    }
    specs.push(("simnet_ring_500tok", Box::new(|| simnet_ring(500, 0x516))));
    if !opts.quick {
        specs.push(("simnet_ring_5000tok", Box::new(|| simnet_ring(5_000, 0x516))));
    }
    specs.push(("wire_deltas_n150", Box::new(|| wire_deltas(150, 0xDE17A))));
    if !opts.quick {
        specs.push(("wire_deltas_n300", Box::new(|| wire_deltas(300, 0xDE17A))));
    }

    eprintln!("perf suite ({}):", if opts.quick { "quick" } else { "full" });
    let mut out = Vec::new();
    for (name, run) in specs {
        if let Some(f) = &opts.only {
            if !name.contains(f.as_str()) {
                continue;
            }
        }
        let r = run();
        debug_assert_eq!(r.name, name, "spec label out of sync with scenario name");
        eprintln!(
            "  {:<32} {:>8.3}s  {:>12.0} ev/s  peak_q {:>8}  rss {:>6.0}MB  {}",
            r.name, r.wall_s, r.events_per_s, r.peak_queue_depth, r.peak_rss_mb, r.detail
        );
        out.push(r);
    }
    out
}

/// Serializes results as `BENCH.json`: one scenario object per line, so the
/// comparison (and any greps) stay line-oriented.
pub fn to_json(results: &[PerfResult], quick: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"version\": 1,\n  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_s\": {:.3}, \"events\": {}, \"events_per_s\": {:.0}, \"peak_queue_depth\": {}, \"peak_rss_mb\": {:.0}, \"wire_bytes_total\": {}, \"wire_bytes_saved\": {}, \"detail\": \"{}\"}}{}\n",
            r.name,
            r.wall_s,
            r.events,
            r.events_per_s,
            r.peak_queue_depth,
            r.peak_rss_mb,
            r.wire_bytes_total,
            r.wire_bytes_saved,
            r.detail,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Per-scenario wire-byte table: what crossed the simulated network, what
/// the delta protocol avoided sending, and the savings percentage. Printed
/// by the `perf` binary after every run (`--only wire --quick` gives just
/// the delta scenario); the perf CI job uploads it as an artifact.
pub fn wire_table(results: &[PerfResult]) -> String {
    let mut s = String::from("wire bytes by scenario:\n");
    s.push_str(&format!(
        "  {:<32} {:>14} {:>14} {:>7}\n",
        "scenario", "wire_bytes", "saved", "saved%"
    ));
    for r in results {
        let full = r.wire_bytes_total + r.wire_bytes_saved;
        let pct = 100.0 * r.wire_bytes_saved as f64 / full.max(1) as f64;
        s.push_str(&format!(
            "  {:<32} {:>14} {:>14} {:>6.1}%\n",
            r.name, r.wire_bytes_total, r.wire_bytes_saved, pct
        ));
    }
    s
}

/// Extracts `"key": <number>` from a one-scenario-per-line JSON line.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

/// Report-only comparison of freshly measured results against a committed
/// `BENCH.json` baseline. Never fails: machines differ, CI is noisy — the
/// delta is information, the committed baseline is the record.
pub fn compare(results: &[PerfResult], baseline: &str) -> String {
    // One record per scenario object, whether the baseline is the compact
    // one-line-per-scenario form or pretty-printed multi-line JSON (the
    // committed BENCH.json): flatten newlines, then cut at object ends so
    // every chunk holds at most one scenario's fields.
    let flat = baseline.replace('\n', " ");
    let records: Vec<&str> = flat.split('}').filter(|c| c.contains("\"name\"")).collect();
    let mut out = String::new();
    out.push_str("perf delta vs committed baseline (report only; >0% wall = slower):\n");
    for r in results {
        let base = records.iter().copied().find(|l| field_str(l, "name") == Some(r.name.as_str()));
        match base {
            Some(line) => {
                let bw = field_f64(line, "wall_s").unwrap_or(f64::NAN);
                let be = field_f64(line, "events_per_s").unwrap_or(f64::NAN);
                let dw = 100.0 * (r.wall_s - bw) / bw;
                let de = 100.0 * (r.events_per_s - be) / be;
                let bd = field_str(line, "detail").unwrap_or("?");
                let behavior = if bd == r.detail { "detail ok" } else { "DETAIL CHANGED" };
                out.push_str(&format!(
                    "  {:<32} wall {:>8.3}s vs {:>8.3}s ({:+.1}%)  ev/s {:+.1}%  [{}]\n",
                    r.name, r.wall_s, bw, dw, de, behavior
                ));
            }
            None => {
                out.push_str(&format!("  {:<32} (no baseline entry)\n", r.name));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_through_compare_fields() {
        let r = PerfResult {
            name: "x".into(),
            wall_s: 1.5,
            events: 100,
            events_per_s: 66.7,
            peak_queue_depth: 9,
            peak_rss_mb: 12.0,
            wire_bytes_total: 420,
            wire_bytes_saved: 80,
            detail: "converged_sim_s=12".into(),
        };
        let json = to_json(std::slice::from_ref(&r), true);
        let line = json.lines().find(|l| l.contains("\"name\"")).unwrap();
        assert_eq!(field_str(line, "name"), Some("x"));
        assert_eq!(field_f64(line, "wall_s"), Some(1.5));
        assert_eq!(field_f64(line, "peak_queue_depth"), Some(9.0));
        assert_eq!(field_str(line, "detail"), Some("converged_sim_s=12"));
        let report = compare(&[r], &json);
        assert!(report.contains("detail ok"), "{report}");
        assert!(report.contains("+0.0%"), "{report}");
    }

    #[test]
    fn compare_flags_behavior_change_and_missing_entries() {
        let a = PerfResult {
            name: "x".into(),
            wall_s: 1.0,
            events: 1,
            events_per_s: 1.0,
            peak_queue_depth: 1,
            peak_rss_mb: 1.0,
            wire_bytes_total: 10,
            wire_bytes_saved: 0,
            detail: "v=1".into(),
        };
        let mut b = a.clone();
        b.detail = "v=2".into();
        let baseline = to_json(&[a], true);
        let report = compare(&[b.clone()], &baseline);
        assert!(report.contains("DETAIL CHANGED"), "{report}");
        b.name = "y".into();
        let report = compare(&[b], &baseline);
        assert!(report.contains("no baseline entry"), "{report}");
    }

    #[test]
    fn compare_parses_pretty_printed_baselines() {
        let r = PerfResult {
            name: "astro".into(),
            wall_s: 2.0,
            events: 10,
            events_per_s: 5.0,
            peak_queue_depth: 3,
            peak_rss_mb: 2.0,
            wire_bytes_total: 10,
            wire_bytes_saved: 0,
            detail: "v=1".into(),
        };
        // The committed BENCH.json format: one field per line.
        let baseline = "{\n  \"version\": 1,\n  \"scenarios\": [\n    {\n      \
                        \"name\": \"astro\",\n      \"wall_s\": 1.0,\n      \
                        \"events\": 10,\n      \"events_per_s\": 10.0,\n      \
                        \"peak_queue_depth\": 3,\n      \"detail\": \"v=1\"\n    }\n  ]\n}\n";
        let report = compare(&[r], baseline);
        assert!(report.contains("+100.0%"), "{report}");
        assert!(report.contains("detail ok"), "{report}");
        assert!(!report.contains("NaN"), "{report}");
    }

    #[test]
    fn ring_scenario_is_deterministic_in_events() {
        let a = simnet_ring(8, 1);
        let b = simnet_ring(8, 1);
        assert_eq!(a.events, b.events);
        assert_eq!(a.detail, b.detail);
        assert_eq!(a.peak_queue_depth, b.peak_queue_depth);
        assert!(a.events >= 8 * 200);
    }
}
