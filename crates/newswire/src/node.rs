//! The NewsWire end-system node — "a single application that people can
//! download and use to insert themselves into the Collaborative Content
//! Delivery Network" (paper §8).
//!
//! One node composes: an Astrolabe [`Agent`] (membership, aggregation,
//! representative election), the forwarding component of §9 (queues,
//! duplicate suppression, redundancy), the end-system [`MessageCache`]
//! (revision fusion, repair, state transfer), subscription matching with
//! the §6 exact final test, and — when equipped with a
//! [`PublisherCredential`] — the restricted publisher application of §8
//! (authentication, flow control, scoped publishing).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use amcast::{
    route, zone_reps, Action, BaselineHint, CoverageWindow, FilterSpec, ForwardEvent, ForwardLog,
    ForwardingQueues, LogRecord, RangeSummary, SeqLog,
};
use astrolabe::{
    Agent, AttrValue, Certificate, GossipMsg, KeyId, Mib, MibBuilder, RotationRecord, Signature,
    Stamp, TableRows, TrustRegistry, ZoneId,
};
use filters::BitArray;
use newsml::{Category, ItemId, NewsItem, PublisherId};
use obs::{ctr, gauge, kind, series, Layer};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use simnet::{
    Context, CorruptionOp, LiarAction, LiarMode, Node, NodeId, PhiAccrualDetector, PhiConfig,
    RestartMode, SimDuration, SimTime, TimerId,
};

use crate::auth::{
    verify_bare_item, verify_epoch_attest, verify_item, EpochAttest, PublisherCredential,
};
use crate::cache::{CacheOutcome, MessageCache};
use crate::config::{NewsWireConfig, SubscriptionModel};
use crate::flow::TokenBucket;
use crate::persist;
use crate::subscription::{item_position_groups, Subscription};
use crate::wire::{msg_id_of, DeltaBasis, Envelope, NewsWireMsg, SignedItem};

/// Publisher-side state (present only on publisher nodes).
#[derive(Debug)]
pub struct PublisherState {
    /// The CA-issued credential.
    pub credential: PublisherCredential,
    bucket: TokenBucket,
    default_scope: ZoneId,
    /// Items accepted and disseminated.
    pub published: u64,
    /// Items refused by flow control.
    pub rate_limited: u64,
}

/// One successful delivery to the local application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// The delivered item.
    pub item: ItemId,
    /// Its dissemination id.
    pub msg_id: u64,
    /// Publisher issue time.
    pub published: SimTime,
    /// Local delivery time.
    pub delivered: SimTime,
    /// True when the item arrived through cache repair rather than the
    /// multicast tree.
    pub via_repair: bool,
}

/// Per-node counters for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Items delivered to the application (subscription matched).
    pub delivered: u64,
    /// Duplicate arrivals suppressed.
    pub duplicates: u64,
    /// Items that reached this leaf but failed the exact structural test —
    /// Bloom false-positive deliveries (§6's "final test").
    pub bloom_fp_deliveries: u64,
    /// Items that matched structurally but were rejected by the SQL
    /// predicate.
    pub predicate_filtered: u64,
    /// Forwards rejected for bad signatures/certificates/scopes.
    pub auth_rejects: u64,
    /// Publish requests refused (not a publisher here).
    pub publish_denied: u64,
    /// Items unroutable at this node.
    pub route_failures: u64,
    /// Repair requests answered.
    pub repairs_served: u64,
    /// Items shipped in repair replies.
    pub repair_items_sent: u64,
    /// Forward/Deliver messages transmitted.
    pub forwards_sent: u64,
    /// Peak forwarding-queue length.
    pub peak_queue: usize,
    /// `ForwardAck`s received for pending hand-offs.
    pub acks_received: u64,
    /// Hand-offs retransmitted to the same representative after a timeout.
    pub ack_retries: u64,
    /// Hand-offs failed over to an alternative representative.
    pub ack_failovers: u64,
    /// Hand-offs abandoned to anti-entropy after exhausting failovers.
    pub handoffs_abandoned: u64,
    /// Repair requests re-targeted at a new peer after a reply timeout.
    pub repair_retargets: u64,
    /// Hand-offs failed over early because the phi detector already
    /// suspected the representative (retries against it would be wasted).
    pub suspect_failovers: u64,
    /// Anti-entropy reconcile requests sent.
    pub reconcile_requests: u64,
    /// Items received through reconcile replies.
    pub reconcile_items_recv: u64,
    /// Reconcile requests answered (with at least one item).
    pub reconciles_served: u64,
    /// Items shipped in reconcile replies.
    pub reconcile_items_sent: u64,
    /// Payload bytes shipped in reconcile replies (repair-traffic cost).
    pub reconcile_bytes_sent: u64,
    /// Reconcile requests re-targeted after a reply timeout.
    pub reconcile_retargets: u64,
    /// Cold restarts survived (durable or amnesiac — not freezes).
    pub cold_restarts: u64,
    /// Cold-restart recoveries that reached the caught-up criterion (log
    /// hole-free and at the neighborhood high-water mark).
    pub recoveries_completed: u64,
    /// Items backfilled through repair/reconcile while recovering from a
    /// cold restart.
    pub recovery_backfill_items: u64,
    /// Bare items (repair/reconcile/restore paths) refused because their
    /// detached signature did not verify — forged or tampered content
    /// stopped at the admission funnel (DESIGN §12).
    pub forged_rejects: u64,
    /// Epoch adoptions refused because the claimed epoch exceeded the
    /// publisher's signed attestation.
    pub signed_epoch_refusals: u64,
    /// Peers quarantined after their misbehavior score crossed the
    /// threshold.
    pub peers_quarantined: u64,
    /// Admissions refused because the signing key-epoch was revoked by an
    /// adopted rotation record — any of the five admission paths (DESIGN
    /// §15). Distinct from `forged_rejects`: the signature *verifies*, the
    /// key is just no longer trusted.
    pub revoked_key_rejects: u64,
    /// Cached items retroactively purged because the key that signed them
    /// was revoked after their admission.
    pub retro_purged: u64,
    /// Unendorsed identities placed in the bounded probation set by Sybil
    /// admission control.
    pub probation_holds: u64,
}

/// Metadata key carrying the publisher's §8 dissemination predicate.
pub const DISSEMINATION_PREDICATE: &str = "ds$predicate";

/// Metadata key carrying the §8 zone scope of a scoped publish (the
/// [`ZoneId`] display form, e.g. `"/3"`). The envelope's scope confines
/// tree routing, but cache repair and anti-entropy reconciliation ship bare
/// items from caches — an out-of-zone node sees the scoped item's sequence
/// number as a log hole and pulls it. Stamping the scope under the
/// signature lets every delivery path re-check confinement.
pub const DISSEMINATION_SCOPE: &str = "ds$scope";

const GOSSIP_TIMER: u64 = 1;
const DRAIN_TIMER: u64 = 2;
const REPAIR_TIMER: u64 = 3;
const REPAIR_WAIT_TIMER: u64 = 4;
const RECONCILE_WAIT_TIMER: u64 = 5;
/// Timer tags at or above this carry a pending hand-off id in the low bits.
const ACK_TAG_BASE: u64 = 1 << 32;

/// Prefix of the gossip-row attributes carrying per-publisher article-log
/// digests (`sys$ae:<publisher>` → [`RangeSummary::encode`] output). The
/// digests ride on the rows Astrolabe already gossips — anti-entropy hole
/// detection costs no extra message types.
pub const AE_ATTR_PREFIX: &str = "sys$ae:";

/// Prefix of the gossip-row attributes carrying adopted trust-root
/// rotation records (`sys$rot:<publisher>` → [`RotationRecord::encode`]
/// output). Revocation propagates on the rows Astrolabe already gossips,
/// doubled by a rider on every outgoing gossip message (DESIGN §15).
pub const ROT_ATTR_PREFIX: &str = "sys$rot:";

/// Row attribute carrying a node's registry-endorsed join ticket — the CA
/// signature over its identity, hex-encoded. Consulted by Sybil admission
/// control when `admission` is on.
pub const JOIN_TICKET_ATTR: &str = "sys$jt";

/// Identity base used by the Sybil-flood adversary for fabricated member
/// rows; experiment verdicts scan honest tables for ids at or above this.
pub const SYBIL_ID_BASE: u32 = 0x5B11_0000;

/// Bound on the probation set tracking refused unendorsed identities.
const PROBATION_CAP: usize = 256;

/// Entries retained per per-publisher article log.
const ARTICLE_LOG_CAPACITY: usize = 8192;

/// Disk record keys (see `persist` for the formats). `incar` and `sub` are
/// written once and fsynced immediately; `state` is written write-behind on
/// gossip ticks and fsynced every [`STATE_FSYNC_TICKS`]th tick, so a crash
/// can lose the newest unsynced snapshots (the honest price of write-behind
/// durability — anti-entropy repairs the difference).
const DISK_KEY_INCAR: &str = "incar";
const DISK_KEY_SUB: &str = "sub";
const DISK_KEY_STATE: &str = "state";

/// Gossip ticks between fsyncs of the `state` record.
const STATE_FSYNC_TICKS: u64 = 4;

/// Gossip ticks between self-audit sweeps when defenses are on: scrub
/// structurally corrupt zone rows, re-derive the own subscription
/// advertisement from ground truth, and fence article logs back to the
/// neighbour-consensus epoch. Every few rounds rather than every round —
/// the audit is a full-table sweep plus a Bloom re-render.
const SELF_AUDIT_TICKS: u64 = 5;

/// Misbehavior weight of an unverifiable signature (envelope or bare item)
/// from a peer — the strongest evidence of lying, since honest relays never
/// alter signed bytes.
const MISBEHAVIOR_FORGED: u32 = 2;
/// Misbehavior weight of a reply claiming an epoch beyond the publisher's
/// signed attestation.
const MISBEHAVIOR_FENCE: u32 = 1;
/// Misbehavior weight of a digest contradiction: a peer whose gossiped
/// digest advertised coverage for our holes replies with an empty log.
const MISBEHAVIOR_CONTRADICTION: u32 = 1;

/// Most baseline hints a repair/reconcile request carries (16 bytes each):
/// enough to cover every live story line in the target configurations
/// without letting the request itself outgrow the reply it is optimizing.
const MAX_BASELINES: usize = 256;

/// One outstanding reconcile request awaiting its `ReconcileReply`.
#[derive(Debug)]
struct PendingReconcile {
    peer: NodeId,
    publisher: PublisherId,
    /// The inclusive ranges requested (settled against the reply summary).
    ranges: Vec<(u64, u64)>,
    timer: TimerId,
    retargets: u32,
    /// True when the peer was chosen because its *gossiped digest* vouched
    /// coverage for our holes (as opposed to a blind cross-zone ask) — an
    /// empty reply then contradicts the advertisement.
    via_digest: bool,
}

/// One unacknowledged tree hand-off awaiting its `ForwardAck`.
#[derive(Debug)]
struct PendingHandoff {
    env: Envelope,
    zone: ZoneId,
    rep: u32,
    /// Representatives already attempted (including `rep`).
    tried: Vec<u32>,
    /// Timeouts burned against the current representative.
    attempt: u32,
    /// Alternative representatives already consumed.
    failovers: u32,
    timer: TimerId,
}

/// A full NewsWire node.
#[derive(Debug)]
pub struct NewsWireNode {
    /// The embedded Astrolabe agent.
    pub agent: Agent,
    cfg: NewsWireConfig,
    registry: Arc<TrustRegistry>,
    /// This node's subscription.
    pub subscription: Subscription,
    publisher: Option<PublisherState>,
    /// The end-system message cache.
    pub cache: MessageCache,
    coverage: CoverageWindow,
    queues: ForwardingQueues<(NodeId, NewsWireMsg)>,
    draining: bool,
    /// Counters.
    pub stats: NodeStats,
    /// The §9 forwarding log ("each forwarding component maintains a log
    /// file"): a bounded trace of duties, forwards, deliveries and drops.
    pub log: ForwardLog,
    /// Application deliveries in order.
    pub deliveries: Vec<DeliveryRecord>,
    /// Constant added to the advertised forwarding load. Publisher nodes
    /// set this high so representative election routes around them —
    /// the paper's publishers input items but should not also carry the
    /// system's forwarding burden.
    pub load_bias: f64,
    /// In-flight acknowledged hand-offs, keyed by hand-off id.
    pending: HashMap<u64, PendingHandoff>,
    /// Hand-off ids pending per `(msg_id, zone)`: one ack settles them all.
    ack_index: HashMap<(u64, ZoneId), Vec<u64>>,
    next_handoff: u64,
    /// Outstanding repair request: `(peer, reply timer, retargets so far)`.
    awaiting_repair: Option<(NodeId, TimerId, u32)>,
    /// Per-publisher article logs: which sequence numbers this node has
    /// *seen* (delivered, cached, or deliberately filtered). Gaps are the
    /// holes anti-entropy reconciliation pulls.
    article_logs: BTreeMap<PublisherId, SeqLog<()>>,
    /// Phi-accrual detectors over peers this node has heard from; any
    /// message counts as a heartbeat. Replaces the fixed retry cliff in the
    /// ack layer: a suspect representative is failed over immediately.
    peer_health: HashMap<u32, PhiAccrualDetector>,
    /// Outstanding reconcile request, at most one in flight.
    awaiting_reconcile: Option<PendingReconcile>,
    /// Round-robin cursor over publishers for reconcile target selection.
    reconcile_cursor: usize,
    /// When a cold restart began, while its recovery is still in progress.
    recovering_since: Option<SimTime>,
    /// Items backfilled during the current recovery (for the done trace).
    backfill_this_recovery: u64,
    /// Gossip ticks since start/restart (drives the `state` fsync cadence).
    gossip_ticks: u64,
    /// Fingerprint of the last `state` snapshot written to disk; snapshots
    /// are skipped while the durable state has not moved.
    persisted_fingerprint: u64,
    /// Last observed simulated time (updated on every message and timer);
    /// what state-corruption strikes — which carry no clock — use to stamp
    /// fabricated cache inserts.
    clock: SimTime,
    /// Certificates of known publishers: pre-installed at deployment build
    /// (out-of-band trust distribution) and learned from verified
    /// envelopes. What lets the bare-item paths verify without an envelope.
    publisher_certs: HashMap<PublisherId, Certificate>,
    /// Detached `(key, signature)` per cached item, recorded at admission
    /// and served alongside bare items so receivers can verify in turn.
    item_sigs: HashMap<ItemId, (KeyId, Signature)>,
    /// Highest verified publisher-signed epoch attestation per publisher —
    /// the authority the epoch fence trusts over neighbor consensus.
    authority: HashMap<PublisherId, EpochAttest>,
    /// Per-peer misbehavior score (invalid signatures, refused-fence
    /// replies, digest contradictions). Crossing
    /// `cfg.quarantine_threshold` quarantines the peer from selection.
    misbehavior: HashMap<u32, u32>,
    /// Revoked `(publisher, key)` pairs from adopted rotation records —
    /// the fence every admission path consults *before* signature
    /// verification (a stolen key signs validly; DESIGN §15).
    revoked: HashSet<(PublisherId, KeyId)>,
    /// Highest rotation serial adopted per publisher: the freshness fence
    /// (an older record cannot un-revoke a newer one).
    rotation_serials: HashMap<PublisherId, u32>,
    /// Adopted rotation records, in deterministic publisher order for
    /// persistence and re-publication.
    rotations: BTreeMap<PublisherId, Arc<RotationRecord>>,
    /// The most recently adopted record, re-announced as a rider on every
    /// outgoing gossip message.
    rotation_rider: Option<Arc<RotationRecord>>,
    /// Trusted certificates per `(publisher, key)` beyond the primary —
    /// how a successor certificate learned from a verified envelope
    /// coexists with a not-yet-rotated primary, so honest relays of
    /// new-key items never take forgery strikes.
    alt_certs: HashMap<(PublisherId, KeyId), Certificate>,
    /// Pre-rotation primaries, retained for the `StolenKey` adversary arm
    /// (the attacker keeps the compromised key after the victim re-keys);
    /// never consulted by any admission path.
    retired_certs: HashMap<PublisherId, Certificate>,
    /// Unendorsed identities refused by Sybil admission control, bounded
    /// by [`PROBATION_CAP`]. Refused rows never enter the tables, so
    /// probationers cannot influence epoch consensus, representative
    /// election, or repair/reconcile peer selection.
    probation: BTreeSet<u32>,
    /// When this node last adopted a rotation record (simulated time).
    /// The oracle uses it to split forged deliveries into sanctioned
    /// exposure (before the revocation reached this node) and true
    /// violations (the fence was armed and failed anyway).
    pub rotation_adopted_at: Option<SimTime>,
}

impl NewsWireNode {
    /// Creates a subscriber node.
    pub fn new(mut agent: Agent, cfg: NewsWireConfig, registry: Arc<TrustRegistry>) -> Self {
        let strategy = cfg.strategy;
        let cache = MessageCache::new(cfg.cache);
        agent.set_ingest_validation(cfg.defenses);
        let mut node = NewsWireNode {
            agent,
            cfg,
            registry,
            subscription: Subscription::new(),
            publisher: None,
            cache,
            coverage: CoverageWindow::new(8192),
            queues: ForwardingQueues::new(strategy),
            draining: false,
            stats: NodeStats::default(),
            log: ForwardLog::default(),
            deliveries: Vec::new(),
            load_bias: 0.0,
            pending: HashMap::new(),
            ack_index: HashMap::new(),
            next_handoff: 0,
            awaiting_repair: None,
            article_logs: BTreeMap::new(),
            peer_health: HashMap::new(),
            awaiting_reconcile: None,
            reconcile_cursor: 0,
            recovering_since: None,
            backfill_this_recovery: 0,
            gossip_ticks: 0,
            persisted_fingerprint: 0,
            clock: SimTime::ZERO,
            publisher_certs: HashMap::new(),
            item_sigs: HashMap::new(),
            authority: HashMap::new(),
            misbehavior: HashMap::new(),
            revoked: HashSet::new(),
            rotation_serials: HashMap::new(),
            rotations: BTreeMap::new(),
            rotation_rider: None,
            alt_certs: HashMap::new(),
            retired_certs: HashMap::new(),
            probation: BTreeSet::new(),
            rotation_adopted_at: None,
        };
        node.publish_join_ticket();
        node
    }

    /// Publishes this node's registry-endorsed join ticket (`sys$jt`) into
    /// its own MIB row — the credential Sybil admission control demands of
    /// every leaf-zone member. The registry stands in for the CA: a real
    /// node obtained its endorsement at join time; fabricated identities
    /// have no ticket to show. No-op with admission off, keeping legacy
    /// rows (and wire bytes) unchanged.
    fn publish_join_ticket(&mut self) {
        if !self.cfg.admission {
            return;
        }
        let ticket = self.registry.endorse_join(self.agent.id());
        self.agent.set_local_attr(JOIN_TICKET_ATTR, format!("{:016x}", ticket.0));
    }

    /// Equips the node as a publisher (the §8 producer application).
    /// `rate_per_min`/`burst` configure flow control; `default_scope` is
    /// used when a publish request names no scope.
    #[must_use]
    pub fn with_publisher(
        mut self,
        credential: PublisherCredential,
        default_scope: ZoneId,
        rate_per_min: u32,
        burst: u32,
    ) -> Self {
        // A publisher trusts itself: its own certificate and a fresh
        // epoch-0 attestation anchor the signed-authority maps.
        self.install_publisher_authority(
            credential.certificate.clone(),
            credential.attest_epoch(0),
        );
        self.publisher = Some(PublisherState {
            credential,
            bucket: TokenBucket::new(rate_per_min, burst),
            default_scope,
            published: 0,
            rate_limited: 0,
        });
        self
    }

    /// Pre-installs a publisher's certificate and signed epoch attestation
    /// — the out-of-band trust distribution a real deployment performs
    /// through its software package or directory service. With these in
    /// place every bare-item admission can verify from the first message
    /// and the epoch fence has signed authority from the start.
    pub fn install_publisher_authority(&mut self, certificate: Certificate, attest: EpochAttest) {
        self.publisher_certs.insert(attest.publisher, certificate);
        self.absorb_attest(&attest);
    }

    /// Verifies and adopts a publisher-signed epoch attestation when it is
    /// newer than the one held. Only a certificate already trusted for the
    /// attesting publisher anchors the check — an attacker cannot smuggle
    /// authority by pairing a fabricated attestation with its own (valid)
    /// certificate for a different publisher id.
    fn absorb_attest(&mut self, attest: &EpochAttest) {
        // Admission path 5: an attestation signed by a revoked key-epoch
        // carries no authority, however valid the signature (a compromised
        // key attests bogus epochs that verify).
        if self.cfg.defenses && self.key_revoked(attest.publisher, attest.key) {
            self.note_revoked_reject(5, attest.publisher);
            return;
        }
        if self.authority.get(&attest.publisher).is_some_and(|held| held.epoch >= attest.epoch) {
            return;
        }
        let Some(cert) = self.publisher_certs.get(&attest.publisher) else { return };
        if verify_epoch_attest(&self.registry, cert, attest) {
            self.authority.insert(attest.publisher, *attest);
        }
    }

    /// The publisher-signed authority epoch, when an attestation is held.
    fn authority_epoch(&self, publisher: PublisherId) -> Option<u32> {
        self.authority.get(&publisher).map(|a| a.epoch)
    }

    /// True when `key` for `publisher` has been revoked by an adopted
    /// rotation record. Every admission path checks this *before*
    /// signature verification — a compromised key signs validly, so the
    /// registry check alone cannot refuse it.
    fn key_revoked(&self, publisher: PublisherId, key: KeyId) -> bool {
        self.revoked.contains(&(publisher, key))
    }

    /// Accounts a revoked-key rejection on admission `path` (1 envelopes,
    /// 2 repair replies, 3 reconcile replies, 4 disk restore, 5 epoch
    /// attestations). Deliberately no misbehavior strike: honest peers
    /// keep relaying items they admitted before the revocation reached
    /// them, and striking them would quarantine the honest majority.
    fn note_revoked_reject(&mut self, path: u64, publisher: PublisherId) {
        self.stats.revoked_key_rejects += 1;
        obs::metric_add!(self.agent.id(), ctr::NW_REVOKED_KEY_REJECTS, 1);
        obs::trace_event!(
            self.agent.id(),
            Layer::News,
            kind::REVOKED_KEY_REJECT,
            path,
            u64::from(publisher.0)
        );
    }

    /// Admission path 1 (tree envelopes, `Forward` and `Deliver`): true
    /// when the envelope's signing key is revoked and the envelope must be
    /// dropped before verification — a revoked key-epoch signs *validly*.
    /// Takes no misbehavior strike: the relay may be honest but behind on
    /// the rotation.
    fn envelope_fenced(&mut self, env: &Envelope) -> bool {
        if self.cfg.defenses && self.key_revoked(env.item.id.publisher, env.key) {
            self.note_revoked_reject(1, env.item.id.publisher);
            return true;
        }
        false
    }

    /// The trusted certificate for `(publisher, key)`: the primary when
    /// its key matches, otherwise an alternate learned from a verified
    /// envelope (e.g. the rotation successor before this node adopts the
    /// record).
    fn cert_for(&self, publisher: PublisherId, key: KeyId) -> Option<&Certificate> {
        match self.publisher_certs.get(&publisher) {
            Some(cert) if cert.key == key => Some(cert),
            _ => self.alt_certs.get(&(publisher, key)),
        }
    }

    /// Verifies and adopts a trust-root rotation record (DESIGN §15).
    /// Serial-fenced — an older record cannot un-revoke a newer one — and
    /// registry-verified end to end (CA signature over the record plus the
    /// successor certificate's own chain). On adoption: the revoked key
    /// joins the fence set, the successor becomes the primary certificate
    /// (the old primary retires), any held epoch attestation signed by the
    /// revoked key is dropped, cached items admitted under the revoked key
    /// are retroactively purged, and the record is re-published for
    /// epidemic propagation (a `sys$rot:` row attribute plus the gossip
    /// rider). Returns whether the record was adopted.
    fn adopt_rotation(&mut self, record: &RotationRecord) -> bool {
        if !self.cfg.defenses {
            return false;
        }
        let Some(publisher) = record
            .successor
            .claim("publisher")
            .and_then(|v| v.parse::<u16>().ok())
            .map(PublisherId)
        else {
            return false;
        };
        if self.rotation_serials.get(&publisher).is_some_and(|&held| record.serial <= held) {
            return false;
        }
        if !self.registry.verify_rotation(record) {
            return false;
        }
        self.rotation_serials.insert(publisher, record.serial);
        self.revoked.insert((publisher, record.revoked));
        self.alt_certs.remove(&(publisher, record.revoked));
        if let Some(primary) = self.publisher_certs.get(&publisher) {
            if primary.key == record.revoked {
                self.retired_certs.insert(publisher, primary.clone());
            }
        }
        self.publisher_certs.insert(publisher, record.successor.clone());
        if self.authority.get(&publisher).is_some_and(|a| a.key == record.revoked) {
            self.authority.remove(&publisher);
        }
        // Retroactive purge: items admitted under the key before its
        // revocation horizon are unverifiable history and must not be
        // served onward. Deliveries already made and the seen-log stay —
        // the oracle accounts the exposure window separately.
        let victims: Vec<ItemId> = self
            .item_sigs
            .iter()
            .filter(|&(id, &(key, _))| id.publisher == publisher && key == record.revoked)
            .map(|(&id, _)| id)
            .collect();
        let mut purged = 0u64;
        for id in victims {
            self.item_sigs.remove(&id);
            if self.cache.purge(id) {
                purged += 1;
            }
        }
        if purged > 0 {
            self.stats.retro_purged += purged;
            obs::metric_add!(self.agent.id(), ctr::NW_RETRO_PURGED_ITEMS, purged);
            obs::trace_event!(
                self.agent.id(),
                Layer::News,
                kind::RETRO_PURGE,
                u64::from(publisher.0),
                purged
            );
        }
        obs::metric_add!(self.agent.id(), ctr::CERT_REVOCATIONS_SEEN, 1);
        obs::trace_event!(
            self.agent.id(),
            Layer::News,
            kind::CERT_REVOKED,
            u64::from(publisher.0),
            u64::from(record.serial)
        );
        let record = Arc::new(record.clone());
        self.agent.set_local_attr(&format!("{ROT_ATTR_PREFIX}{}", publisher.0), record.encode());
        self.rotations.insert(publisher, Arc::clone(&record));
        self.rotation_rider = Some(record);
        self.rotation_adopted_at = Some(self.clock);
        true
    }

    /// Scans an incoming gossip exchange for `sys$rot:` row attributes and
    /// adopts any record that verifies — epidemic revocation propagation
    /// on the rows Astrolabe already gossips, at no extra message cost.
    fn scan_rotations(&mut self, g: &GossipMsg) {
        if !self.cfg.defenses {
            return;
        }
        let batches = match g {
            GossipMsg::DigestReply { rows, .. } | GossipMsg::Rows { rows } => rows,
            GossipMsg::Digest { .. } => return,
        };
        let mut found: Vec<RotationRecord> = Vec::new();
        for batch in batches {
            for (_, row) in &batch.rows {
                for (name, value) in row.attrs() {
                    if name.starts_with(ROT_ATTR_PREFIX) {
                        if let Some(rec) = value.as_str().and_then(RotationRecord::decode) {
                            found.push(rec);
                        }
                    }
                }
            }
        }
        for rec in found {
            self.adopt_rotation(&rec);
        }
    }

    /// Wraps an outgoing Astrolabe exchange with the rotation rider.
    fn gossip_msg(&self, g: GossipMsg) -> NewsWireMsg {
        NewsWireMsg::Gossip { g, rot: self.rotation_rider.clone() }
    }

    /// Sybil admission control (DESIGN §15), applied to incoming gossip
    /// *before* the embedded agent merges it: leaf-zone member rows must
    /// carry a registry-endorsed join ticket, and previously unseen
    /// identities are refused outright once the zone is at quota. Only
    /// this node's own leaf zone is filtered — higher-level rows are
    /// aggregates, not identities — and the single choke point protects
    /// everything downstream that reads the leaf table: epoch consensus,
    /// representative election, and repair/reconcile peer selection.
    fn filter_sybil_rows(&mut self, g: &mut GossipMsg) {
        if !self.cfg.admission {
            return;
        }
        let batches = match g {
            GossipMsg::DigestReply { rows, .. } | GossipMsg::Rows { rows } => rows,
            GossipMsg::Digest { .. } => return,
        };
        let leaf = self.agent.chain()[0].clone();
        let own_id = self.agent.id();
        let known: HashSet<u32> = self
            .agent
            .table(0)
            .iter()
            .filter_map(|(_, row)| row.get("id").and_then(|v| v.as_i64()))
            .filter_map(|v| u32::try_from(v).ok())
            .collect();
        let quota = self.cfg.zone_quota;
        let mut members = known.len();
        let mut refused: Vec<u32> = Vec::new();
        let registry = &self.registry;
        for batch in batches.iter_mut() {
            if batch.zone != leaf {
                continue;
            }
            batch.rows.retain(|(_, row)| {
                let Some(id) =
                    row.get("id").and_then(|v| v.as_i64()).and_then(|v| u32::try_from(v).ok())
                else {
                    // Structurally invalid rows are the ingest validator's
                    // problem, not admission control's.
                    return true;
                };
                if id == own_id {
                    return true;
                }
                let endorsed = row
                    .get(JOIN_TICKET_ATTR)
                    .and_then(|v| v.as_str())
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .is_some_and(|sig| registry.verify_join(id, Signature(sig)));
                if !endorsed {
                    refused.push(id);
                    return false;
                }
                if !known.contains(&id) {
                    if members >= quota {
                        refused.push(id);
                        return false;
                    }
                    members += 1;
                }
                true
            });
        }
        for id in refused {
            obs::metric_add!(self.agent.id(), ctr::SYBIL_JOINS_REFUSED, 1);
            if self.probation.len() < PROBATION_CAP && self.probation.insert(id) {
                self.stats.probation_holds += 1;
                obs::metric_add!(self.agent.id(), ctr::NW_PROBATION_HOLDS, 1);
                obs::trace_event!(
                    self.agent.id(),
                    Layer::News,
                    kind::PROBATION_HOLD,
                    u64::from(id),
                    self.probation.len() as u64
                );
            }
        }
    }

    /// True when `peer` currently holds a leaf-table row carrying a valid
    /// registry-endorsed join ticket. Vacuously true with admission off.
    fn peer_endorsed(&self, peer: u32) -> bool {
        if !self.cfg.admission {
            return true;
        }
        self.agent.table(0).iter().any(|(_, row)| {
            row.get("id").and_then(|v| v.as_i64()).and_then(|v| u32::try_from(v).ok()) == Some(peer)
                && row
                    .get(JOIN_TICKET_ATTR)
                    .and_then(|v| v.as_str())
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .is_some_and(|sig| self.registry.verify_join(peer, Signature(sig)))
        })
    }

    /// Publisher-side state, when this node is a publisher.
    pub fn publisher(&self) -> Option<&PublisherState> {
        self.publisher.as_ref()
    }

    /// Installs the subscription and publishes the matching summary
    /// attributes into the node's MIB row (`subs` Bloom bits, or one
    /// `cats$p` mask per subscribed publisher).
    pub fn set_subscription(&mut self, sub: Subscription) {
        match self.cfg.model {
            SubscriptionModel::Bloom { bits, hashes } => {
                self.agent.set_local_attr("subs", sub.to_bloom(bits, hashes));
            }
            SubscriptionModel::CategoryMask => {
                for (publisher, _) in &sub.publishers {
                    let attr = self.cfg.model.attr_for(*publisher);
                    self.agent.set_local_attr(&attr, sub.mask_for(*publisher).0 as i64);
                }
            }
        }
        // The summary attrs just installed propagate upward through gossip
        // from the next round on.
        obs::trace_event!(self.agent.id(), Layer::News, kind::SUB_PROPAGATE);
        self.subscription = sub;
    }

    /// True when the item with `id` has been delivered to the application.
    pub fn has_item(&self, id: ItemId) -> bool {
        self.deliveries.iter().any(|d| d.item == id)
    }

    /// Snapshot of the servable article state: every cached item paired
    /// with the key and signature vouching for it, sorted by id. Two nodes
    /// with equal snapshots serve byte-identical content onward — the
    /// comparison surface for the post-revocation equivalence test
    /// (`tests/revocation.rs`): after a retroactive purge, nothing signed
    /// by the revoked key may remain servable, compromised run or not.
    pub fn served_articles(&self) -> Vec<(ItemId, u64, u64)> {
        let mut out: Vec<(ItemId, u64, u64)> = self
            .item_sigs
            .iter()
            .filter(|(id, _)| self.cache.contains(**id))
            .map(|(&id, &(key, sig))| (id, key.0, sig.0))
            .collect();
        out.sort_unstable();
        out
    }

    /// The per-publisher article log, when anything from `publisher` has
    /// been seen.
    pub fn article_log(&self, publisher: PublisherId) -> Option<&SeqLog<()>> {
        self.article_logs.get(&publisher)
    }

    /// Publishers with a non-empty article log, in id order.
    pub fn logged_publishers(&self) -> impl Iterator<Item = PublisherId> + '_ {
        self.article_logs.keys().copied()
    }

    /// Records that `id` has been seen (whatever the cache then decided).
    fn log_seen(&mut self, id: ItemId) {
        self.article_logs
            .entry(id.publisher)
            .or_insert_with(|| SeqLog::new(ARTICLE_LOG_CAPACITY))
            .insert(id.seq, ());
    }

    /// Phi tuning shared with the embedded Astrolabe agent: window and
    /// threshold from configuration, cadence floors from the gossip period
    /// (every live peer talks at least that often).
    fn phi_config(&self) -> PhiConfig {
        let gossip = self.agent.config().gossip_interval;
        PhiConfig {
            window: self.agent.config().phi_window,
            threshold: self.agent.config().phi_threshold,
            first_interval: gossip.checked_mul(2).unwrap_or(gossip),
            min_stddev: gossip,
        }
    }

    /// Any message from `from` is a heartbeat for its phi detector.
    fn note_alive(&mut self, from: NodeId, now: SimTime) {
        if from == NodeId::EXTERNAL {
            return;
        }
        let config = self.phi_config();
        self.peer_health
            .entry(from.0)
            .or_insert_with(|| PhiAccrualDetector::new(config))
            .heartbeat(now);
    }

    /// True when the phi detector suspects `peer` — or the misbehavior
    /// score has quarantined it. Folding quarantine in here covers every
    /// selection path at once (repair peers, cross-zone peers, ack
    /// failovers, reconcile sources). Unobserved peers are unknown, not
    /// suspect.
    fn peer_suspect(&self, peer: u32, now: SimTime) -> bool {
        self.quarantined(peer) || self.peer_health.get(&peer).is_some_and(|d| d.is_suspect(now))
    }

    /// True when `peer`'s misbehavior score has crossed the quarantine
    /// threshold (defenses on only).
    fn quarantined(&self, peer: u32) -> bool {
        self.cfg.defenses
            && self.misbehavior.get(&peer).is_some_and(|&s| s >= self.cfg.quarantine_threshold)
    }

    /// Records a misbehavior strike against `peer`, tracing the quarantine
    /// transition when the score crosses the threshold. Unlike phi
    /// suspicion — which is about *silence* and decays as soon as the peer
    /// talks again — misbehavior is about *lying* and only clears when the
    /// peer restarts into a new incarnation.
    fn note_misbehavior(&mut self, peer: NodeId, weight: u32) {
        if peer == NodeId::EXTERNAL || !self.cfg.defenses {
            return;
        }
        let threshold = self.cfg.quarantine_threshold;
        let score = self.misbehavior.entry(peer.0).or_insert(0);
        let before = *score;
        *score = score.saturating_add(weight);
        if before < threshold && *score >= threshold {
            let after = u64::from(*score);
            self.stats.peers_quarantined += 1;
            obs::metric_add!(self.agent.id(), ctr::NW_QUARANTINES, 1);
            obs::trace_event!(
                self.agent.id(),
                Layer::News,
                kind::PEER_QUARANTINE,
                u64::from(peer.0),
                after
            );
        }
    }

    /// Drops phi-suspect entries from a candidate list — unless that would
    /// empty it (a suspect peer beats no peer at all).
    fn prefer_unsuspected(&self, candidates: &mut Vec<u32>, now: SimTime) {
        if candidates.iter().any(|&c| !self.peer_suspect(c, now)) {
            candidates.retain(|&c| !self.peer_suspect(c, now));
        }
    }

    /// The per-hop filter for an item under this deployment's model.
    fn filter_for(&self, item: &NewsItem) -> FilterSpec {
        match self.cfg.model {
            SubscriptionModel::Bloom { bits, hashes } => FilterSpec::BloomAny {
                attr: "subs".to_owned(),
                groups: item_position_groups(item, bits, hashes),
            },
            SubscriptionModel::CategoryMask => FilterSpec::MaskBits {
                attr: self.cfg.model.attr_for(item.id.publisher),
                mask: item.categories.iter().fold(0u64, |m, c| m | 1 << c.bit()),
            },
        }
    }

    /// Evaluates the item's embedded dissemination controls — the §8 zone
    /// scope and predicate, if any — against this node's own position and
    /// attributes. Fail-closed.
    fn dissemination_admits(&self, item: &NewsItem) -> bool {
        if let Some(src) = item.field(DISSEMINATION_SCOPE) {
            let in_scope = ZoneId::parse(&src)
                .is_some_and(|scope| scope.is_ancestor_of(&self.agent.chain()[0]));
            if !in_scope {
                return false;
            }
        }
        let Some(src) = item.field(DISSEMINATION_PREDICATE) else { return true };
        struct LocalAttrs<'a>(&'a Agent);
        impl astrolabe::RowSource for LocalAttrs<'_> {
            fn col(&self, name: &str) -> Option<std::borrow::Cow<'_, astrolabe::AttrValue>> {
                self.0.local_attr(name).map(std::borrow::Cow::Borrowed)
            }
        }
        match astrolabe::parse_predicate(&src) {
            Ok(expr) => astrolabe::eval_predicate(&expr, &LocalAttrs(&self.agent)).unwrap_or(false),
            Err(_) => false,
        }
    }

    fn handle_delivery(&mut self, now: SimTime, item: NewsItem, via_repair: bool) {
        // Every arrival is *seen* — duplicates, obsolete revisions and
        // predicate-filtered items included. The log tracks knowledge, not
        // acceptance: a seen seq is never a hole to reconcile.
        self.log_seen(item.id);
        if !self.dissemination_admits(&item) {
            // Not addressed to this node (e.g. premium-only content on a
            // free node); neither delivered nor cached.
            self.stats.predicate_filtered += 1;
            obs::metric_add!(self.agent.id(), ctr::NW_PREDICATE_FILTERED, 1);
            return;
        }
        let id = item.id;
        let msg_id = msg_id_of(id);
        let published = SimTime::from_micros(item.issued_us);
        let interested = self.subscription.interested_in(&item);
        let matches = self.subscription.matches(&item);
        match self.cache.insert(item, now) {
            CacheOutcome::Duplicate => {
                self.stats.duplicates += 1;
                obs::metric_add!(self.agent.id(), ctr::NW_DUPLICATES, 1);
                return;
            }
            CacheOutcome::Obsolete => return,
            CacheOutcome::Stored | CacheOutcome::Fused => {}
        }
        if via_repair && self.recovering_since.is_some() {
            self.stats.recovery_backfill_items += 1;
            self.backfill_this_recovery += 1;
            obs::metric_add!(self.agent.id(), ctr::NW_BACKFILL_ITEMS, 1);
        }
        if matches {
            self.stats.delivered += 1;
            let latency_us = now.as_micros().saturating_sub(published.as_micros());
            obs::metric_add!(self.agent.id(), ctr::NW_DELIVERED, 1);
            if via_repair {
                obs::metric_add!(self.agent.id(), ctr::NW_DELIVERED_REPAIR, 1);
            }
            obs::series_record!(self.agent.id(), series::DELIVERY_LATENCY_US, latency_us);
            obs::trace_event!(self.agent.id(), Layer::News, kind::NW_DELIVER, msg_id, latency_us);
            self.deliveries.push(DeliveryRecord {
                item: id,
                msg_id,
                published,
                delivered: now,
                via_repair,
            });
        } else if !interested {
            if !via_repair {
                // Reached this leaf only because of Bloom aliasing; the
                // exact final test of §6 rejects it.
                self.stats.bloom_fp_deliveries += 1;
                obs::metric_add!(self.agent.id(), ctr::NW_BLOOM_FP, 1);
            }
        } else {
            self.stats.predicate_filtered += 1;
            obs::metric_add!(self.agent.id(), ctr::NW_PREDICATE_FILTERED, 1);
        }
    }

    fn enqueue(&mut self, ctx: &mut Context<'_, NewsWireMsg>, dst: NodeId, msg: NewsWireMsg) {
        let (child, priority) = match &msg {
            NewsWireMsg::Forward { zone, env } => {
                (zone.label().unwrap_or(0), env.item.urgency.level())
            }
            NewsWireMsg::Deliver { env } => ((dst.0 % 64) as u16, env.item.urgency.level()),
            _ => (0, 5),
        };
        self.queues.push(child, ctx.now().as_micros(), priority, (dst, msg));
        self.stats.peak_queue = self.stats.peak_queue.max(self.queues.len());
        obs::gauge_max!(self.agent.id(), gauge::NW_PEAK_QUEUE, self.queues.len());
        if !self.draining {
            self.draining = true;
            ctx.set_timer(self.cfg.service_interval, DRAIN_TIMER);
        }
    }

    fn process_duty(&mut self, ctx: &mut Context<'_, NewsWireMsg>, env: Envelope, zone: ZoneId) {
        let actions = route(&self.agent, &env.filter, &zone, self.cfg.redundancy, ctx.rng());
        let now = ctx.now();
        if actions.is_empty() && self.agent.level_of(&zone).is_none() {
            // Not on our path and no relay representative known yet.
            self.stats.route_failures += 1;
            obs::metric_add!(self.agent.id(), ctr::NW_ROUTE_FAILURES, 1);
            self.log.record(LogRecord {
                at_us: now.as_micros(),
                msg_id: env.msg_id,
                zone,
                peer: None,
                event: ForwardEvent::Unroutable,
            });
            return;
        }
        self.log.record(LogRecord {
            at_us: now.as_micros(),
            msg_id: env.msg_id,
            zone: zone.clone(),
            peer: None,
            event: ForwardEvent::AcceptedDuty,
        });
        for action in actions {
            match action {
                Action::DeliverLocal => {
                    self.delta_makeup(&env.item, env.basis.as_ref());
                    self.handle_delivery(now, env.item.clone(), false)
                }
                Action::Deliver { member } => {
                    self.log.record(LogRecord {
                        at_us: now.as_micros(),
                        msg_id: env.msg_id,
                        zone: zone.clone(),
                        peer: Some(member),
                        event: ForwardEvent::Delivered,
                    });
                    self.enqueue(ctx, NodeId(member), NewsWireMsg::Deliver { env: env.clone() });
                }
                Action::Forward { rep, zone } => {
                    self.log.record(LogRecord {
                        at_us: now.as_micros(),
                        msg_id: env.msg_id,
                        zone: zone.clone(),
                        peer: Some(rep),
                        event: ForwardEvent::Forwarded,
                    });
                    self.enqueue(ctx, NodeId(rep), NewsWireMsg::Forward { env: env.clone(), zone });
                }
            }
        }
    }

    fn handle_publish(
        &mut self,
        ctx: &mut Context<'_, NewsWireMsg>,
        mut item: NewsItem,
        scope: Option<ZoneId>,
        predicate: Option<String>,
    ) {
        let now = ctx.now();
        // Parse the §8 dissemination predicate up front; a malformed one
        // rejects the publish rather than flooding the tree unfiltered.
        let predicate_filter = match predicate.as_deref().map(astrolabe::parse_predicate) {
            None => None,
            Some(Ok(expr)) => Some(FilterSpec::Predicate { expr }),
            Some(Err(_)) => {
                self.stats.publish_denied += 1;
                obs::metric_add!(self.agent.id(), ctr::NW_PUBLISH_DENIED, 1);
                return;
            }
        };
        // The publisher's current log epoch, attested under its key on
        // every envelope it emits (DESIGN §12).
        let attest_epoch = self.article_logs.get(&item.id.publisher).map_or(0, |l| l.epoch());
        let Some(publisher) = &mut self.publisher else {
            self.stats.publish_denied += 1;
            obs::metric_add!(self.agent.id(), ctr::NW_PUBLISH_DENIED, 1);
            return;
        };
        if publisher.credential.publisher() != item.id.publisher {
            self.stats.publish_denied += 1;
            obs::metric_add!(self.agent.id(), ctr::NW_PUBLISH_DENIED, 1);
            return;
        }
        if !publisher.bucket.admit(now) {
            publisher.rate_limited += 1;
            return;
        }
        publisher.published += 1;
        item.issued_us = now.as_micros();
        if let Some(src) = &predicate {
            // The predicate travels as item metadata (§8: "adding a
            // predicate to the metadata"), so leaves — and the repair path —
            // can re-check it against their own attributes.
            item.meta.push((DISSEMINATION_PREDICATE.to_owned(), src.clone()));
        }
        let scope = scope.unwrap_or_else(|| publisher.default_scope.clone());
        if !scope.is_root() {
            // The scope travels the same way, so the repair/reconcile paths
            // (which ship bare items, not envelopes) stay zone-confined.
            item.meta.push((DISSEMINATION_SCOPE.to_owned(), scope.to_string()));
        }
        let signature = publisher.credential.sign(&item);
        let key = publisher.credential.key_id();
        let certificate = publisher.credential.certificate.clone();
        let attest = publisher.credential.attest_epoch(attest_epoch);
        let mut filter = self.filter_for(&item);
        if let Some(p) = predicate_filter {
            filter = filter.and(p);
        }
        // Delta-encode a revised story against the revision this publisher
        // disseminated before (still in its own cache — inserted below,
        // *after* this lookup): every subscriber that received the earlier
        // telling decodes from what it holds.
        let basis = if self.cfg.deltas && item.revision > 0 {
            self.cache
                .latest_for_slug(item.id.publisher, &item.slug)
                .map(|prev| (prev.revision, prev.body_len))
                .and_then(|(rev, len)| self.price_basis(&item, rev, len))
        } else {
            None
        };
        let env = Envelope {
            msg_id: msg_id_of(item.id),
            filter,
            item,
            scope: scope.clone(),
            certificate,
            key,
            signature,
            attest,
            basis,
        };
        obs::metric_add!(self.agent.id(), ctr::NW_PUBLISHED, 1);
        obs::trace_event!(self.agent.id(), Layer::News, kind::NW_PUBLISH, env.msg_id);
        self.coverage.admit(env.msg_id, scope.depth());
        // The publisher caches and logs its own output (direct insert — this
        // is not a delivery, so no delivery/FP accounting): after a
        // partition, side A's publishers are authoritative reconcile sources
        // for everything the other side missed.
        self.log_seen(env.item.id);
        self.item_sigs.insert(env.item.id, (key, signature));
        self.absorb_attest(&attest);
        self.cache.insert(env.item.clone(), now);
        self.process_duty(ctx, env, scope);
    }

    fn verify(&self, env: &Envelope) -> bool {
        !self.cfg.verify_signatures
            || verify_item(
                &self.registry,
                &env.certificate,
                &env.item,
                &env.scope,
                env.key,
                env.signature,
            )
    }

    /// After a verified envelope: remember the publisher's certificate (so
    /// later bare items can verify), the item's detached signature (so this
    /// node can serve the item onward with proof), and the envelope's
    /// signed epoch attestation when it is newer than the one held.
    fn learn_from_envelope(&mut self, env: &Envelope) {
        let publisher = env.item.id.publisher;
        match self.publisher_certs.get(&publisher) {
            None => {
                self.publisher_certs.insert(publisher, env.certificate.clone());
            }
            Some(held) if held.key != env.certificate.key => {
                // A verified envelope under a key other than the held
                // primary — e.g. the rotation successor reaching this node
                // before the rotation record does. Trust it as an
                // alternate so bare items under the new key verify without
                // forgery strikes against honest relays.
                self.alt_certs
                    .entry((publisher, env.certificate.key))
                    .or_insert_with(|| env.certificate.clone());
            }
            Some(_) => {}
        }
        self.item_sigs.insert(env.item.id, (env.key, env.signature));
        self.absorb_attest(&env.attest);
    }

    /// True when `item`'s detached signature verifies against the known
    /// certificate for its publisher (false when no certificate is known —
    /// fail closed: defended nodes are deployed with the certificates).
    fn bare_item_ok(&self, item: &NewsItem, key: KeyId, sig: Signature) -> bool {
        self.cert_for(item.id.publisher, key)
            .is_some_and(|cert| verify_bare_item(&self.registry, cert, item, key, sig))
    }

    /// The single admission funnel for bare items arriving off the network
    /// — repair replies (`path` 2) and reconcile replies (`path` 3);
    /// envelopes (1) verify in `on_message` and stable-storage restores (4)
    /// in `restore_cached_items`. With defenses on, an item whose detached
    /// signature does not verify is refused before it touches the log or
    /// cache, and the sender takes a misbehavior strike.
    fn admit_bare_item(
        &mut self,
        now: SimTime,
        item: NewsItem,
        key: KeyId,
        sig: Signature,
        from: NodeId,
        path: u64,
    ) {
        // Revoked key-epoch first (paths 2 and 3): the signature would
        // *verify* — the key is just no longer trusted — so this fence
        // must come before the forgery check, and without a strike.
        if self.cfg.defenses && self.key_revoked(item.id.publisher, key) {
            self.note_revoked_reject(path, item.id.publisher);
            return;
        }
        if self.cfg.defenses && self.cfg.verify_signatures && !self.bare_item_ok(&item, key, sig) {
            self.stats.forged_rejects += 1;
            obs::metric_add!(self.agent.id(), ctr::NW_FORGED_REJECTS, 1);
            obs::trace_event!(
                self.agent.id(),
                Layer::News,
                kind::FORGED_REJECT,
                path,
                u64::from(item.id.publisher.0)
            );
            self.note_misbehavior(from, MISBEHAVIOR_FORGED);
            return;
        }
        self.item_sigs.insert(item.id, (key, sig));
        self.handle_delivery(now, item, true);
    }

    /// Restores cached items from a decoded stable-storage snapshot,
    /// re-verifying each signature: a tampered disk (or a forged item that
    /// slipped in before defenses were on) must not resurrect into the
    /// cache. Returns the number of items restored.
    fn restore_cached_items(
        &mut self,
        items: Vec<(NewsItem, KeyId, Signature)>,
        now: SimTime,
    ) -> u64 {
        let mut restored = 0u64;
        for (item, key, sig) in items {
            // Admission path 4: a disk snapshot written before a
            // revocation must not resurrect items signed by the revoked
            // key-epoch (rotations restore *before* items, so the fence is
            // armed when this runs).
            if self.cfg.defenses && self.key_revoked(item.id.publisher, key) {
                self.note_revoked_reject(4, item.id.publisher);
                continue;
            }
            if self.cfg.defenses
                && self.cfg.verify_signatures
                && !self.bare_item_ok(&item, key, sig)
            {
                self.stats.forged_rejects += 1;
                obs::metric_add!(self.agent.id(), ctr::NW_FORGED_REJECTS, 1);
                obs::trace_event!(
                    self.agent.id(),
                    Layer::News,
                    kind::FORGED_REJECT,
                    4,
                    u64::from(item.id.publisher.0)
                );
                continue;
            }
            self.log_seen(item.id);
            self.item_sigs.insert(item.id, (key, sig));
            self.cache.insert(item, now);
            restored += 1;
        }
        restored
    }

    /// Wraps cached items with their recorded detached signatures for a
    /// bare-item reply, delta-annotating each item whose story the
    /// requester declared an earlier revision of (`baselines`). An item
    /// with no recorded signature (possible only on nodes that themselves
    /// admitted unverified content) ships a null signature, which defended
    /// receivers refuse.
    fn sign_items(&self, items: Vec<NewsItem>, baselines: &[BaselineHint]) -> Vec<SignedItem> {
        let held: HashMap<u64, &BaselineHint> = baselines.iter().map(|b| (b.key, b)).collect();
        items
            .into_iter()
            .map(|item| {
                let (key, signature) =
                    self.item_sigs.get(&item.id).copied().unwrap_or((KeyId(0), Signature(0)));
                let basis = if self.cfg.deltas && !held.is_empty() {
                    held.get(&newsml::cdc::slug_key(item.id.publisher, &item.slug))
                        .copied()
                        .and_then(|b| self.price_basis(&item, b.revision, b.body_len))
                } else {
                    None
                };
                SignedItem { item, key, signature, basis }
            })
            .collect()
    }

    /// Prices `item` against a candidate baseline and returns the basis
    /// annotation when a delta actually wins — the sender falls back to the
    /// full body (and counts the deferral) when the revisions share too
    /// little. An equal-or-newer baseline deltas hardest of all: the
    /// receiver already holds the content, so a re-offer (margin repair,
    /// reconcile) collapses to chunk references it can satisfy locally.
    fn price_basis(&self, item: &NewsItem, base_rev: u32, base_len: u32) -> Option<DeltaBasis> {
        let cost = newsml::cdc::delta_cost_memo(
            item.id.publisher,
            &item.slug,
            base_rev,
            base_len,
            item.revision,
            item.body_len,
        );
        if cost.saved() <= DeltaBasis::WIRE_SIZE {
            obs::metric_add!(self.agent.id(), ctr::DELTA_DEFERRED, 1);
            return None;
        }
        obs::metric_add!(self.agent.id(), ctr::DELTA_ITEMS_SENT, 1);
        obs::metric_add!(self.agent.id(), ctr::DELTA_ITEM_BYTES_SAVED, cost.saved() as u64);
        Some(DeltaBasis { revision: base_rev, body_len: base_len })
    }

    /// The baseline hints a repair or reconcile request declares: what this
    /// cache holds, so the responder can delta-encode. Empty with deltas
    /// off — the request is then byte-identical to the pre-delta wire.
    fn request_baselines(&self, publisher: Option<PublisherId>) -> Vec<BaselineHint> {
        if !self.cfg.deltas {
            return Vec::new();
        }
        self.cache.baselines(publisher, MAX_BASELINES)
    }

    /// Receiver-side honesty for the `bytes_wire` model: an item that
    /// arrived delta-encoded against a basis this node cannot reconstruct
    /// from (it holds neither the baseline revision nor the content
    /// itself) would have to fetch the missing chunks — charge the full
    /// minus delta difference back so the compressed accounting never
    /// under-counts.
    fn delta_makeup(&self, item: &NewsItem, basis: Option<&DeltaBasis>) {
        let Some(b) = basis else { return };
        if !self.cfg.deltas {
            return;
        }
        let decodable = self
            .cache
            .latest_for_slug(item.id.publisher, &item.slug)
            .is_some_and(|held| held.revision == b.revision || held.revision >= item.revision);
        if decodable {
            return;
        }
        let cost = newsml::cdc::delta_cost_memo(
            item.id.publisher,
            &item.slug,
            b.revision,
            b.body_len,
            item.revision,
            item.body_len,
        );
        obs::metric_add!(self.agent.id(), ctr::DELTA_FALLBACK_FULL, 1);
        obs::metric_add!(self.agent.id(), ctr::BYTES_WIRE, cost.saved() as u64);
    }

    /// Random peer for cache repair: usually a leaf-zone neighbour (cheap,
    /// nearby), but a fraction of rounds reach representatives from higher
    /// tables — when a forwarder crash loses a whole subtree, everyone in
    /// the local leaf zone is missing the same items, and only a
    /// cross-zone peer can supply them.
    fn repair_peer(&self, rng: &mut rand::rngs::SmallRng, now: SimTime) -> Option<NodeId> {
        use astrolabe::AttrValue;
        let mut candidates: Vec<u32> = Vec::new();
        if rng.gen_bool(0.5) {
            let own = self.agent.own_label(0);
            candidates.extend(
                self.agent
                    .table(0)
                    .iter()
                    .filter(|(l, _)| *l != own)
                    .filter_map(|(_, row)| row.get("id").and_then(|v| v.as_i64()))
                    .filter_map(|v| u32::try_from(v).ok()),
            );
        }
        if candidates.is_empty() {
            for level in 1..self.agent.levels() {
                for (_, row) in self.agent.table(level).iter() {
                    if let Some(AttrValue::Set(reps)) = row.get("reps") {
                        candidates.extend(reps.iter().filter_map(|&r| u32::try_from(r).ok()));
                    }
                }
            }
        }
        candidates.retain(|&p| p != self.agent.id());
        // Asking a phi-suspect peer wastes a repair round on a reply
        // timeout; avoid them while any trusted alternative exists.
        self.prefer_unsuspected(&mut candidates, now);
        candidates.as_slice().choose(rng).map(|&p| NodeId(p))
    }

    /// A random *cross-zone* representative from the higher tables — the
    /// escape hatch when the whole leaf zone shares the same log holes
    /// (partitions usually fall along zone boundaries).
    fn cross_zone_peer(&self, rng: &mut rand::rngs::SmallRng, now: SimTime) -> Option<NodeId> {
        use astrolabe::AttrValue;
        let mut candidates: Vec<u32> = Vec::new();
        for level in 1..self.agent.levels() {
            for (label, row) in self.agent.table(level).iter() {
                if label == self.agent.own_label(level) {
                    continue; // our own branch shares our holes
                }
                if let Some(AttrValue::Set(reps)) = row.get("reps") {
                    candidates.extend(reps.iter().filter_map(|&r| u32::try_from(r).ok()));
                }
            }
        }
        candidates.retain(|&p| p != self.agent.id());
        self.prefer_unsuspected(&mut candidates, now);
        candidates.as_slice().choose(rng).map(|&p| NodeId(p))
    }

    /// Registers an acknowledged hand-off of `env`/`zone` to `rep` and arms
    /// its timeout (exponential in `attempt`). The hand-off id doubles as
    /// the timer tag (offset by [`ACK_TAG_BASE`]).
    #[allow(clippy::too_many_arguments)]
    fn arm_handoff(
        &mut self,
        ctx: &mut Context<'_, NewsWireMsg>,
        timeout: SimDuration,
        rep: u32,
        env: Envelope,
        zone: ZoneId,
        tried: Vec<u32>,
        attempt: u32,
        failovers: u32,
    ) {
        self.next_handoff += 1;
        let tag = ACK_TAG_BASE + self.next_handoff;
        let factor = u64::from(self.cfg.ack_backoff.max(1)).pow(attempt);
        let delay = timeout.checked_mul(factor).unwrap_or(timeout);
        let timer = ctx.set_timer(delay, tag);
        self.ack_index.entry((env.msg_id, zone.clone())).or_default().push(tag);
        self.pending
            .insert(tag, PendingHandoff { env, zone, rep, tried, attempt, failovers, timer });
    }

    /// Re-arms an existing hand-off under the same tag after a timeout.
    fn rearm_handoff(
        &mut self,
        ctx: &mut Context<'_, NewsWireMsg>,
        timeout: SimDuration,
        tag: u64,
        mut handoff: PendingHandoff,
    ) {
        let factor = u64::from(self.cfg.ack_backoff.max(1)).pow(handoff.attempt);
        let delay = timeout.checked_mul(factor).unwrap_or(timeout);
        handoff.timer = ctx.set_timer(delay, tag);
        self.pending.insert(tag, handoff);
    }

    /// Drops `tag` from the `(msg_id, zone)` index.
    fn unindex_handoff(&mut self, msg_id: u64, zone: &ZoneId, tag: u64) {
        if let Some(tags) = self.ack_index.get_mut(&(msg_id, zone.clone())) {
            tags.retain(|&t| t != tag);
            if tags.is_empty() {
                self.ack_index.remove(&(msg_id, zone.clone()));
            }
        }
    }

    /// An armed hand-off timed out unacknowledged: retry the same
    /// representative with backoff, then fail over to an untried one from
    /// the zone tables, then abandon the hand-off to anti-entropy repair.
    fn handle_ack_timeout(&mut self, ctx: &mut Context<'_, NewsWireMsg>, tag: u64) {
        let Some(timeout) = self.cfg.ack_timeout else { return };
        let Some(mut handoff) = self.pending.remove(&tag) else {
            return; // acknowledged (or abandoned) before the timer fired
        };
        let now = ctx.now();
        let now_us = now.as_micros();
        // Phi-accrual shortcut: when the detector already suspects the
        // current representative, burning the remaining same-rep retries is
        // wasted time — fail over immediately.
        let rep_suspect = self.peer_suspect(handoff.rep, now);
        if rep_suspect && handoff.attempt < self.cfg.ack_retries {
            self.stats.suspect_failovers += 1;
            obs::metric_add!(self.agent.id(), ctr::NW_SUSPECT_FAILOVERS, 1);
            obs::trace_event!(self.agent.id(), Layer::News, kind::PHI_SUSPECT, handoff.rep);
        }
        if !rep_suspect && handoff.attempt < self.cfg.ack_retries {
            // Same representative, longer leash.
            handoff.attempt += 1;
            self.stats.ack_retries += 1;
            self.stats.forwards_sent += 1;
            obs::metric_add!(self.agent.id(), ctr::NW_ACK_RETRIES, 1);
            obs::metric_add!(self.agent.id(), ctr::NW_FORWARDS, 1);
            obs::trace_event!(
                self.agent.id(),
                Layer::News,
                kind::HANDOFF_RETRY,
                handoff.env.msg_id,
                handoff.rep
            );
            self.log.record(LogRecord {
                at_us: now_us,
                msg_id: handoff.env.msg_id,
                zone: handoff.zone.clone(),
                peer: Some(handoff.rep),
                event: ForwardEvent::AckTimeout,
            });
            ctx.send(
                NodeId(handoff.rep),
                NewsWireMsg::Forward { env: handoff.env.clone(), zone: handoff.zone.clone() },
            );
            self.rearm_handoff(ctx, timeout, tag, handoff);
            return;
        }
        // Retries exhausted: fail over to a representative not yet tried.
        let next = if handoff.failovers < self.cfg.ack_max_failovers {
            let mut candidates = zone_reps(&self.agent, &handoff.zone);
            candidates.retain(|r| !handoff.tried.contains(r) && *r != handoff.rep);
            // Prefer representatives the phi detector still trusts.
            self.prefer_unsuspected(&mut candidates, now);
            candidates.as_slice().choose(ctx.rng()).copied()
        } else {
            None
        };
        match next {
            Some(rep) => {
                handoff.tried.push(handoff.rep);
                handoff.rep = rep;
                handoff.attempt = 0;
                handoff.failovers += 1;
                self.stats.ack_failovers += 1;
                self.stats.forwards_sent += 1;
                obs::metric_add!(self.agent.id(), ctr::NW_ACK_FAILOVERS, 1);
                obs::metric_add!(self.agent.id(), ctr::NW_FORWARDS, 1);
                obs::trace_event!(
                    self.agent.id(),
                    Layer::News,
                    kind::HANDOFF_FAILOVER,
                    handoff.env.msg_id,
                    rep
                );
                self.log.record(LogRecord {
                    at_us: now_us,
                    msg_id: handoff.env.msg_id,
                    zone: handoff.zone.clone(),
                    peer: Some(rep),
                    event: ForwardEvent::FailedOver,
                });
                ctx.send(
                    NodeId(rep),
                    NewsWireMsg::Forward { env: handoff.env.clone(), zone: handoff.zone.clone() },
                );
                self.rearm_handoff(ctx, timeout, tag, handoff);
            }
            None => {
                self.stats.handoffs_abandoned += 1;
                obs::metric_add!(self.agent.id(), ctr::NW_HANDOFFS_ABANDONED, 1);
                obs::trace_event!(
                    self.agent.id(),
                    Layer::News,
                    kind::HANDOFF_ABANDON,
                    handoff.env.msg_id,
                    handoff.rep
                );
                self.log.record(LogRecord {
                    at_us: now_us,
                    msg_id: handoff.env.msg_id,
                    zone: handoff.zone.clone(),
                    peer: Some(handoff.rep),
                    event: ForwardEvent::Abandoned,
                });
                self.unindex_handoff(handoff.env.msg_id, &handoff.zone, tag);
            }
        }
    }

    /// Sends one repair request to `peer` and, when configured, arms the
    /// reply timeout that re-targets a different peer.
    fn send_repair_request(
        &mut self,
        ctx: &mut Context<'_, NewsWireMsg>,
        peer: NodeId,
        retargets: u32,
    ) {
        // Back the marks off by a margin so gaps *below* the high-water
        // mark (a missed item followed by a received one) are re-offered;
        // the cache dedups the overlap.
        let margin = (self.cfg.repair_batch / 4) as u64;
        let highwater = self
            .cache
            .highwaters()
            .into_iter()
            .map(|(p, hw)| (p, hw.saturating_sub(margin)))
            .collect();
        obs::trace_event!(self.agent.id(), Layer::News, kind::REPAIR_REQUEST, peer.0);
        ctx.send(
            peer,
            NewsWireMsg::RepairRequest {
                highwater,
                want_snapshot: self.cache.is_empty(),
                baselines: self.request_baselines(None),
            },
        );
        if let Some(wait) = self.cfg.repair_reply_timeout {
            if let Some((_, old_timer, _)) = self.awaiting_repair.take() {
                ctx.cancel_timer(old_timer);
            }
            let timer = ctx.set_timer(wait, REPAIR_WAIT_TIMER);
            self.awaiting_repair = Some((peer, timer, retargets));
        }
    }

    /// Publishes the per-publisher log digests into this node's MIB row so
    /// they gossip with everything else (`sys$ae:<publisher>`).
    fn publish_ae_digests(&mut self) {
        if !self.cfg.anti_entropy {
            return;
        }
        let digests: Vec<(PublisherId, String)> =
            self.article_logs.iter().map(|(p, log)| (*p, log.summary().encode())).collect();
        for (publisher, encoded) in digests {
            self.agent.set_local_attr(&format!("{AE_ATTR_PREFIX}{}", publisher.0), encoded);
        }
    }

    /// One reconcile step per gossip round: pick the next publisher with
    /// holes (round-robin), find the freshest peer whose gossiped digest can
    /// fill them, and pull the missing ranges.
    ///
    /// Peer selection prefers leaf-zone neighbours advertising a
    /// *contiguous* log (they can vouch for everything up to their mark).
    /// When the whole leaf zone shares the hole — the partition fell along a
    /// zone boundary — no such neighbour exists, and the fallback asks a
    /// random cross-zone representative blind. Once one leaf member has
    /// reconciled across the boundary it becomes a contiguous local source,
    /// and the rest of the zone heals epidemically from it.
    fn maybe_reconcile(&mut self, ctx: &mut Context<'_, NewsWireMsg>) {
        if !self.cfg.anti_entropy || self.awaiting_reconcile.is_some() {
            return;
        }
        let publishers: Vec<PublisherId> = self.article_logs.keys().copied().collect();
        if publishers.is_empty() {
            return;
        }
        let now = ctx.now();
        let own = self.agent.own_label(0);
        for step in 0..publishers.len() {
            let publisher = publishers[(self.reconcile_cursor + step) % publishers.len()];
            let log = &self.article_logs[&publisher];
            let attr = format!("{AE_ATTR_PREFIX}{}", publisher.0);
            // Leaf neighbours advertising digests that cover holes we have.
            let mut best: Option<(RangeSummary, u32)> = None;
            for (label, row) in self.agent.table(0).iter() {
                if label == own {
                    continue;
                }
                let Some(peer) =
                    row.get("id").and_then(|v| v.as_i64()).and_then(|v| u32::try_from(v).ok())
                else {
                    continue;
                };
                let Some(summary) =
                    row.get(&attr).and_then(|v| v.as_str()).and_then(RangeSummary::decode)
                else {
                    continue;
                };
                if !summary.contiguous() || log.missing_given(&summary).is_empty() {
                    continue;
                }
                if self.peer_suspect(peer, now) {
                    continue;
                }
                let fresher = match &best {
                    None => true,
                    Some((b, _)) => (summary.epoch, summary.next) > (b.epoch, b.next),
                };
                if fresher {
                    best = Some((summary, peer));
                }
            }
            let (peer, ranges, via_digest) = match best {
                Some((summary, peer)) => {
                    (NodeId(peer), self.article_logs[&publisher].missing_given(&summary), true)
                }
                None => {
                    // No leaf neighbour is ahead of us. If our own log has
                    // internal gaps, ask across the zone boundary blind.
                    let gaps = self.article_logs[&publisher].gaps();
                    if gaps.is_empty() {
                        continue;
                    }
                    match self.cross_zone_peer(ctx.rng(), now) {
                        Some(peer) => (peer, gaps, false),
                        None => continue,
                    }
                }
            };
            self.reconcile_cursor = (self.reconcile_cursor + step + 1) % publishers.len();
            self.send_reconcile_request(ctx, peer, publisher, ranges, 0, via_digest);
            return;
        }
        self.reconcile_cursor = (self.reconcile_cursor + 1) % publishers.len();
    }

    /// Sends one `ReconcileRequest` and arms its reply timeout.
    fn send_reconcile_request(
        &mut self,
        ctx: &mut Context<'_, NewsWireMsg>,
        peer: NodeId,
        publisher: PublisherId,
        ranges: Vec<(u64, u64)>,
        retargets: u32,
        via_digest: bool,
    ) {
        let (epoch, tail_from) = self
            .article_logs
            .get(&publisher)
            .map(|log| (log.epoch(), log.next_seq()))
            .unwrap_or((0, 0));
        self.stats.reconcile_requests += 1;
        obs::metric_add!(self.agent.id(), ctr::NW_RECONCILE_REQUESTS, 1);
        obs::trace_event!(self.agent.id(), Layer::News, kind::AE_REQUEST, peer.0, publisher.0);
        ctx.send(
            peer,
            NewsWireMsg::ReconcileRequest {
                publisher,
                epoch,
                ranges: ranges.clone(),
                tail_from,
                baselines: self.request_baselines(Some(publisher)),
            },
        );
        if let Some(wait) = self.cfg.repair_reply_timeout {
            let backoff = u64::from(self.cfg.ack_backoff.max(1)).pow(retargets);
            let delay = wait.checked_mul(backoff).unwrap_or(wait);
            let timer = ctx.set_timer(delay, RECONCILE_WAIT_TIMER);
            self.awaiting_reconcile =
                Some(PendingReconcile { peer, publisher, ranges, timer, retargets, via_digest });
        }
    }

    /// Serves a `ReconcileRequest` from the cache. The requester's baseline
    /// hints let the reply delta-encode revised stories: before them, a
    /// reconcile reply re-shipped the full `SignedItem` body even when the
    /// requester's digest proved it held an earlier revision of the same
    /// story.
    #[allow(clippy::too_many_arguments)]
    fn serve_reconcile(
        &mut self,
        ctx: &mut Context<'_, NewsWireMsg>,
        from: NodeId,
        publisher: PublisherId,
        epoch: u32,
        ranges: &[(u64, u64)],
        tail_from: u64,
        baselines: &[BaselineHint],
    ) {
        let summary =
            self.article_logs.get(&publisher).map(|log| log.summary()).unwrap_or_default();
        let mut items: Vec<NewsItem> = Vec::new();
        // A requester on a newer epoch has restarted history; our items
        // would be misfiled under its sequencing, so ship nothing (the
        // summary still tells it where we stand).
        if summary.epoch >= epoch {
            for &(lo, hi) in ranges {
                items.extend(
                    self.cache
                        .items_from(publisher, lo, self.cfg.repair_batch)
                        .into_iter()
                        .filter(|i| i.id.seq <= hi),
                );
            }
            items.extend(self.cache.items_from(publisher, tail_from, self.cfg.repair_batch));
            items.sort_by_key(|i| i.id);
            items.dedup_by_key(|i| i.id);
            items.truncate(self.cfg.repair_batch);
        }
        if !items.is_empty() {
            self.stats.reconciles_served += 1;
            self.stats.reconcile_items_sent += items.len() as u64;
            self.stats.reconcile_bytes_sent +=
                items.iter().map(|i| i.wire_size() as u64).sum::<u64>();
            obs::metric_add!(self.agent.id(), ctr::NW_RECONCILES_SERVED, 1);
            obs::metric_add!(self.agent.id(), ctr::NW_RECONCILE_ITEMS_SENT, items.len());
            obs::metric_add!(
                self.agent.id(),
                ctr::NW_RECONCILE_BYTES_SENT,
                items.iter().map(|i| i.wire_size() as u64).sum::<u64>()
            );
            obs::trace_event!(self.agent.id(), Layer::News, kind::AE_REPLY, from.0, items.len());
        }
        // Reply even when empty: the summary lets the requester settle
        // unservable holes, and the reply itself proves liveness. The
        // stored attestation rides along so signed epoch authority spreads
        // to nodes the publisher's own envelopes have not reached.
        let attest = self.authority.get(&publisher).copied();
        let items = self.sign_items(items, baselines);
        ctx.send(from, NewsWireMsg::ReconcileReply { publisher, summary, attest, items });
    }

    /// Absorbs a `ReconcileReply`: deliver the recovered items, then settle
    /// requested seqs the responder's contiguous summary vouches for —
    /// revision-fused or evicted seqs are unservable by *anyone* on that
    /// epoch, and without settling we would re-request them forever.
    fn absorb_reconcile_reply(
        &mut self,
        ctx: &mut Context<'_, NewsWireMsg>,
        from: NodeId,
        publisher: PublisherId,
        summary: RangeSummary,
        attest: Option<EpochAttest>,
        items: Vec<SignedItem>,
    ) {
        // Absorb the rider attestation first: a genuine publisher epoch
        // bump raises our signed authority *before* the fence judges the
        // reply's claimed epoch.
        if let Some(a) = &attest {
            if a.publisher == publisher {
                self.absorb_attest(a);
            }
        }
        let pending = match &self.awaiting_reconcile {
            Some(p) if p.peer == from && p.publisher == publisher => {
                let p = self.awaiting_reconcile.take().unwrap();
                ctx.cancel_timer(p.timer);
                Some(p)
            }
            _ => None,
        };
        let now = ctx.now();
        self.stats.reconcile_items_recv += items.len() as u64;
        obs::metric_add!(self.agent.id(), ctr::NW_RECONCILE_ITEMS_RECV, items.len());
        // Digest contradiction: this peer was selected because its gossiped
        // digest vouched coverage for our holes, yet it replies with an
        // empty log and no items — the advertisement and the reply cannot
        // both be honest (split-brain lying looks exactly like this).
        if let Some(p) = &pending {
            if p.via_digest && items.is_empty() && summary.is_empty() {
                self.note_misbehavior(from, MISBEHAVIOR_CONTRADICTION);
            }
        }
        // Epoch fence (DESIGN §12): adopting a newer epoch wipes this log,
        // and a reply summary is a single peer's unverified claim — the
        // contagion vector for fabricated epochs. With defenses on, the
        // publisher-signed attestation is the reference wherever one is
        // held: a colluding leaf-zone majority can capture the unsigned
        // neighbour consensus, but it cannot sign as the publisher. The
        // consensus mode remains the fallback for publishers no attestation
        // has reached yet (majority-honest assumption, DESIGN §11).
        let cur_epoch = self.article_logs.get(&publisher).map_or(0, |l| l.epoch());
        let authority = self.authority_epoch(publisher);
        let fenced = summary.epoch > cur_epoch
            && self.cfg.defenses
            && match authority {
                Some(ae) => summary.epoch > ae,
                None => {
                    matches!(self.consensus_epoch(publisher), Some(ce) if summary.epoch > ce)
                }
            };
        if fenced {
            obs::metric_add!(self.agent.id(), ctr::CORRUPT_ROWS_REJECTED, 1);
            if authority.is_some() {
                self.stats.signed_epoch_refusals += 1;
                obs::metric_add!(self.agent.id(), ctr::NW_SIGNED_EPOCH_REFUSALS, 1);
                obs::trace_event!(
                    self.agent.id(),
                    Layer::News,
                    kind::SIGNED_EPOCH_REFUSAL,
                    u64::from(summary.epoch),
                    u64::from(publisher.0)
                );
            }
            self.note_misbehavior(from, MISBEHAVIOR_FENCE);
        }
        let log =
            self.article_logs.entry(publisher).or_insert_with(|| SeqLog::new(ARTICLE_LOG_CAPACITY));
        if summary.epoch > log.epoch() && !fenced {
            log.adopt_epoch(summary.epoch);
        }
        for SignedItem { item, key, signature, basis } in items {
            self.delta_makeup(&item, basis.as_ref());
            self.admit_bare_item(now, item, key, signature, from, 3);
        }
        if let Some(ranges) = pending.map(|p| p.ranges) {
            let log = self
                .article_logs
                .entry(publisher)
                .or_insert_with(|| SeqLog::new(ARTICLE_LOG_CAPACITY));
            // An empty summary vouches for nothing: a peer that has no log
            // (say, a fresh amnesiac rejoiner picked through a stale digest)
            // must not settle anyone's seq 0 — `0..=next-1` would otherwise
            // saturate into the single-element range `0..=0`.
            if summary.epoch == log.epoch() && summary.contiguous() && !summary.is_empty() {
                for (lo, hi) in ranges {
                    if lo >= summary.next {
                        continue;
                    }
                    for seq in lo..=hi.min(summary.next - 1) {
                        log.insert(seq, ());
                    }
                }
            }
        }
    }

    /// Drains incarnation bumps observed by the embedded agent and forgets
    /// the phi-accrual history of each bumped peer: the suspicion belonged
    /// to the peer's previous life, and a freshly restarted peer must be
    /// immediately eligible again as an ack-failover / repair / reconcile
    /// target (its next message seeds a fresh detector).
    fn absorb_incarnation_bumps(&mut self) {
        for peer in self.agent.take_incarnation_bumps() {
            self.peer_health.remove(&peer);
            // Misbehavior belonged to the previous life too: a reinstalled
            // node is not the liar its predecessor was. But only an
            // identity the registry still endorses earns the clean slate —
            // before this check, any quarantined node could self-clear by
            // restarting under a fresh incarnation (the §15 loophole).
            if self.peer_endorsed(peer) {
                self.misbehavior.remove(&peer);
            }
        }
    }

    /// The epoch most of this node's leaf neighbours advertise for
    /// `publisher` in their gossiped `sys$ae:` digests — the reference the
    /// epoch fence trusts. A genuine publisher restart reaches every
    /// neighbour within a gossip round or two, so the mode tracks honest
    /// epoch bumps; a fabricated epoch stays a minority of one. Ties break
    /// *low* (never fence up to a contested epoch). `None` when no
    /// neighbour advertises a digest. This is corruption tolerance under a
    /// majority-honest leaf zone, not Byzantine agreement — a colluding
    /// majority defeats it, which is why the epoch fence prefers the
    /// publisher-signed attestation whenever one is held and falls back to
    /// this mode only before any attestation arrives (see DESIGN §12; the
    /// §11 caveat describes the fallback's limits).
    fn consensus_epoch(&self, publisher: PublisherId) -> Option<u32> {
        let attr = format!("{AE_ATTR_PREFIX}{}", publisher.0);
        let own = self.agent.own_label(0);
        let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
        for (label, row) in self.agent.table(0).iter() {
            if label == own {
                continue;
            }
            let summary = row.get(&attr).and_then(|v| v.as_str()).and_then(RangeSummary::decode);
            if let Some(s) = summary {
                *counts.entry(s.epoch).or_insert(0) += 1;
            }
        }
        counts.into_iter().max_by_key(|&(epoch, n)| (n, std::cmp::Reverse(epoch))).map(|(e, _)| e)
    }

    /// The subscription summary attributes this node *should* advertise,
    /// re-derived from the [`Subscription`] ground truth — the self-audit
    /// compares these against what is actually installed in the MIB row.
    fn derived_sub_attrs(&self) -> Vec<(String, AttrValue)> {
        match self.cfg.model {
            SubscriptionModel::Bloom { bits, hashes } => {
                vec![("subs".to_owned(), AttrValue::from(self.subscription.to_bloom(bits, hashes)))]
            }
            SubscriptionModel::CategoryMask => self
                .subscription
                .publishers
                .iter()
                .map(|(p, _)| {
                    let mask = self.subscription.mask_for(*p).0 as i64;
                    (self.cfg.model.attr_for(*p), AttrValue::Int(mask))
                })
                .collect(),
        }
    }

    /// Periodic self-audit, the repair half of the corruption defenses
    /// (the ingest validator is the rejection half). Three sweeps, each
    /// against ground truth the adversary cannot reach: scrub held zone
    /// rows that cannot be structurally honest, re-install the subscription
    /// advertisement when it diverged from the `subscription` object, and
    /// rebuild any article log claiming an epoch beyond what this node's
    /// neighbours agree on (rebuilt from cached items at the consensus
    /// epoch; honest holes refill through ordinary reconciliation). A
    /// healthy node audits to zero — the sweep itself never perturbs
    /// converged state, which is what keeps defenses-on runs bit-identical
    /// across same-seed replays.
    fn self_audit(&mut self, now: SimTime) {
        self.agent.scrub(now);
        let mut repairs = 0u64;
        for (attr, want) in self.derived_sub_attrs() {
            if self.agent.local_attr(&attr) != Some(&want) {
                self.agent.set_local_attr(&attr, want);
                repairs += 1;
                obs::trace_event!(self.agent.id(), Layer::Astro, kind::SELF_AUDIT_REPAIR, 2, 1);
            }
        }
        let publishers: Vec<PublisherId> = self.article_logs.keys().copied().collect();
        for publisher in publishers {
            // The fence reference: the publisher's signed attestation when
            // held (collusion-proof), neighbour consensus otherwise.
            let Some(ce) =
                self.authority_epoch(publisher).or_else(|| self.consensus_epoch(publisher))
            else {
                continue;
            };
            if self.article_logs[&publisher].epoch() <= ce {
                continue;
            }
            let mut rebuilt = SeqLog::new(ARTICLE_LOG_CAPACITY);
            rebuilt.adopt_epoch(ce);
            for item in self.cache.iter().filter(|i| i.id.publisher == publisher) {
                rebuilt.insert(item.id.seq, ());
            }
            self.article_logs.insert(publisher, rebuilt);
            repairs += 1;
            obs::trace_event!(self.agent.id(), Layer::Astro, kind::SELF_AUDIT_REPAIR, 3, 1);
        }
        if repairs > 0 {
            obs::metric_add!(self.agent.id(), ctr::SELF_AUDIT_REPAIRS, repairs);
        }
    }

    /// The durable protocol state for the `state` disk record: article-log
    /// coverage (with the present sequence ranges), cached items, and the
    /// application delivery log. Cache and deliveries persist *together* —
    /// the cache is the dedup barrier and the delivery log is the
    /// completeness substrate, and restoring one without the other would
    /// either re-deliver everything or forget what was delivered.
    fn durable_state(&self) -> persist::NodeState {
        let logs = self
            .article_logs
            .iter()
            .map(|(p, log)| persist::LogState {
                publisher: *p,
                coverage: log.encode_coverage(),
                present: persist::compress_ranges(
                    log.range(log.floor(), log.next_seq().saturating_sub(1)).map(|(s, _)| s),
                ),
            })
            .collect();
        persist::NodeState {
            logs,
            // Each item persists with its detached signature, so a durable
            // restore can re-verify: a disk snapshot is just another
            // admission path (see `restore_cached_items`).
            items: self
                .cache
                .iter()
                .map(|item| {
                    let (key, sig) =
                        self.item_sigs.get(&item.id).copied().unwrap_or((KeyId(0), Signature(0)));
                    (item.clone(), key, sig)
                })
                .collect(),
            deliveries: self.deliveries.clone(),
            rotations: self.rotations.values().map(|r| r.encode()).collect(),
        }
    }

    /// Cheap change detector over the durable state: structure and counts,
    /// not content. Skipping unchanged snapshots keeps steady-state disk
    /// traffic near zero without diffing item payloads.
    fn state_fingerprint(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = mix(h, self.cache.len() as u64);
        h = mix(h, self.deliveries.len() as u64);
        for (p, log) in &self.article_logs {
            h = mix(h, u64::from(p.0));
            h = mix(h, u64::from(log.epoch()));
            h = mix(h, log.floor());
            h = mix(h, log.next_seq());
            h = mix(h, log.len() as u64);
        }
        for (p, rec) in &self.rotations {
            h = mix(h, u64::from(p.0));
            h = mix(h, u64::from(rec.serial));
        }
        h
    }

    /// Write-behind persistence, called once per gossip tick when
    /// `durable_state` is configured: snapshot the `state` record when the
    /// fingerprint moved, fsync every [`STATE_FSYNC_TICKS`]th tick. The
    /// window between write and fsync is exactly what the engine's
    /// `crash_unsynced_loss` knob destroys on crash.
    fn persist_state(&mut self, ctx: &mut Context<'_, NewsWireMsg>) {
        let fp = self.state_fingerprint();
        if fp != self.persisted_fingerprint {
            let blob = persist::encode_state(&self.durable_state());
            ctx.disk().write(DISK_KEY_STATE, blob);
            self.persisted_fingerprint = fp;
        }
        if self.gossip_ticks.is_multiple_of(STATE_FSYNC_TICKS) {
            ctx.disk().fsync();
        }
    }

    /// Checks whether an in-progress cold-restart recovery has caught up:
    /// no pull in flight, every article log hole-free, and — for every
    /// publisher this node subscribes to — the log's high-water mark at or
    /// past the highest mark any leaf neighbour advertises in its gossiped
    /// anti-entropy digest. The last clause is what makes the criterion
    /// meaningful for an amnesiac rejoin, whose freshly empty logs would
    /// otherwise be vacuously hole-free.
    fn check_recovery_done(&mut self, now: SimTime) {
        let Some(started) = self.recovering_since else { return };
        if self.awaiting_repair.is_some() || self.awaiting_reconcile.is_some() {
            return;
        }
        if self.article_logs.values().any(|log| !log.gaps().is_empty()) {
            return;
        }
        // A freshly reset membership view is vacuously consistent — an
        // amnesiac node that has not yet heard from anyone would sail
        // through the digest comparison below. Refuse to declare victory
        // until the node has dwelt at least two gossip rounds and holds at
        // least one leaf-neighbour row learned since the restart.
        let dwell = 2 * self.cfg.astrolabe.gossip_interval.as_micros();
        if now.as_micros() < started.as_micros().saturating_add(dwell) {
            return;
        }
        let own = self.agent.own_label(0);
        if !self.agent.table(0).iter().any(|(label, _)| label != own) {
            return;
        }
        for (p, _) in &self.subscription.publishers {
            let attr = format!("{AE_ATTR_PREFIX}{}", p.0);
            let mut neighborhood_next = 0u64;
            for (label, row) in self.agent.table(0).iter() {
                if label == own {
                    continue;
                }
                if let Some(s) =
                    row.get(&attr).and_then(|v| v.as_str()).and_then(RangeSummary::decode)
                {
                    neighborhood_next = neighborhood_next.max(s.next);
                }
            }
            let reached = self
                .article_logs
                .get(p)
                .map_or(neighborhood_next == 0, |log| log.next_seq() >= neighborhood_next);
            if !reached {
                return;
            }
        }
        let duration = now.as_micros().saturating_sub(started.as_micros());
        self.recovering_since = None;
        self.stats.recoveries_completed += 1;
        obs::metric_add!(self.agent.id(), ctr::NW_RECOVERIES, 1);
        obs::series_record!(self.agent.id(), series::RECOVERY_DURATION_US, duration);
        obs::trace_event!(
            self.agent.id(),
            Layer::News,
            kind::NW_RECOVERY_DONE,
            duration,
            self.backfill_this_recovery
        );
    }
}

impl Node for NewsWireNode {
    type Msg = NewsWireMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, NewsWireMsg>) {
        let interval = self.agent.config().gossip_interval;
        let first = SimDuration::from_micros(ctx.rng().gen_range(0..interval.as_micros().max(1)));
        ctx.set_timer(first, GOSSIP_TIMER);
        if let Some(repair) = self.cfg.repair_interval {
            let first = SimDuration::from_micros(ctx.rng().gen_range(0..repair.as_micros().max(1)));
            ctx.set_timer(first, REPAIR_TIMER);
        }
        if self.cfg.durable_state {
            // The subscription is configuration, not protocol state: write
            // it once, synced, so a durable restart re-derives the exact
            // interests (predicate included) from disk.
            let blob = persist::encode_subscription(&self.subscription);
            ctx.disk().write(DISK_KEY_SUB, blob);
            ctx.disk().fsync();
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, NewsWireMsg>, from: NodeId, msg: NewsWireMsg) {
        self.clock = ctx.now();
        self.note_alive(from, ctx.now());
        match msg {
            NewsWireMsg::Gossip { g, rot } => {
                let now = ctx.now();
                // Rider first, then row attributes: a revocation arriving
                // with this very exchange fences its rows' attestations in
                // the same round.
                if let Some(rec) = rot {
                    self.adopt_rotation(&rec);
                }
                self.scan_rotations(&g);
                let mut g = g;
                self.filter_sybil_rows(&mut g);
                let out = self.agent.on_message(now, from.0, g, ctx.rng());
                for (to, g) in out {
                    let msg = self.gossip_msg(g);
                    ctx.send(NodeId(to), msg);
                }
                // Any incarnation bumps the merge just surfaced clear peer
                // suspicion immediately — within the same gossip round, not
                // a tick later.
                self.absorb_incarnation_bumps();
            }
            NewsWireMsg::Rotate { record, credential } => {
                // Ablation: with defenses off the rotation is a dead
                // letter — the publisher keeps its compromised key and
                // forged items verify for the full window.
                if !self.cfg.defenses {
                    return;
                }
                self.adopt_rotation(&record);
                if let Some(cred) = credential {
                    let matches_self = self
                        .publisher
                        .as_ref()
                        .is_some_and(|p| p.credential.publisher() == cred.publisher());
                    if matches_self {
                        // The publisher itself re-keys: successor
                        // certificate and a fresh attestation at the
                        // current log epoch anchor the new authority, and
                        // every item published from here signs with the
                        // successor key.
                        let publisher = cred.publisher();
                        let epoch = self.article_logs.get(&publisher).map_or(0, |l| l.epoch());
                        self.install_publisher_authority(
                            cred.certificate.clone(),
                            cred.attest_epoch(epoch),
                        );
                        self.publisher.as_mut().expect("publisher matched above").credential = cred;
                    }
                }
            }
            NewsWireMsg::PublishRequest { item, scope, predicate } => {
                self.handle_publish(ctx, item, scope, predicate)
            }
            NewsWireMsg::Forward { env, zone } => {
                if self.envelope_fenced(&env) {
                    return;
                }
                if !self.verify(&env) {
                    self.stats.auth_rejects += 1;
                    obs::metric_add!(self.agent.id(), ctr::NW_AUTH_REJECTS, 1);
                    self.log.record(LogRecord {
                        at_us: ctx.now().as_micros(),
                        msg_id: env.msg_id,
                        zone,
                        peer: Some(from.0),
                        event: ForwardEvent::AuthRejected,
                    });
                    self.note_misbehavior(from, MISBEHAVIOR_FORGED);
                    return;
                }
                self.learn_from_envelope(&env);
                // Receipt first: whether this is fresh duty or a duplicate,
                // this representative covers the zone — the sender must stop
                // retrying. Only real (simulated) node senders are acked.
                if self.cfg.ack_timeout.is_some() && from != NodeId::EXTERNAL {
                    ctx.send(
                        from,
                        NewsWireMsg::ForwardAck { msg_id: env.msg_id, zone: zone.clone() },
                    );
                }
                if self.coverage.admit(env.msg_id, zone.depth()) {
                    self.process_duty(ctx, env, zone);
                } else {
                    self.stats.duplicates += 1;
                    obs::metric_add!(self.agent.id(), ctr::NW_DUPLICATES, 1);
                }
            }
            NewsWireMsg::ForwardAck { msg_id, zone } => {
                if let Some(tags) = self.ack_index.remove(&(msg_id, zone)) {
                    self.stats.acks_received += 1;
                    obs::metric_add!(self.agent.id(), ctr::NW_ACKS_RECEIVED, 1);
                    obs::trace_event!(
                        self.agent.id(),
                        Layer::News,
                        kind::HANDOFF_ACK,
                        msg_id,
                        from.0
                    );
                    for tag in tags {
                        if let Some(h) = self.pending.remove(&tag) {
                            ctx.cancel_timer(h.timer);
                        }
                    }
                }
            }
            NewsWireMsg::Deliver { env } => {
                if self.envelope_fenced(&env) {
                    return;
                }
                if !self.verify(&env) {
                    self.stats.auth_rejects += 1;
                    obs::metric_add!(self.agent.id(), ctr::NW_AUTH_REJECTS, 1);
                    self.note_misbehavior(from, MISBEHAVIOR_FORGED);
                    return;
                }
                self.learn_from_envelope(&env);
                let now = ctx.now();
                self.delta_makeup(&env.item, env.basis.as_ref());
                self.handle_delivery(now, env.item, false);
            }
            NewsWireMsg::RepairRequest { highwater, want_snapshot, baselines } => {
                let mut items: Vec<NewsItem> = Vec::new();
                // Everything at or past the requester's (margin-backed)
                // marks…
                for (publisher, hw) in &highwater {
                    items.extend(self.cache.items_from(*publisher, *hw, self.cfg.repair_batch));
                }
                // …plus publishers the requester has never heard from.
                for (publisher, _) in self.cache.highwaters() {
                    if !highwater.iter().any(|(p, _)| *p == publisher) {
                        items.extend(self.cache.items_from(publisher, 0, self.cfg.repair_batch));
                    }
                }
                if want_snapshot {
                    items.extend(self.cache.snapshot(self.cfg.repair_batch));
                }
                items.sort_by_key(|i| i.id);
                items.dedup_by_key(|i| i.id);
                items.truncate(self.cfg.repair_batch);
                if !items.is_empty() {
                    self.stats.repairs_served += 1;
                    self.stats.repair_items_sent += items.len() as u64;
                    obs::metric_add!(self.agent.id(), ctr::NW_REPAIRS_SERVED, 1);
                    obs::metric_add!(self.agent.id(), ctr::NW_REPAIR_ITEMS_SENT, items.len());
                    obs::trace_event!(
                        self.agent.id(),
                        Layer::News,
                        kind::REPAIR_REPLY,
                        from.0,
                        items.len()
                    );
                }
                // Reply even when empty: an empty reply tells the requester
                // "I'm alive and have nothing for you", so its reply timeout
                // distinguishes dead peers from up-to-date ones.
                let items = self.sign_items(items, &baselines);
                ctx.send(from, NewsWireMsg::RepairReply { items });
            }
            NewsWireMsg::RepairReply { items } => {
                if let Some((peer, timer, _)) = self.awaiting_repair {
                    if peer == from {
                        ctx.cancel_timer(timer);
                        self.awaiting_repair = None;
                    }
                }
                let now = ctx.now();
                for SignedItem { item, key, signature, basis } in items {
                    self.delta_makeup(&item, basis.as_ref());
                    self.admit_bare_item(now, item, key, signature, from, 2);
                }
            }
            NewsWireMsg::ReconcileRequest { publisher, epoch, ranges, tail_from, baselines } => {
                self.serve_reconcile(ctx, from, publisher, epoch, &ranges, tail_from, &baselines);
            }
            NewsWireMsg::ReconcileReply { publisher, summary, attest, items } => {
                self.absorb_reconcile_reply(ctx, from, publisher, summary, attest, items);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, NewsWireMsg>, _t: TimerId, tag: u64) {
        self.clock = ctx.now();
        match tag {
            GOSSIP_TIMER => {
                // Publish forwarding load so representative election steers
                // around busy nodes (paper §5).
                let load = self.load_bias + self.queues.len() as f64;
                self.agent.set_local_attr("load", load);
                let now = ctx.now();
                self.gossip_ticks += 1;
                // Audit before digests and the agent tick, so repaired
                // state is what this round advertises and gossips.
                if self.cfg.defenses && self.gossip_ticks.is_multiple_of(SELF_AUDIT_TICKS) {
                    self.self_audit(now);
                }
                self.publish_ae_digests();
                let out = self.agent.on_tick(now, ctx.rng());
                for (to, g) in out {
                    let msg = self.gossip_msg(g);
                    ctx.send(NodeId(to), msg);
                }
                if self.cache.gc(now) > 0 {
                    // Signatures of evicted items are dead weight.
                    let cache = &self.cache;
                    self.item_sigs.retain(|id, _| cache.contains(*id));
                }
                self.absorb_incarnation_bumps();
                self.maybe_reconcile(ctx);
                self.check_recovery_done(now);
                if self.cfg.durable_state {
                    self.persist_state(ctx);
                }
                ctx.set_timer(self.agent.config().gossip_interval, GOSSIP_TIMER);
            }
            DRAIN_TIMER => {
                if let Some(q) = self.queues.pop() {
                    let (dst, msg) = q.item;
                    // Tree hand-offs become *acknowledged* at the moment
                    // they hit the wire: arm the per-hand-off timeout that
                    // drives retry/backoff/failover.
                    if let (Some(timeout), NewsWireMsg::Forward { env, zone }) =
                        (self.cfg.ack_timeout, &msg)
                    {
                        obs::trace_event!(
                            self.agent.id(),
                            Layer::News,
                            kind::HANDOFF_ARM,
                            env.msg_id,
                            dst.0
                        );
                        self.arm_handoff(
                            ctx,
                            timeout,
                            dst.0,
                            env.clone(),
                            zone.clone(),
                            vec![dst.0],
                            0,
                            0,
                        );
                    }
                    ctx.send(dst, msg);
                    self.stats.forwards_sent += 1;
                    obs::metric_add!(self.agent.id(), ctr::NW_FORWARDS, 1);
                }
                if self.queues.is_empty() {
                    self.draining = false;
                } else {
                    ctx.set_timer(self.cfg.service_interval, DRAIN_TIMER);
                }
            }
            REPAIR_TIMER => {
                let now = ctx.now();
                if let Some(peer) = self.repair_peer(ctx.rng(), now) {
                    self.send_repair_request(ctx, peer, 0);
                }
                if let Some(repair) = self.cfg.repair_interval {
                    ctx.set_timer(repair, REPAIR_TIMER);
                }
            }
            REPAIR_WAIT_TIMER => {
                // The peer never answered: it is dead, gray, or cut off.
                // Re-target a different peer instead of idling out the rest
                // of the repair interval (bounded retargets per interval).
                let Some((failed_peer, _, retargets)) = self.awaiting_repair.take() else {
                    return;
                };
                if retargets >= 2 {
                    return;
                }
                self.stats.repair_retargets += 1;
                obs::metric_add!(self.agent.id(), ctr::NW_REPAIR_RETARGETS, 1);
                let now = ctx.now();
                for _ in 0..4 {
                    match self.repair_peer(ctx.rng(), now) {
                        Some(peer) if peer != failed_peer => {
                            self.send_repair_request(ctx, peer, retargets + 1);
                            return;
                        }
                        Some(_) => continue,
                        None => return,
                    }
                }
            }
            RECONCILE_WAIT_TIMER => {
                // The reconcile peer never answered. Re-target across the
                // zone boundary (a bounded number of times — the next gossip
                // round restarts the cycle anyway).
                let Some(p) = self.awaiting_reconcile.take() else { return };
                if p.retargets >= self.cfg.ack_max_failovers {
                    return;
                }
                let now = ctx.now();
                for _ in 0..4 {
                    match self.cross_zone_peer(ctx.rng(), now) {
                        Some(peer) if peer != p.peer => {
                            self.stats.reconcile_retargets += 1;
                            obs::metric_add!(self.agent.id(), ctr::NW_RECONCILE_RETARGETS, 1);
                            self.send_reconcile_request(
                                ctx,
                                peer,
                                p.publisher,
                                p.ranges,
                                p.retargets + 1,
                                false,
                            );
                            return;
                        }
                        Some(_) => continue,
                        None => return,
                    }
                }
            }
            tag if tag > ACK_TAG_BASE => self.handle_ack_timeout(ctx, tag),
            _ => {}
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, NewsWireMsg>) {
        // The legacy `Freeze` recovery: protocol state is wiped as if the
        // process restarted, but ambient memory survives — the subscription
        // attributes stay in the local MIB builder (standing in for the
        // user's configuration file), queues and the duty dedup window keep
        // their contents, and no incarnation is burned. State transfer
        // (`want_snapshot`) refills the cache and re-delivers what the
        // subscription matches. Cold restarts go through `on_restart`.
        self.agent.reset();
        self.cache = MessageCache::new(self.cfg.cache);
        self.deliveries.clear();
        self.draining = false;
        self.pending.clear();
        self.ack_index.clear();
        self.awaiting_repair = None;
        self.article_logs.clear();
        self.peer_health.clear();
        self.misbehavior.clear();
        self.item_sigs.clear();
        self.awaiting_reconcile = None;
        ctx.set_timer(self.agent.config().gossip_interval, GOSSIP_TIMER);
        if let Some(repair) = self.cfg.repair_interval {
            ctx.set_timer(repair, REPAIR_TIMER);
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, NewsWireMsg>, mode: RestartMode) {
        if mode == RestartMode::Freeze {
            self.on_recover(ctx);
            return;
        }
        let now = ctx.now();
        // The process is dead: everything volatile goes, including what a
        // freeze keeps (forwarding queues, the duty dedup window). Stats
        // and the forward log are measurement instrumentation, not process
        // state, and survive in every mode.
        self.agent.reset();
        self.cache = MessageCache::new(self.cfg.cache);
        self.coverage = CoverageWindow::new(8192);
        self.queues = ForwardingQueues::new(self.cfg.strategy);
        self.deliveries.clear();
        self.draining = false;
        self.pending.clear();
        self.ack_index.clear();
        self.awaiting_repair = None;
        self.article_logs.clear();
        self.peer_health.clear();
        self.misbehavior.clear();
        // Signatures go with the cache; publisher certificates and signed
        // attestations survive every restart mode — they ship with the
        // binary (deployment pre-install), not with protocol state.
        self.item_sigs.clear();
        self.awaiting_reconcile = None;
        self.reconcile_cursor = 0;
        self.gossip_ticks = 0;
        self.persisted_fingerprint = 0;
        self.backfill_this_recovery = 0;
        // Rotation state is protocol state, not binary state: a cold
        // process forgets adopted revocations and relearns them from disk
        // (durable) or gossip (amnesiac). Forgetting is safe — the
        // surviving `publisher_certs` primary is already the successor, and
        // clearing `alt_certs`/`retired_certs` means old-key signatures
        // simply fail certificate lookup instead of needing the fence.
        self.revoked.clear();
        self.rotation_serials.clear();
        self.rotations.clear();
        self.rotation_rider = None;
        self.alt_certs.clear();
        self.retired_certs.clear();
        self.probation.clear();
        self.rotation_adopted_at = None;
        // Retract gossiped advertisements describing pre-crash state the
        // new process does not hold; they are rebuilt below from whatever
        // the disk gives back.
        self.agent.remove_local_attrs(AE_ATTR_PREFIX);
        self.agent.remove_local_attrs(ROT_ATTR_PREFIX);

        // Incarnation: read-modify-write against stable storage, floored
        // by simulated time so even an amnesiac restart (blank disk) moves
        // strictly forward. Synced immediately — losing the bump would let
        // pre-crash gossip about this node outrank its new life.
        let stored = ctx.disk().read(DISK_KEY_INCAR).and_then(persist::decode_incarnation);
        let incarnation = match (mode, stored) {
            (RestartMode::ColdDurable, Some(s)) => s.saturating_add(1).max(now.as_micros()),
            _ => now.as_micros(),
        }
        .max(1);
        self.agent.set_incarnation(incarnation);
        ctx.disk().write(DISK_KEY_INCAR, persist::encode_incarnation(incarnation));
        ctx.disk().fsync();

        // Re-derive the subscription: from disk under a durable restart,
        // from the user's re-entered configuration (the retained field)
        // under amnesia or when the disk record is missing or torn.
        let from_disk = match mode {
            RestartMode::ColdDurable => {
                ctx.disk().read(DISK_KEY_SUB).and_then(persist::decode_subscription)
            }
            _ => None,
        };
        let sub = from_disk.unwrap_or_else(|| self.subscription.clone());
        self.set_subscription(sub);
        // The join endorsement is identity-bound, not process-bound: the
        // reborn process re-presents it or admission control refuses it.
        self.publish_join_ticket();
        ctx.disk().write(DISK_KEY_SUB, persist::encode_subscription(&self.subscription));

        // Durable restart: restore the last synced `state` snapshot. Writes
        // lost between the last fsync and the crash surface as honest log
        // gaps, which the recovery pulls (and PR-2 anti-entropy) backfill.
        let mut restored = 0u64;
        if mode == RestartMode::ColdDurable {
            if let Some(state) = ctx.disk().read(DISK_KEY_STATE).and_then(persist::decode_state) {
                // Re-arm the revocation fence *before* re-admitting items:
                // restore is admission path 4, and a rotation adopted from
                // disk must fence the very blob it rode in on.
                for enc in &state.rotations {
                    if let Some(rec) = RotationRecord::decode(enc) {
                        self.adopt_rotation(&rec);
                    }
                }
                restored = self.restore_cached_items(state.items, now);
                self.deliveries = state.deliveries;
                for ls in state.logs {
                    let log = self
                        .article_logs
                        .entry(ls.publisher)
                        .or_insert_with(|| SeqLog::new(ARTICLE_LOG_CAPACITY));
                    for (lo, hi) in ls.present {
                        for seq in lo..=hi {
                            log.insert(seq, ());
                        }
                    }
                    log.restore_coverage(&ls.coverage);
                }
            }
        }
        // Re-advertise coverage from what actually came back.
        self.publish_ae_digests();
        ctx.disk().fsync();

        self.stats.cold_restarts += 1;
        self.recovering_since = Some(now);
        obs::trace_event!(
            self.agent.id(),
            Layer::News,
            kind::NW_RECOVERY_START,
            mode.discriminant(),
            restored
        );
        // Same re-arm cadence as a freeze; the randomized first tick is an
        // on_start-only affordance, so the cold path stays deterministic
        // relative to the legacy one.
        ctx.set_timer(self.agent.config().gossip_interval, GOSSIP_TIMER);
        if let Some(repair) = self.cfg.repair_interval {
            ctx.set_timer(repair, REPAIR_TIMER);
        }
    }

    fn apply_corruption(&mut self, op: &CorruptionOp, rng: &mut SmallRng) -> u64 {
        match *op {
            CorruptionOp::ZoneRows { rows } => {
                // Two prongs. First: scramble this node's own subscription
                // advertisement — poison that propagates upward under
                // perfectly legitimate stamps until the self-audit
                // re-derives it from the subscription object.
                let mut hit = 0u64;
                for (attr, want) in self.derived_sub_attrs() {
                    let zeroed = match want {
                        AttrValue::Bits(b) => AttrValue::from(BitArray::new(b.len())),
                        _ => AttrValue::Int(0),
                    };
                    self.agent.set_local_attr(&attr, zeroed);
                    hit += 1;
                }
                // Second: scramble held replicas in place, stamps kept —
                // corruption digest-driven anti-entropy cannot see.
                hit + self.agent.corrupt_rows(rng, rows)
            }
            CorruptionOp::ForgeItems { items, publisher } => {
                // A Byzantine cache: fabricate items impersonating
                // `publisher`, planted just past the local log head —
                // exactly where honest tail catch-up and repair look next.
                // The forger's own log and gossiped digest advertise them
                // as real coverage; the bogus signatures drawn from the
                // strike stream are what defended receivers refuse.
                let publisher = PublisherId(publisher);
                let base = self.article_logs.get(&publisher).map_or(0, |l| l.next_seq());
                let now = self.clock;
                let mut injected = 0u64;
                for k in 0..u64::from(items) {
                    let seq = base + k;
                    let item = NewsItem::builder(publisher, seq)
                        .headline(format!("FORGED dispatch {seq}"))
                        .category(Category::Technology)
                        .build();
                    self.log_seen(item.id);
                    self.item_sigs.insert(item.id, (KeyId(rng.gen()), Signature(rng.gen())));
                    self.cache.insert(item, now);
                    injected += 1;
                }
                injected
            }
            CorruptionOp::VoteEpoch { publisher, epoch } => {
                // A colluder votes the group's shared fabricated epoch into
                // its own article log and digest. Enough same-zone voters
                // capture the unsigned neighbour-consensus mode that the
                // legacy epoch fence trusts; phantom head coverage makes
                // the captured digest look fresher than any honest one.
                let publisher = PublisherId(publisher);
                let log = self
                    .article_logs
                    .entry(publisher)
                    .or_insert_with(|| SeqLog::new(ARTICLE_LOG_CAPACITY));
                if epoch <= log.epoch() {
                    return 0;
                }
                log.adopt_epoch(epoch);
                for seq in 0..8 {
                    log.insert(seq, ());
                }
                9
            }
            CorruptionOp::LogEpoch { entries } => {
                // Poison one article log with a fabricated newer epoch plus
                // phantom coverage. The next digest publication advertises
                // it; with defenses off the fake epoch spreads by reconcile
                // contagion (every absorber adopts and wipes its log).
                let publishers: Vec<PublisherId> = self.article_logs.keys().copied().collect();
                let Some(&publisher) = publishers.as_slice().choose(rng) else { return 0 };
                let log = self.article_logs.get_mut(&publisher).expect("key just listed");
                let fake = log.epoch() + 1;
                log.adopt_epoch(fake);
                for seq in 0..u64::from(entries) {
                    log.insert(seq, ());
                }
                u64::from(entries) + 1
            }
            CorruptionOp::StolenKey { publisher, items, attest_bump } => {
                // The adversary holds the publisher's *real* signing key.
                // Preferring the retired certificate over the primary keeps
                // the attack honest across a rotation: after the victim
                // re-keys, the stolen key is the *old* one, so its
                // forgeries only verify on nodes that have not yet adopted
                // the rotation.
                let publisher = PublisherId(publisher);
                let Some(cert) = self
                    .retired_certs
                    .get(&publisher)
                    .or_else(|| self.publisher_certs.get(&publisher))
                    .cloned()
                else {
                    return 0;
                };
                let Some(stolen) = self.registry.exfiltrate_key(cert.key) else { return 0 };
                let cred = PublisherCredential::from_parts(cert, stolen);
                let base = self.article_logs.get(&publisher).map_or(0, |l| l.next_seq());
                let now = self.clock;
                let mut hit = 0u64;
                for k in 0..u64::from(items) {
                    let seq = base + k;
                    let item = NewsItem::builder(publisher, seq)
                        .headline(format!("STOLEN-KEY dispatch {seq}"))
                        .category(Category::Technology)
                        .build();
                    let sig = cred.sign(&item);
                    self.log_seen(item.id);
                    self.item_sigs.insert(item.id, (cred.key_id(), sig));
                    self.cache.insert(item, now);
                    hit += 1;
                }
                if attest_bump > 0 {
                    // A bogus epoch attestation, validly signed with the
                    // stolen key: the signed-authority defense *verifies*
                    // it — only revocation (admission path 5) stops it.
                    let log_epoch = self.article_logs.get(&publisher).map_or(0, |l| l.epoch());
                    let epoch = self
                        .authority_epoch(publisher)
                        .unwrap_or(0)
                        .max(log_epoch)
                        .saturating_add(attest_bump);
                    let attest = cred.attest_epoch(epoch);
                    self.absorb_attest(&attest);
                    hit += 1;
                }
                hit
            }
            CorruptionOp::SybilFlood { identities, publisher, epoch } => {
                // Fabricated identities injected into this node's own leaf
                // table under perfectly valid row structure: in-range
                // label, required `id` attribute, fresh (non-future) stamp.
                // The corrupt node merges its own message unconditionally;
                // honest receivers with admission control on refuse the
                // rows at gossip ingest for lacking a join ticket. Each
                // Sybil advertises phantom coverage under the jointly
                // fabricated epoch, pulling the unsigned neighbour
                // consensus toward it.
                let now = self.clock;
                let branching = self.agent.config().branching;
                let own = self.agent.own_label(0);
                let digest = RangeSummary { epoch, floor: 0, next: 8, present: 8 }.encode();
                let salt: u32 = rng.gen_range(0..0x1000);
                let mut rows: Vec<(u16, Arc<Mib>)> = Vec::new();
                let mut label = 0u16;
                for k in 0..identities {
                    if label == own {
                        label += 1;
                    }
                    if label >= branching {
                        break; // a leaf zone has only `branching` slots
                    }
                    let id = SYBIL_ID_BASE + salt * 64 + k;
                    let row = MibBuilder::new()
                        .attr("id", i64::from(id))
                        .attr(format!("{AE_ATTR_PREFIX}{publisher}"), digest.clone())
                        .build(Stamp { issued_us: now.as_micros(), version: 1, origin: id });
                    rows.push((label, Arc::new(row)));
                    label += 1;
                }
                if rows.is_empty() {
                    return 0;
                }
                let injected = rows.len() as u64;
                let zone = self.agent.chain()[0].clone();
                let msg = GossipMsg::Rows { rows: vec![TableRows { zone, rows }] };
                let _ = self.agent.on_message(now, self.agent.id(), msg, rng);
                injected
            }
            // Torn disk bytes are flipped by the engine (`Disk::corrupt`)
            // without consulting the node.
            CorruptionOp::DiskBytes { .. } => 0,
        }
    }

    fn tamper_outbound(
        &mut self,
        to: NodeId,
        msg: &mut NewsWireMsg,
        mode: LiarMode,
        _rng: &mut SmallRng,
    ) -> LiarAction {
        match mode {
            // A lying representative mis-aggregates: the subscription
            // summaries in every row it gossips are zeroed (under the
            // rows' legitimate stamps), steering forwarding away from the
            // subtrees those rows summarize.
            LiarMode::MisSummarize => tamper_gossip_rows(msg, mis_summarized),
            // A lying forwarder silently swallows the news itself while
            // staying a lively, cooperative gossip participant.
            LiarMode::SelectiveDrop => match msg {
                NewsWireMsg::Forward { .. } | NewsWireMsg::Deliver { .. } => LiarAction::Dropped,
                _ => LiarAction::Pass,
            },
            // A liar re-advertising empty anti-entropy digests: peers never
            // select it as a reconcile source and reconciliation pressure
            // shifts onto the honest rest of the zone.
            LiarMode::StaleDigest => tamper_gossip_rows(msg, stale_digested),
            // Split-brain lying: different stories to different
            // destinations. Half the peer space sees this node's true
            // digests, the other half sees empty ones — no single receiver
            // can observe the inconsistency, only the digest-contradiction
            // strike (request what was advertised, get an empty reply)
            // catches it.
            LiarMode::SplitBrain => {
                if to.0 % 2 == 1 {
                    tamper_gossip_rows(msg, stale_digested)
                } else {
                    LiarAction::Pass
                }
            }
        }
    }
}

/// Applies a per-row tampering function to every row batch of an outbound
/// gossip message. Returns `Tampered` when any row was rewritten.
fn tamper_gossip_rows(msg: &mut NewsWireMsg, lie: impl Fn(&Mib) -> Option<Arc<Mib>>) -> LiarAction {
    let NewsWireMsg::Gossip { g, .. } = msg else { return LiarAction::Pass };
    let batches = match g {
        GossipMsg::DigestReply { rows, .. } | GossipMsg::Rows { rows } => rows,
        GossipMsg::Digest { .. } => return LiarAction::Pass,
    };
    let mut tampered = false;
    for batch in batches.iter_mut() {
        for (_, row) in batch.rows.iter_mut() {
            if let Some(fake) = lie(row) {
                *row = fake;
                tampered = true;
            }
        }
    }
    if tampered {
        LiarAction::Tampered
    } else {
        LiarAction::Pass
    }
}

/// A mis-aggregated copy of `row`: subscription summaries (`subs` Bloom
/// bits, `cats$` masks) zeroed, stamp kept — indistinguishable from the
/// honest version by version vector. `None` when the row carries none.
fn mis_summarized(row: &Mib) -> Option<Arc<Mib>> {
    let mut changed = false;
    let attrs = row
        .attrs()
        .iter()
        .map(|(name, value)| {
            let zero = if name.as_ref() == "subs" {
                match value {
                    AttrValue::Bits(b) if !b.is_zero() => {
                        Some(AttrValue::from(BitArray::new(b.len())))
                    }
                    _ => None,
                }
            } else if name.starts_with("cats$") {
                match value {
                    AttrValue::Int(n) if *n != 0 => Some(AttrValue::Int(0)),
                    _ => None,
                }
            } else {
                None
            };
            match zero {
                Some(z) => {
                    changed = true;
                    (Arc::clone(name), z)
                }
                None => (Arc::clone(name), value.clone()),
            }
        })
        .collect();
    changed.then(|| Arc::new(Mib::new(row.stamp, attrs)))
}

/// A stale-digest copy of `row`: every `sys$ae:` advertisement replaced
/// with an empty-coverage summary, stamp kept. `None` when nothing to fake.
fn stale_digested(row: &Mib) -> Option<Arc<Mib>> {
    let empty = RangeSummary::default().encode();
    let mut changed = false;
    let attrs = row
        .attrs()
        .iter()
        .map(|(name, value)| {
            if name.starts_with(AE_ATTR_PREFIX) && value.as_str() != Some(empty.as_str()) {
                changed = true;
                (Arc::clone(name), AttrValue::Str(empty.clone()))
            } else {
                (Arc::clone(name), value.clone())
            }
        })
        .collect();
    changed.then(|| Arc::new(Mib::new(row.stamp, attrs)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SubscriptionModel;
    use crate::subscription::Subscription;
    use astrolabe::{Config, TrustRegistry, ZoneLayout};
    use newsml::{Category, PublisherId};
    use std::sync::Arc;

    fn node_with(cfg: NewsWireConfig) -> NewsWireNode {
        let layout = ZoneLayout::new(4, 4);
        let agent = Agent::new(0, &layout, Config::standard(), vec![]);
        NewsWireNode::new(agent, cfg, Arc::new(TrustRegistry::new(1)))
    }

    fn tech_sub() -> Subscription {
        let mut s = Subscription::new();
        s.subscribe_category(PublisherId(0), Category::Technology);
        s
    }

    fn tech_item(seq: u64) -> NewsItem {
        NewsItem::builder(PublisherId(0), seq)
            .headline(format!("t{seq}")) // distinct slugs: avoid revision fusion
            .category(Category::Technology)
            .build()
    }

    #[test]
    fn filter_for_follows_model() {
        let mut bloom = node_with(NewsWireConfig::tech_news());
        bloom.set_subscription(tech_sub());
        match bloom.filter_for(&tech_item(0)) {
            FilterSpec::BloomAny { attr, groups } => {
                assert_eq!(attr, "subs");
                assert!(!groups.is_empty());
            }
            other => panic!("expected BloomAny, got {other:?}"),
        }
        let mut masks = node_with(NewsWireConfig::prototype_masks());
        masks.set_subscription(tech_sub());
        match masks.filter_for(&tech_item(0)) {
            FilterSpec::MaskBits { attr, mask } => {
                assert_eq!(attr, "cats$0");
                assert_eq!(mask, 1 << Category::Technology.bit());
            }
            other => panic!("expected MaskBits, got {other:?}"),
        }
    }

    #[test]
    fn set_subscription_publishes_summary_attrs() {
        let mut n = node_with(NewsWireConfig::tech_news());
        n.set_subscription(tech_sub());
        assert!(matches!(n.agent.local_attr("subs"), Some(astrolabe::AttrValue::Bits(_))));
        let mut m = node_with(NewsWireConfig::prototype_masks());
        m.set_subscription(tech_sub());
        assert!(matches!(m.agent.local_attr("cats$0"), Some(astrolabe::AttrValue::Int(_))));
    }

    #[test]
    fn dissemination_predicate_checks_local_attrs() {
        let mut n = node_with(NewsWireConfig::tech_news());
        n.set_subscription(tech_sub());
        let mut item = tech_item(0);
        item.meta.push((DISSEMINATION_PREDICATE.to_owned(), "premium > 0".to_owned()));
        assert!(!n.dissemination_admits(&item), "no premium attr: fail closed");
        n.agent.set_local_attr("premium", 1i64);
        assert!(n.dissemination_admits(&item));
        // Malformed predicate fails closed too.
        let mut bad = tech_item(1);
        bad.meta.push((DISSEMINATION_PREDICATE.to_owned(), "((".to_owned()));
        assert!(!n.dissemination_admits(&bad));
        // No predicate: admitted.
        assert!(n.dissemination_admits(&tech_item(2)));
    }

    #[test]
    fn dissemination_scope_confines_every_delivery_path() {
        // 16 agents, branching 4: agent 0's leaf zone is /0.
        let layout = ZoneLayout::new(16, 4);
        let agent = Agent::new(0, &layout, Config::standard(), vec![]);
        let mut n =
            NewsWireNode::new(agent, NewsWireConfig::tech_news(), Arc::new(TrustRegistry::new(1)));
        n.set_subscription(tech_sub());
        let mut in_zone = tech_item(0);
        in_zone.meta.push((DISSEMINATION_SCOPE.to_owned(), "/0".to_owned()));
        assert!(n.dissemination_admits(&in_zone));
        let mut out_of_zone = tech_item(1);
        out_of_zone.meta.push((DISSEMINATION_SCOPE.to_owned(), "/1".to_owned()));
        assert!(!n.dissemination_admits(&out_of_zone));
        // A garbage scope fails closed, like a malformed predicate.
        let mut bad = tech_item(2);
        bad.meta.push((DISSEMINATION_SCOPE.to_owned(), "asia".to_owned()));
        assert!(!n.dissemination_admits(&bad));
        // handle_delivery with via_repair=true models the reconcile/repair
        // paths, which ship bare items: the scope must still confine them.
        let now = SimTime::from_secs(1);
        n.handle_delivery(now, out_of_zone.clone(), true);
        assert!(!n.has_item(out_of_zone.id), "repair must not leak scoped items");
        assert_eq!(n.stats.predicate_filtered, 1);
        // …but the seq was still *seen*, so reconcile won't re-request it.
        assert!(n.article_log(PublisherId(0)).is_some_and(|l| l.contains(1)));
        n.handle_delivery(now, in_zone.clone(), true);
        assert!(n.has_item(in_zone.id), "in-zone repair still delivers");
    }

    #[test]
    fn replies_delta_encode_against_declared_baselines() {
        let mut cfg = NewsWireConfig::tech_news();
        cfg.deltas = true;
        let mut n = node_with(cfg);
        let now = SimTime::from_secs(1);
        let rev3 = NewsItem::builder(PublisherId(0), 5)
            .slug("merger")
            .revision(3, None)
            .body_len(6000)
            .build();
        n.cache.insert(rev3.clone(), now);

        // A requester declaring revision 2 gets a delta-annotated reply…
        let hint = BaselineHint {
            key: newsml::cdc::slug_key(PublisherId(0), "merger"),
            revision: 2,
            body_len: 6000,
        };
        let signed = n.sign_items(vec![rev3.clone()], &[hint]);
        assert_eq!(signed[0].basis, Some(DeltaBasis { revision: 2, body_len: 6000 }));
        assert!(signed[0].compressed_wire_size() < signed[0].wire_size() / 2);

        // …a requester already on revision 3 deltas hardest of all: the
        // re-offer collapses to chunk references the receiver satisfies
        // from its own cache.
        let even = BaselineHint { revision: 3, ..hint };
        let dup = n.sign_items(vec![rev3.clone()], &[even]);
        assert_eq!(dup[0].basis, Some(DeltaBasis { revision: 3, body_len: 6000 }));
        assert!(dup[0].compressed_wire_size() < signed[0].compressed_wire_size());
        // …and a requester that declared nothing gets the full body.
        assert_eq!(n.sign_items(vec![rev3.clone()], &[])[0].basis, None);

        // The node's own requests declare its cache as baselines, sorted;
        // with deltas off they stay empty so the wire is byte-identical.
        let hints = n.request_baselines(None);
        assert_eq!(hints.len(), 1);
        assert_eq!(hints[0].revision, 3);
        n.cfg.deltas = false;
        assert!(n.request_baselines(None).is_empty());
        assert_eq!(n.sign_items(vec![rev3], &[hint])[0].basis, None, "deltas off: never annotate");
    }

    #[test]
    fn handle_delivery_classifies_outcomes() {
        let mut n = node_with(NewsWireConfig::tech_news());
        n.set_subscription(tech_sub());
        let now = SimTime::from_secs(1);
        // Matching item: delivered + cached.
        n.handle_delivery(now, tech_item(0), false);
        assert_eq!(n.stats.delivered, 1);
        assert_eq!(n.deliveries.len(), 1);
        // Same item again: duplicate.
        n.handle_delivery(now, tech_item(0), false);
        assert_eq!(n.stats.duplicates, 1);
        // Structurally uninteresting item: Bloom false positive.
        let sports =
            NewsItem::builder(PublisherId(0), 5).headline("s").category(Category::Sports).build();
        n.handle_delivery(now, sports, false);
        assert_eq!(n.stats.bloom_fp_deliveries, 1);
        assert_eq!(n.stats.delivered, 1, "not delivered to the app");
        // Matching but predicate-rejected: filtered, still cached.
        n.subscription.set_predicate("urgency = 1").unwrap();
        n.handle_delivery(now, tech_item(7), false);
        assert_eq!(n.stats.predicate_filtered, 1);
        assert!(n.cache.contains(newsml::ItemId::new(PublisherId(0), 7)));
    }

    #[test]
    fn repair_delivery_is_flagged() {
        let mut n = node_with(NewsWireConfig::tech_news());
        n.set_subscription(tech_sub());
        n.handle_delivery(SimTime::from_secs(2), tech_item(3), true);
        assert!(n.deliveries[0].via_repair);
    }

    #[test]
    fn publisher_accessor_and_model_attrs() {
        let n = node_with(NewsWireConfig::tech_news());
        assert!(n.publisher().is_none());
        assert_eq!(SubscriptionModel::CategoryMask.attr_for(PublisherId(3)), "cats$3");
    }

    #[test]
    fn article_log_tracks_every_arrival() {
        let mut n = node_with(NewsWireConfig::tech_news());
        n.set_subscription(tech_sub());
        let now = SimTime::from_secs(1);
        for seq in [0, 1, 4] {
            n.handle_delivery(now, tech_item(seq), false);
        }
        // A duplicate is still a single log entry…
        n.handle_delivery(now, tech_item(1), false);
        // …and an uninteresting (Bloom FP) arrival is seen too.
        let sports =
            NewsItem::builder(PublisherId(0), 5).headline("s").category(Category::Sports).build();
        n.handle_delivery(now, sports, false);
        let log = n.article_log(PublisherId(0)).expect("log exists");
        assert_eq!(log.len(), 4, "seqs 0, 1, 4, 5 — the duplicate logs once");
        assert_eq!(log.gaps(), vec![(2, 3)], "the unseen seqs are the holes");
        assert_eq!(n.logged_publishers().collect::<Vec<_>>(), vec![PublisherId(0)]);
        assert!(n.article_log(PublisherId(9)).is_none());
    }

    #[test]
    fn ae_digest_attr_roundtrips_through_the_mib() {
        let mut n = node_with(NewsWireConfig::tech_news());
        n.set_subscription(tech_sub());
        let now = SimTime::from_secs(1);
        for seq in [0, 1, 2, 6] {
            n.handle_delivery(now, tech_item(seq), false);
        }
        n.publish_ae_digests();
        let attr = format!("{AE_ATTR_PREFIX}0");
        let encoded = n.agent.local_attr(&attr).and_then(|v| v.as_str().map(str::to_owned));
        let summary = RangeSummary::decode(&encoded.expect("digest published")).unwrap();
        assert_eq!(summary, n.article_log(PublisherId(0)).unwrap().summary());
        assert!(!summary.contiguous(), "the hole at 3..=5 shows in the digest");
        // With anti-entropy off, no digest is published.
        let mut off =
            node_with(NewsWireConfig { anti_entropy: false, ..NewsWireConfig::tech_news() });
        off.handle_delivery(now, tech_item(0), false);
        off.publish_ae_digests();
        assert!(off.agent.local_attr(&attr).is_none());
    }

    #[test]
    fn phi_detector_suspects_silent_peers_only() {
        let mut n = node_with(NewsWireConfig::tech_news());
        let (fresh, quiet) = (NodeId(7), NodeId(8));
        // Both peers heartbeat regularly for a while…
        for s in 0..20 {
            n.note_alive(fresh, SimTime::from_secs(s));
            n.note_alive(quiet, SimTime::from_secs(s));
        }
        // …then one goes silent while the other keeps talking.
        for s in 20..60 {
            n.note_alive(fresh, SimTime::from_secs(s));
        }
        let now = SimTime::from_secs(60);
        assert!(!n.peer_suspect(7, now));
        assert!(n.peer_suspect(8, now));
        assert!(!n.peer_suspect(9, now), "never-seen peers are unknown, not suspect");
        // External inputs never feed a detector.
        n.note_alive(NodeId::EXTERNAL, now);
        assert!(!n.peer_health.contains_key(&NodeId::EXTERNAL.0));
        // Candidate filtering drops the suspect while alternatives exist…
        let mut candidates = vec![7, 8];
        n.prefer_unsuspected(&mut candidates, now);
        assert_eq!(candidates, vec![7]);
        // …but keeps it when it is the only option.
        let mut only = vec![8];
        n.prefer_unsuspected(&mut only, now);
        assert_eq!(only, vec![8]);
    }

    #[test]
    fn incarnation_bump_makes_recovered_peer_a_failover_target_again() {
        use astrolabe::{GossipMsg, MibBuilder, Stamp, TableRows};
        use rand::SeedableRng;
        let mut n = node_with(NewsWireConfig::tech_news());
        n.set_subscription(tech_sub());
        // Peer 2 (a leaf-zone neighbour) heartbeats, then goes silent long
        // enough for phi-accrual to suspect it.
        for s in 0..20 {
            n.note_alive(NodeId(2), SimTime::from_secs(s));
        }
        let now = SimTime::from_secs(60);
        assert!(n.peer_suspect(2, now), "silence made the peer suspect");
        let mut candidates = vec![1, 2];
        n.prefer_unsuspected(&mut candidates, now);
        assert_eq!(candidates, vec![1], "suspect peer dropped from failover candidates");
        // The peer cold-restarts; the very next gossip round carries its
        // row under a new incarnation. The suspicion belonged to its
        // previous life and must clear within that same round.
        let row = MibBuilder::new().attr("id", 2i64).attr("incar", 5i64).build(Stamp {
            issued_us: now.as_micros(),
            version: 1,
            origin: 2,
        });
        let msg = GossipMsg::Rows {
            rows: vec![TableRows {
                zone: n.agent.chain()[0].clone(),
                rows: vec![(2, Arc::new(row))],
            }],
        };
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        n.agent.on_message(now, 2, msg, &mut rng);
        n.absorb_incarnation_bumps();
        assert!(!n.peer_suspect(2, now), "new incarnation cleared the stale suspicion");
        let mut candidates = vec![1, 2];
        n.prefer_unsuspected(&mut candidates, now);
        assert_eq!(candidates, vec![1, 2], "recovered peer selectable as failover target");
    }

    #[test]
    fn durable_state_snapshot_roundtrips_through_the_codec() {
        let mut n = node_with(NewsWireConfig::tech_news());
        n.set_subscription(tech_sub());
        let now = SimTime::from_secs(1);
        for seq in [0, 1, 4] {
            n.handle_delivery(now, tech_item(seq), false);
        }
        let fp = n.state_fingerprint();
        let state = n.durable_state();
        assert_eq!(state.items.len(), 3);
        assert_eq!(state.deliveries.len(), 3);
        assert_eq!(state.logs.len(), 1);
        assert_eq!(state.logs[0].present, vec![(0, 1), (4, 4)]);
        let decoded = crate::persist::decode_state(&crate::persist::encode_state(&state)).unwrap();
        assert_eq!(decoded, state);
        // The fingerprint is stable while nothing changes and moves when
        // the durable state does.
        assert_eq!(n.state_fingerprint(), fp);
        n.handle_delivery(now, tech_item(5), false);
        assert_ne!(n.state_fingerprint(), fp);
    }

    /// A malformed gossip batch — out-of-range label, future-dated stamp,
    /// leaf row with no `id` — must neither panic nor silently merge when
    /// defenses are on (the config default), and the same batch is what a
    /// defenses-off node happily admits (the E17 ablation in miniature).
    #[test]
    fn defenses_reject_malformed_gossip_rows_at_ingest() {
        use astrolabe::{GossipMsg, MibBuilder, Stamp, TableRows};
        use rand::SeedableRng;
        let stamp = |t: u64, o: u32| Stamp { issued_us: t, version: 1, origin: o };
        let malformed = |zone: astrolabe::ZoneId| GossipMsg::Rows {
            rows: vec![TableRows {
                zone,
                rows: vec![
                    (200, Arc::new(MibBuilder::new().attr("id", 2i64).build(stamp(1_000_000, 2)))),
                    (2, Arc::new(MibBuilder::new().attr("id", 2i64).build(stamp(999_000_000, 2)))),
                    (
                        3,
                        Arc::new(MibBuilder::new().attr("load", 0.5f64).build(stamp(1_000_000, 3))),
                    ),
                ],
            }],
        };
        let now = SimTime::from_secs(1);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);

        let mut n = node_with(NewsWireConfig::tech_news());
        assert!(n.cfg.defenses, "defenses are the default");
        let held = n.agent.table(0).len();
        n.agent.on_message(now, 2, malformed(n.agent.chain()[0].clone()), &mut rng);
        assert_eq!(n.agent.table(0).len(), held, "malformed rows must not merge");

        let mut cfg = NewsWireConfig::tech_news();
        cfg.defenses = false;
        let mut open = node_with(cfg);
        open.agent.on_message(now, 2, malformed(open.agent.chain()[0].clone()), &mut rng);
        assert!(open.agent.table(0).len() > held, "defenses off admits the poison");
    }

    /// The self-audit's epoch fence: an article log poisoned with a
    /// fabricated newer epoch (plus phantom coverage) is rebuilt at the
    /// epoch this node's leaf neighbours agree on, re-seeded from the
    /// item cache — and a healthy log is left untouched.
    #[test]
    fn self_audit_rebuilds_log_poisoned_beyond_consensus_epoch() {
        use astrolabe::{GossipMsg, MibBuilder, Stamp, TableRows};
        use rand::SeedableRng;
        use simnet::CorruptionOp;
        let mut n = node_with(NewsWireConfig::tech_news());
        n.set_subscription(tech_sub());
        let now = SimTime::from_secs(5);
        for seq in 0..3u64 {
            n.handle_delivery(now, tech_item(seq), false);
        }
        // Two leaf neighbours advertise epoch-0 digests: the consensus.
        let digest = RangeSummary::default().encode();
        let rows: Vec<(u16, Arc<Mib>)> = [2u16, 3]
            .iter()
            .map(|&l| {
                let row = MibBuilder::new()
                    .attr("id", i64::from(l))
                    .attr(format!("{AE_ATTR_PREFIX}0"), digest.clone())
                    .build(Stamp { issued_us: now.as_micros(), version: 1, origin: u32::from(l) });
                (l, Arc::new(row))
            })
            .collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let msg =
            GossipMsg::Rows { rows: vec![TableRows { zone: n.agent.chain()[0].clone(), rows }] };
        n.agent.on_message(now, 2, msg, &mut rng);

        // A healthy audit is a no-op: same epoch, same coverage.
        n.self_audit(now);
        assert_eq!(n.article_logs[&PublisherId(0)].epoch(), 0);
        assert!(n.article_logs[&PublisherId(0)].contains(2));

        // The adversary fabricates a newer epoch plus phantom coverage…
        let hit = simnet::Node::apply_corruption(
            &mut n,
            &CorruptionOp::LogEpoch { entries: 4 },
            &mut rng,
        );
        assert!(hit > 0, "corruption must land");
        assert_eq!(n.article_logs[&PublisherId(0)].epoch(), 1);

        // …and the audit fences it back to the neighbours' consensus,
        // rebuilt from the cache: the three delivered items are present,
        // the phantom fourth is gone.
        n.self_audit(now);
        let log = &n.article_logs[&PublisherId(0)];
        assert_eq!(log.epoch(), 0, "fenced back to the consensus epoch");
        for seq in 0..3u64 {
            assert!(log.contains(seq), "cached item {seq} re-seeded");
        }
        assert!(!log.contains(3), "phantom coverage dropped by the rebuild");
    }

    /// A node whose trust registry issued publisher 0's credential, with the
    /// certificate and epoch-0 attestation pre-installed the way
    /// `DeploymentBuilder::build` does it.
    fn node_with_authority(
        cfg: NewsWireConfig,
    ) -> (NewsWireNode, crate::auth::PublisherCredential) {
        let mut registry = TrustRegistry::new(1);
        let cred = crate::auth::issue_publisher(
            &mut registry,
            PublisherId(0),
            "slashdot",
            &astrolabe::ZoneId::root(),
            6000,
        );
        let layout = ZoneLayout::new(4, 4);
        let agent = Agent::new(0, &layout, Config::standard(), vec![]);
        let mut n = NewsWireNode::new(agent, cfg, Arc::new(registry));
        n.install_publisher_authority(cred.certificate.clone(), cred.attest_epoch(0));
        (n, cred)
    }

    /// The bare-item admission funnel (repair replies, path 2; reconcile
    /// replies, path 3): a genuine detached signature admits, a forgery is
    /// refused before it touches log or cache, a tampered item cannot reuse
    /// a genuine signature, and a forged revision cannot displace the real
    /// story. The defenses-off ablation admits the same forgery.
    #[test]
    fn bare_item_admission_refuses_forgeries_on_repair_and_reconcile_paths() {
        let (mut n, cred) = node_with_authority(NewsWireConfig::tech_news());
        n.set_subscription(tech_sub());
        let now = SimTime::from_secs(1);

        let real = tech_item(0);
        let sig = cred.sign(&real);
        n.admit_bare_item(now, real.clone(), cred.key_id(), sig, NodeId(5), 2);
        assert!(n.has_item(real.id), "a genuinely signed bare item admits");
        assert_eq!(n.stats.forged_rejects, 0);

        // A fabricated item under an invented signature is refused — and
        // leaves no trace in the article log (a forged seq must not poison
        // reconciliation into thinking it was seen).
        let forged = tech_item(1);
        n.admit_bare_item(now, forged.clone(), KeyId(99), Signature(77), NodeId(5), 2);
        assert!(!n.has_item(forged.id));
        assert!(!n.cache.contains(forged.id));
        assert!(!n.article_logs[&PublisherId(0)].contains(1), "forged seq not logged as seen");
        assert_eq!(n.stats.forged_rejects, 1);
        assert_eq!(n.misbehavior.get(&5), Some(&MISBEHAVIOR_FORGED), "the sender took a strike");

        // Tampering with a signed item invalidates its signature — the
        // reconcile path (3) runs the same funnel.
        let original = tech_item(2);
        let sig2 = cred.sign(&original);
        let mut tampered = original.clone();
        tampered.headline = "FAKE: markets collapse".into();
        n.admit_bare_item(now, tampered.clone(), cred.key_id(), sig2, NodeId(6), 3);
        assert!(!n.has_item(tampered.id));
        assert_eq!(n.stats.forged_rejects, 2);

        // A forged revision of a real slug is refused; revision 0 stays.
        let rev0 = NewsItem::builder(PublisherId(0), 3)
            .headline("story")
            .slug("the-story")
            .category(Category::Technology)
            .build();
        let rev0_sig = cred.sign(&rev0);
        n.admit_bare_item(now, rev0.clone(), cred.key_id(), rev0_sig, NodeId(5), 2);
        assert!(n.cache.contains(rev0.id));
        let fake_rev = NewsItem::builder(PublisherId(0), 4)
            .headline("story, rewritten")
            .slug("the-story")
            .revision(1, Some(rev0.id))
            .category(Category::Technology)
            .build();
        n.admit_bare_item(now, fake_rev.clone(), KeyId(1), Signature(2), NodeId(5), 2);
        assert!(n.cache.contains(rev0.id), "the real revision 0 survives");
        assert!(!n.cache.contains(fake_rev.id), "the forged revision is refused");

        // The ablation: defenses off admits the same forgery (what E18's
        // undefended arms measure).
        let mut cfg = NewsWireConfig::tech_news();
        cfg.defenses = false;
        let (mut open, _) = node_with_authority(cfg);
        open.set_subscription(tech_sub());
        open.admit_bare_item(now, forged.clone(), KeyId(99), Signature(77), NodeId(5), 2);
        assert!(open.has_item(forged.id), "defenses off admits the forgery");
        assert_eq!(open.stats.forged_rejects, 0);
    }

    /// Stable-storage restore (path 4) re-verifies every item: a tampered
    /// disk blob cannot resurrect forged content into the cache.
    #[test]
    fn stable_storage_restore_reverifies_signatures() {
        let (mut n, cred) = node_with_authority(NewsWireConfig::tech_news());
        n.set_subscription(tech_sub());
        let now = SimTime::from_secs(1);
        let good = tech_item(0);
        let sig = cred.sign(&good);
        let bad = tech_item(1);
        let restored = n.restore_cached_items(
            vec![(good.clone(), cred.key_id(), sig), (bad.clone(), KeyId(9), Signature(9))],
            now,
        );
        assert_eq!(restored, 1, "only the verifiable item restores");
        assert!(n.cache.contains(good.id));
        assert!(!n.cache.contains(bad.id));
        assert_eq!(n.stats.forged_rejects, 1);
    }

    /// A node plus a pre-issued rotation for publisher 0: the original
    /// credential, the signed revocation record, and the successor
    /// credential — the unit-scale mirror of `DeploymentBuilder::build`.
    fn node_with_rotation(
        cfg: NewsWireConfig,
    ) -> (
        NewsWireNode,
        crate::auth::PublisherCredential,
        RotationRecord,
        crate::auth::PublisherCredential,
    ) {
        let mut registry = TrustRegistry::new(1);
        let cred = crate::auth::issue_publisher(
            &mut registry,
            PublisherId(0),
            "slashdot",
            &astrolabe::ZoneId::root(),
            6000,
        );
        let claims = vec![
            ("publisher".to_owned(), "0".to_owned()),
            ("scope".to_owned(), astrolabe::ZoneId::root().to_string()),
            ("rate".to_owned(), "6000".to_owned()),
        ];
        let (record, key) = registry.issue_rotation(
            cred.certificate.subject.clone(),
            cred.certificate.key,
            0,
            1,
            claims,
        );
        let successor = crate::auth::PublisherCredential::from_parts(record.successor.clone(), key);
        let layout = ZoneLayout::new(4, 4);
        let agent = Agent::new(0, &layout, Config::standard(), vec![]);
        let mut n = NewsWireNode::new(agent, cfg, Arc::new(registry));
        n.install_publisher_authority(cred.certificate.clone(), cred.attest_epoch(0));
        (n, cred, record, successor)
    }

    /// Adopting a rotation retires the old primary, installs the successor,
    /// retroactively purges revoked-key items, and fences every admission
    /// path — envelopes (1), repair replies (2), reconcile replies (3),
    /// disk restore (4), and epoch attestations (5) — against signatures
    /// that still verify under the stolen key. No path takes a misbehavior
    /// strike (an honest relay may simply be behind on the rotation), and
    /// the successor key is immediately live.
    #[test]
    fn adopt_rotation_fences_every_admission_path() {
        let (mut n, cred, record, successor) = node_with_rotation(NewsWireConfig::tech_news());
        n.set_subscription(tech_sub());
        let now = SimTime::from_secs(1);

        // Pre-revocation the compromised key IS the publisher's key: its
        // items admit (the exposure the oracle sanctions) and its
        // envelopes pass the fence.
        let old = tech_item(0);
        let old_sig = cred.sign(&old);
        n.admit_bare_item(now, old.clone(), cred.key_id(), old_sig, NodeId(5), 2);
        assert!(n.cache.contains(old.id));
        let probe = tech_item(9);
        let env = Envelope {
            msg_id: msg_id_of(probe.id),
            filter: FilterSpec::All,
            scope: astrolabe::ZoneId::root(),
            certificate: cred.certificate.clone(),
            key: cred.key_id(),
            signature: cred.sign(&probe),
            attest: cred.attest_epoch(0),
            basis: None,
            item: probe,
        };
        assert!(!n.envelope_fenced(&env), "pre-revocation envelopes pass");

        assert!(n.adopt_rotation(&record), "a genuine record adopts");
        assert!(n.rotation_adopted_at.is_some());
        assert_eq!(n.publisher_certs[&PublisherId(0)].key, successor.key_id());
        assert_eq!(n.retired_certs[&PublisherId(0)].key, cred.key_id());
        assert!(!n.cache.contains(old.id), "the retroactive purge scrubbed the item");
        assert_eq!(n.stats.retro_purged, 1);
        assert_eq!(n.authority_epoch(PublisherId(0)), None, "revoked-key authority dropped");

        // Path 1: the same envelope is now fenced before verification.
        assert!(n.envelope_fenced(&env), "path 1 drops revoked-key envelopes");
        // Paths 2 and 3: a validly signed revoked-key item cannot re-enter
        // through repair or reconcile replies.
        let replay = tech_item(1);
        let replay_sig = cred.sign(&replay);
        n.admit_bare_item(now, replay.clone(), cred.key_id(), replay_sig, NodeId(5), 2);
        assert!(!n.cache.contains(replay.id));
        n.admit_bare_item(now, replay.clone(), cred.key_id(), replay_sig, NodeId(6), 3);
        assert!(!n.cache.contains(replay.id));
        // Path 4: the revoked-key blob is dropped on disk restore.
        let restored =
            n.restore_cached_items(vec![(replay.clone(), cred.key_id(), replay_sig)], now);
        assert_eq!(restored, 0, "disk restore re-checks the fence");
        // Path 5: a bogus epoch bump signed by the stolen key carries no
        // authority.
        n.absorb_attest(&cred.attest_epoch(40));
        assert_eq!(n.authority_epoch(PublisherId(0)), None);
        assert_eq!(n.stats.revoked_key_rejects, 5);
        assert!(n.misbehavior.is_empty(), "revoked-key rejects never strike the relay");

        // The successor credential is live on every path.
        let fresh = tech_item(2);
        let fresh_sig = successor.sign(&fresh);
        n.admit_bare_item(now, fresh.clone(), successor.key_id(), fresh_sig, NodeId(5), 2);
        assert!(n.cache.contains(fresh.id));
        n.absorb_attest(&successor.attest_epoch(1));
        assert_eq!(n.authority_epoch(PublisherId(0)), Some(1));
    }

    /// The freshness fence: rotation serials are monotonic per publisher —
    /// an older (replayed) record cannot un-revoke a newer one, and a
    /// record never adopts twice.
    #[test]
    fn rotation_freshness_fence_never_unrevokes() {
        let (mut n, cred, older, _succ1) = node_with_rotation(NewsWireConfig::tech_news());
        // A second, newer rotation for the same revoked key (serial 2).
        let mut registry = TrustRegistry::new(1);
        let cred2 = crate::auth::issue_publisher(
            &mut registry,
            PublisherId(0),
            "slashdot",
            &astrolabe::ZoneId::root(),
            6000,
        );
        assert_eq!(cred2.certificate.key, cred.certificate.key, "issuance is deterministic");
        let claims = vec![
            ("publisher".to_owned(), "0".to_owned()),
            ("scope".to_owned(), astrolabe::ZoneId::root().to_string()),
            ("rate".to_owned(), "6000".to_owned()),
        ];
        let (newer, _) = registry.issue_rotation(
            "publisher:slashdot".to_owned(),
            cred2.certificate.key,
            0,
            2,
            {
                let mut c = claims.clone();
                c.push(("note".to_owned(), "second".to_owned()));
                c
            },
        );
        assert!(n.adopt_rotation(&newer), "the serial-2 record adopts");
        let primary = n.publisher_certs[&PublisherId(0)].key;
        assert_eq!(primary, newer.successor.key);
        assert!(!n.adopt_rotation(&older), "a replayed older serial is a no-op");
        assert_eq!(n.publisher_certs[&PublisherId(0)].key, primary, "primary unchanged");
        assert!(n.key_revoked(PublisherId(0), cred.key_id()), "the key stays revoked");
        assert!(!n.adopt_rotation(&newer), "the same serial never adopts twice");
        assert_eq!(n.rotation_serials[&PublisherId(0)], 2);
    }

    /// The §15 quarantine loophole, closed: with admission control on, an
    /// incarnation bump clears phi suspicion but launders the misbehavior
    /// score only when the restarted identity still holds a valid
    /// registry-endorsed join ticket. A quarantined peer restarting
    /// without one stays quarantined.
    #[test]
    fn unendorsed_restart_cannot_launder_quarantine() {
        use astrolabe::{GossipMsg, MibBuilder, Stamp, TableRows};
        use rand::SeedableRng;
        let mut cfg = NewsWireConfig::tech_news();
        cfg.admission = true;
        let (mut n, _cred, _rec, _succ) = node_with_rotation(cfg);
        n.set_subscription(tech_sub());
        let now = SimTime::from_secs(60);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);

        n.note_misbehavior(NodeId(2), MISBEHAVIOR_FORGED);
        n.note_misbehavior(NodeId(2), MISBEHAVIOR_FENCE);
        assert!(n.quarantined(2));

        // Restart under a fresh incarnation, no join ticket in the row.
        let bare = MibBuilder::new().attr("id", 2i64).attr("incar", 5i64).build(Stamp {
            issued_us: now.as_micros(),
            version: 1,
            origin: 2,
        });
        let leaf = n.agent.chain()[0].clone();
        let msg = GossipMsg::Rows {
            rows: vec![TableRows { zone: leaf.clone(), rows: vec![(2, Arc::new(bare))] }],
        };
        n.agent.on_message(now, 2, msg, &mut rng);
        n.absorb_incarnation_bumps();
        assert!(n.quarantined(2), "an unendorsed restart keeps its quarantine");

        // The same restart carrying a valid ticket earns the clean slate.
        let ticket = n.registry.endorse_join(2);
        let endorsed = MibBuilder::new()
            .attr("id", 2i64)
            .attr("incar", 6i64)
            .attr(JOIN_TICKET_ATTR, format!("{:016x}", ticket.0))
            .build(Stamp { issued_us: now.as_micros() + 1, version: 2, origin: 2 });
        let msg = GossipMsg::Rows {
            rows: vec![TableRows { zone: leaf, rows: vec![(2, Arc::new(endorsed))] }],
        };
        n.agent.on_message(now, 2, msg, &mut rng);
        n.absorb_incarnation_bumps();
        assert!(!n.quarantined(2), "an endorsed restart clears the previous life's score");
    }

    /// Sybil admission control: leaf-zone rows without a valid
    /// registry-endorsed join ticket are stripped from incoming gossip and
    /// their ids held in the bounded probation set; endorsed rows pass
    /// until the per-zone quota fills.
    #[test]
    fn sybil_rows_refused_and_held_in_probation() {
        use astrolabe::{GossipMsg, MibBuilder, Stamp, TableRows};
        let mut cfg = NewsWireConfig::tech_news();
        cfg.admission = true;
        let (mut n, _cred, _rec, _succ) = node_with_rotation(cfg);
        let now = SimTime::from_secs(1);
        let leaf = n.agent.chain()[0].clone();
        let row = |id: u32, label: u16, ticket: Option<String>| {
            let mut b = MibBuilder::new().attr("id", i64::from(id));
            if let Some(t) = ticket {
                b = b.attr(JOIN_TICKET_ATTR, t);
            }
            (label, Arc::new(b.build(Stamp { issued_us: now.as_micros(), version: 1, origin: id })))
        };
        let good = n.registry.endorse_join(31);
        let mut g = GossipMsg::Rows {
            rows: vec![TableRows {
                zone: leaf.clone(),
                rows: vec![
                    row(30, 1, None),
                    row(31, 2, Some(format!("{:016x}", good.0))),
                    row(32, 3, Some("junk".to_owned())),
                ],
            }],
        };
        n.filter_sybil_rows(&mut g);
        let GossipMsg::Rows { rows } = &g else { unreachable!() };
        let kept: Vec<u32> = rows[0]
            .rows
            .iter()
            .filter_map(|(_, r)| r.get("id").and_then(|v| v.as_i64()))
            .map(|v| v as u32)
            .collect();
        assert_eq!(kept, vec![31], "only the endorsed row survives");
        assert!(n.probation.contains(&30) && n.probation.contains(&32));
        assert_eq!(n.stats.probation_holds, 2);

        // Quota: even an endorsed identity is refused once the zone is
        // full — a registry leak cannot flood a zone past its cap.
        let mut cfg = NewsWireConfig::tech_news();
        cfg.admission = true;
        cfg.zone_quota = 0;
        let (mut tight, _c, _r, _s) = node_with_rotation(cfg);
        let endorsed = tight.registry.endorse_join(40);
        let mut g = GossipMsg::Rows {
            rows: vec![TableRows {
                zone: tight.agent.chain()[0].clone(),
                rows: vec![row(40, 1, Some(format!("{:016x}", endorsed.0)))],
            }],
        };
        tight.filter_sybil_rows(&mut g);
        let GossipMsg::Rows { rows } = &g else { unreachable!() };
        assert!(rows[0].rows.is_empty(), "quota-full zone refuses even endorsed joiners");
        assert!(tight.probation.contains(&40));
    }

    /// The misbehavior score: strikes accumulate, the quarantine transition
    /// fires exactly once at the threshold, a quarantined peer is suspect
    /// without any phi history, and external inputs / defenses-off nodes
    /// never quarantine.
    #[test]
    fn misbehavior_quarantine_crosses_threshold_once() {
        let mut n = node_with(NewsWireConfig::tech_news());
        let now = SimTime::from_secs(1);
        assert_eq!(n.cfg.quarantine_threshold, 3);
        n.note_misbehavior(NodeId(7), MISBEHAVIOR_FORGED);
        assert!(!n.quarantined(7), "one forged strike (weight 2) is below threshold");
        n.note_misbehavior(NodeId(7), MISBEHAVIOR_FENCE);
        assert!(n.quarantined(7));
        assert!(n.peer_suspect(7, now), "quarantine shows through peer_suspect without phi");
        assert_eq!(n.stats.peers_quarantined, 1);
        n.note_misbehavior(NodeId(7), MISBEHAVIOR_CONTRADICTION);
        assert_eq!(n.stats.peers_quarantined, 1, "crossing the threshold counts once");
        // Selection drops the quarantined peer while alternatives exist.
        let mut candidates = vec![5, 7];
        n.prefer_unsuspected(&mut candidates, now);
        assert_eq!(candidates, vec![5]);
        // External inputs never take strikes.
        n.note_misbehavior(NodeId::EXTERNAL, 10);
        assert!(!n.misbehavior.contains_key(&NodeId::EXTERNAL.0));
        // Defenses off: scores accrue nowhere and nothing quarantines.
        let mut cfg = NewsWireConfig::tech_news();
        cfg.defenses = false;
        let mut open = node_with(cfg);
        open.note_misbehavior(NodeId(7), 10);
        assert!(!open.quarantined(7));
    }

    /// Signed epoch authority: fabricated attestations (wrong signature, or
    /// a publisher this node holds no certificate for) are never absorbed,
    /// genuine bumps are, and authority never moves backwards.
    #[test]
    fn signed_authority_ignores_unsigned_epoch_claims() {
        let (mut n, cred) = node_with_authority(NewsWireConfig::tech_news());
        assert_eq!(n.authority_epoch(PublisherId(0)), Some(0));
        // Claiming epoch 100 without the publisher's key goes nowhere.
        n.absorb_attest(&EpochAttest {
            publisher: PublisherId(0),
            epoch: 100,
            key: cred.key_id(),
            signature: Signature(0xBAD),
        });
        assert_eq!(n.authority_epoch(PublisherId(0)), Some(0));
        // A genuine re-signed bump is adopted…
        n.absorb_attest(&cred.attest_epoch(2));
        assert_eq!(n.authority_epoch(PublisherId(0)), Some(2));
        // …and a stale genuine attestation never lowers it.
        n.absorb_attest(&cred.attest_epoch(1));
        assert_eq!(n.authority_epoch(PublisherId(0)), Some(2));
        // No certificate held for the claimed publisher: fail closed.
        n.absorb_attest(&EpochAttest {
            publisher: PublisherId(7),
            epoch: 1,
            key: cred.key_id(),
            signature: Signature(1),
        });
        assert_eq!(n.authority_epoch(PublisherId(7)), None);
    }

    /// With a publisher-signed attestation installed, the self-audit fences
    /// a jointly-voted fabricated epoch back WITHOUT any neighbour rows —
    /// the collusion scenario where the unsigned leaf-zone consensus is
    /// exactly what the adversary captured.
    #[test]
    fn self_audit_fences_captured_epoch_with_signed_authority_alone() {
        use rand::SeedableRng;
        use simnet::CorruptionOp;
        let (mut n, _cred) = node_with_authority(NewsWireConfig::tech_news());
        n.set_subscription(tech_sub());
        let now = SimTime::from_secs(5);
        for seq in 0..3u64 {
            n.handle_delivery(now, tech_item(seq), false);
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let hit = simnet::Node::apply_corruption(
            &mut n,
            &CorruptionOp::VoteEpoch { publisher: 0, epoch: 60 },
            &mut rng,
        );
        assert!(hit > 0, "the vote must land");
        assert_eq!(n.article_logs[&PublisherId(0)].epoch(), 60);
        // No gossip rows were ever absorbed: the unsigned consensus is
        // unavailable (or capturable). The signed authority still fences.
        n.self_audit(now);
        let log = &n.article_logs[&PublisherId(0)];
        assert_eq!(log.epoch(), 0, "fenced back to the signed authority epoch");
        for seq in 0..3u64 {
            assert!(log.contains(seq), "cached item {seq} re-seeded");
        }
    }

    /// `ForgeItems` corruption plants fabricated items in the victim's own
    /// cache — and a defended peer refuses every one of them when the
    /// victim's repair traffic offers them onward.
    #[test]
    fn forged_items_never_cross_to_a_defended_peer() {
        use rand::SeedableRng;
        use simnet::CorruptionOp;
        let (mut forger, _) = node_with_authority(NewsWireConfig::tech_news());
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let injected = simnet::Node::apply_corruption(
            &mut forger,
            &CorruptionOp::ForgeItems { items: 3, publisher: 0 },
            &mut rng,
        );
        assert_eq!(injected, 3);
        let forged: Vec<NewsItem> = forger.cache.iter().cloned().collect();
        assert_eq!(forged.len(), 3, "the forger's cache holds the fabrications");

        let (mut honest, _) = node_with_authority(NewsWireConfig::tech_news());
        honest.set_subscription(tech_sub());
        let now = SimTime::from_secs(1);
        // The forger serves its cache the way a repair reply would: items
        // wrapped with whatever signatures it recorded (bogus ones).
        for si in forger.sign_items(forged, &[]) {
            honest.admit_bare_item(now, si.item, si.key, si.signature, NodeId(1), 2);
        }
        assert_eq!(honest.stats.forged_rejects, 3, "every fabrication refused");
        assert!(honest.deliveries.is_empty());
        assert!(honest.quarantined(1), "three forged strikes quarantine the forger");
    }

    /// Split-brain lying is destination-dependent: odd-numbered peers get
    /// stale-digested gossip rows, even-numbered peers the truth — no
    /// single receiver can observe the inconsistency.
    #[test]
    fn split_brain_liar_tells_destinations_different_stories() {
        use astrolabe::{GossipMsg, MibBuilder, Stamp, TableRows};
        use rand::SeedableRng;
        use simnet::{LiarAction, LiarMode};
        let mut n = node_with(NewsWireConfig::tech_news());
        let digest = RangeSummary { epoch: 0, floor: 0, next: 3, present: 3 }.encode();
        let leaf_zone = n.agent.chain()[0].clone();
        let make = || {
            let row = MibBuilder::new()
                .attr("id", 2i64)
                .attr(format!("{AE_ATTR_PREFIX}0"), digest.clone())
                .build(Stamp { issued_us: 1_000_000, version: 1, origin: 2 });
            NewsWireMsg::Gossip {
                g: GossipMsg::Rows {
                    rows: vec![TableRows {
                        zone: leaf_zone.clone(),
                        rows: vec![(2, Arc::new(row))],
                    }],
                },
                rot: None,
            }
        };
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let mut to_odd = make();
        let act = simnet::Node::tamper_outbound(
            &mut n,
            NodeId(1),
            &mut to_odd,
            LiarMode::SplitBrain,
            &mut rng,
        );
        assert!(matches!(act, LiarAction::Tampered), "odd destinations get the stale story");
        let mut to_even = make();
        let act = simnet::Node::tamper_outbound(
            &mut n,
            NodeId(2),
            &mut to_even,
            LiarMode::SplitBrain,
            &mut rng,
        );
        assert!(matches!(act, LiarAction::Pass), "even destinations get the truth");
    }
}
