//! Subscriptions (paper §7–§8).
//!
//! A subscriber expresses interest as (a) per-publisher category sets — the
//! early-prototype bitmask model, (b) hierarchical subject codes hashed
//! into the shared Bloom array, and (c) an optional SQL predicate over the
//! item metadata, evaluated exactly at the leaf ("Users would subscribe to
//! a set of publishers and provide more complex selection criteria based on
//! the meta-data associated with the news-items, in the form of an SQL
//! query").

use astrolabe::{eval_predicate, parse_predicate, AttrValue, Expr, ParseAggError, RowSource};
use filters::{positions, BitArray, BloomFilter, CategoryMask};
use newsml::{Category, NewsItem, PublisherId, Subject};

/// Adapter exposing a news item's fields/metadata as SQL columns.
#[derive(Debug, Clone, Copy)]
pub struct ItemRow<'a>(pub &'a NewsItem);

impl RowSource for ItemRow<'_> {
    fn col(&self, name: &str) -> Option<std::borrow::Cow<'_, AttrValue>> {
        let v = match name {
            "urgency" => AttrValue::Int(i64::from(self.0.urgency.level())),
            "publisher" => AttrValue::Int(i64::from(self.0.id.publisher.0)),
            "revision" => AttrValue::Int(i64::from(self.0.revision)),
            "body_len" => AttrValue::Int(i64::from(self.0.body_len)),
            "headline" => AttrValue::Str(self.0.headline.clone()),
            "slug" => AttrValue::Str(self.0.slug.clone()),
            _ => AttrValue::Str(self.0.field(name)?),
        };
        Some(std::borrow::Cow::Owned(v))
    }
}

/// One subscriber's interest specification.
#[derive(Debug, Clone, Default)]
pub struct Subscription {
    /// Per-publisher category interests (the §7 prototype model).
    pub publishers: Vec<(PublisherId, Vec<Category>)>,
    /// Subject-code interests (matched against item subjects by prefix).
    pub subjects: Vec<Subject>,
    /// Optional SQL predicate over item metadata, applied at the leaf.
    predicate: Option<Expr>,
    /// The SQL source the predicate was parsed from, retained verbatim so
    /// the subscription can be persisted to stable storage and re-derived
    /// on a cold restart.
    predicate_sql: Option<String>,
}

impl Subscription {
    /// Creates an empty subscription (matches nothing).
    pub fn new() -> Self {
        Subscription::default()
    }

    /// Adds interest in `category` items from `publisher`.
    pub fn subscribe_category(&mut self, publisher: PublisherId, category: Category) {
        match self.publishers.iter_mut().find(|(p, _)| *p == publisher) {
            Some((_, cats)) => {
                if !cats.contains(&category) {
                    cats.push(category);
                }
            }
            None => self.publishers.push((publisher, vec![category])),
        }
    }

    /// Adds interest in a subject subtree.
    pub fn subscribe_subject(&mut self, subject: Subject) {
        if !self.subjects.contains(&subject) {
            self.subjects.push(subject);
        }
    }

    /// Sets the SQL predicate, e.g. `urgency <= 3 AND CONTAINS(source, 'reuters')`.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed SQL.
    pub fn set_predicate(&mut self, sql: &str) -> Result<(), ParseAggError> {
        self.predicate = Some(parse_predicate(sql)?);
        self.predicate_sql = Some(sql.to_owned());
        Ok(())
    }

    /// The SQL source of the current predicate, if one is set — what a node
    /// writes to stable storage so a cold restart can re-derive the exact
    /// filter it was running before the crash.
    pub fn predicate_sql(&self) -> Option<&str> {
        self.predicate_sql.as_deref()
    }

    /// True when no interest at all has been expressed.
    pub fn is_empty(&self) -> bool {
        self.publishers.is_empty() && self.subjects.is_empty()
    }

    /// The Bloom subscription keys (must mirror
    /// `NewsItem::subscription_keys` on the publishing side).
    pub fn bloom_keys(&self) -> Vec<String> {
        let mut keys = Vec::new();
        for (publisher, cats) in &self.publishers {
            for c in cats {
                keys.push(format!("{publisher}/{}", c.name()));
            }
        }
        for s in &self.subjects {
            keys.push(format!("subject/{}", s.key()));
        }
        keys.sort();
        keys.dedup();
        keys
    }

    /// Renders the subscription into an `m`-bit, `k`-hash Bloom array — the
    /// value this node publishes as its `subs` attribute.
    pub fn to_bloom(&self, m: usize, k: u32) -> BitArray {
        let mut f = BloomFilter::new(m, k);
        for key in self.bloom_keys() {
            f.insert(&key);
        }
        f.bits().clone()
    }

    /// The category mask for `publisher` (the §7 prototype attribute).
    pub fn mask_for(&self, publisher: PublisherId) -> CategoryMask {
        self.publishers
            .iter()
            .find(|(p, _)| *p == publisher)
            .map(|(_, cats)| cats.iter().map(|c| c.bit()).collect())
            .unwrap_or(CategoryMask::EMPTY)
    }

    /// Structural interest: does the item hit any category or subject
    /// subscription? (Exact, no Bloom involved — the leaf-side final test.)
    pub fn interested_in(&self, item: &NewsItem) -> bool {
        let cat_hit = self.publishers.iter().any(|(p, cats)| {
            *p == item.id.publisher && item.categories.iter().any(|c| cats.contains(c))
        });
        let subj_hit = self
            .subjects
            .iter()
            .any(|want| item.subjects.iter().any(|have| have.is_descendant_of(want)));
        cat_hit || subj_hit
    }

    /// The §8 full match: structural interest *and* the SQL predicate.
    /// Predicate evaluation errors reject the item (fail-closed).
    pub fn matches(&self, item: &NewsItem) -> bool {
        if !self.interested_in(item) {
            return false;
        }
        match &self.predicate {
            None => true,
            Some(p) => eval_predicate(p, &ItemRow(item)).unwrap_or(false),
        }
    }
}

/// Bit-position groups for an item in an `m`-bit, `k`-hash Bloom space —
/// what the publisher attaches to the item (§6: "an attribute is added to
/// the data representing the bit position in the subscription array this
/// publication corresponds to").
pub fn item_position_groups(item: &NewsItem, m: usize, k: u32) -> Vec<Vec<usize>> {
    item.subscription_keys().iter().map(|key| positions(key, m, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use newsml::Urgency;

    fn item() -> NewsItem {
        NewsItem::builder(PublisherId(1), 5)
            .headline("Gossip ships")
            .category(Category::Technology)
            .subject("04.003.005".parse().unwrap())
            .urgency(Urgency::new(2))
            .meta("source", "slashdot")
            .build()
    }

    fn tech_sub() -> Subscription {
        let mut s = Subscription::new();
        s.subscribe_category(PublisherId(1), Category::Technology);
        s
    }

    #[test]
    fn category_subscription_matches() {
        assert!(tech_sub().matches(&item()));
        let mut other = Subscription::new();
        other.subscribe_category(PublisherId(2), Category::Technology);
        assert!(!other.matches(&item()), "different publisher");
        let mut sports = Subscription::new();
        sports.subscribe_category(PublisherId(1), Category::Sports);
        assert!(!sports.matches(&item()), "different category");
    }

    #[test]
    fn subject_prefix_matches() {
        let mut s = Subscription::new();
        s.subscribe_subject("04.003".parse().unwrap());
        assert!(s.matches(&item()), "item subject 04.003.005 under 04.003");
        let mut narrow = Subscription::new();
        narrow.subscribe_subject("04.003.009".parse().unwrap());
        assert!(!narrow.matches(&item()));
    }

    #[test]
    fn predicate_refines_interest() {
        let mut s = tech_sub();
        s.set_predicate("urgency <= 3").unwrap();
        assert!(s.matches(&item()));
        s.set_predicate("urgency = 1").unwrap();
        assert!(!s.matches(&item()));
        s.set_predicate("CONTAINS(source, 'slash')").unwrap();
        assert!(s.matches(&item()));
    }

    #[test]
    fn predicate_errors_fail_closed() {
        let mut s = tech_sub();
        s.set_predicate("source + 1 = 2").unwrap(); // type error at eval time
        assert!(!s.matches(&item()));
        assert!(s.set_predicate("not even sql !!!").is_err());
    }

    #[test]
    fn bloom_keys_align_with_item_keys() {
        let s = tech_sub();
        let item = item();
        let sub_keys = s.bloom_keys();
        let item_keys = item.subscription_keys();
        assert!(
            sub_keys.iter().any(|k| item_keys.contains(k)),
            "sub {sub_keys:?} vs item {item_keys:?}"
        );
    }

    #[test]
    fn bloom_rendering_admits_matching_item() {
        let mut s = tech_sub();
        s.subscribe_subject("07".parse().unwrap());
        let bits = s.to_bloom(1024, 3);
        let groups = item_position_groups(&item(), 1024, 3);
        let hit = groups.iter().any(|g| g.iter().all(|&p| bits.get(p)));
        assert!(hit, "subscriber bits must cover at least one item key group");
    }

    #[test]
    fn mask_for_publisher() {
        let mut s = tech_sub();
        s.subscribe_category(PublisherId(1), Category::Science);
        let m = s.mask_for(PublisherId(1));
        assert!(m.contains(Category::Technology.bit()));
        assert!(m.contains(Category::Science.bit()));
        assert!(s.mask_for(PublisherId(9)).is_empty());
    }

    #[test]
    fn empty_subscription_matches_nothing() {
        assert!(Subscription::new().is_empty());
        assert!(!Subscription::new().matches(&item()));
    }

    #[test]
    fn item_row_exposes_builtin_and_meta_columns() {
        let it = item();
        let row = ItemRow(&it);
        let col = |name: &str| row.col(name).map(|c| c.into_owned());
        assert_eq!(col("urgency"), Some(AttrValue::Int(2)));
        assert_eq!(col("publisher"), Some(AttrValue::Int(1)));
        assert_eq!(col("source"), Some(AttrValue::Str("slashdot".into())));
        assert_eq!(col("nope"), None);
    }
}
